//! Deep-dive into clone detection (Section 6.2): run the two-phase
//! WuKong-style detector over a crawled corpus and show confirmed pairs,
//! their similarity scores, and the origin-market heatmap of Figure 10.
//!
//! ```text
//! cargo run --release --example clone_hunt
//! ```

use marketscope::core::MarketId;
use marketscope::report::experiments::fig10;
use marketscope::report::{run_campaign, CampaignConfig};

fn main() {
    let campaign = run_campaign(CampaignConfig {
        seed: 99,
        ..CampaignConfig::default()
    });
    let analyzed = &campaign.analyzed;

    // Signature-based clusters: one package, several signing keys.
    println!("signature-based clone clusters (package → #keys):");
    let mut clusters: Vec<(&String, &usize)> = analyzed.sig_report.clusters.iter().collect();
    clusters.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
    for (pkg, keys) in clusters.iter().take(8) {
        println!("  {pkg:<40} {keys} keys");
    }
    println!("  ({} clusters total)\n", clusters.len());

    // Code-based pairs with their phase-1/phase-2 scores.
    println!("confirmed code-clone pairs (distance ≤ 0.05, segments ≥ 85%):");
    for pair in analyzed.code_pairs.iter().take(10) {
        let origin = &analyzed.clone_inputs[pair.origin(&analyzed.clone_inputs)];
        let copy = &analyzed.clone_inputs[pair.copy(&analyzed.clone_inputs)];
        println!(
            "  {} ({} dl) ← {} ({} dl)  d={:.3} seg={:.2}",
            origin.package,
            origin.max_downloads(),
            copy.package,
            copy.max_downloads(),
            pair.distance,
            pair.segment_share
        );
    }
    println!("  ({} pairs total)\n", analyzed.code_pairs.len());

    // The Figure 10 heatmap.
    let f10 = fig10::run(analyzed);
    println!("{}", f10.render());
    println!(
        "google play feeds {} clones into other markets; 25PP absorbs {}",
        f10.cloned_from(MarketId::GooglePlay),
        f10.cloned_into(MarketId::Pp25)
    );
}
