//! Audit a single store the way Section 8 compares markets: pick one
//! Chinese market, measure its misbehaviour surface against Google Play,
//! and print a verdict card. Pass a market slug as the first argument
//! (default: `pconline`).
//!
//! ```text
//! cargo run --release --example store_audit -- tencent
//! ```

use marketscope::core::MarketId;
use marketscope::report::experiments::{fig13, table3, table4, table6};
use marketscope::report::{run_campaign, CampaignConfig};

fn main() {
    let slug = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "pconline".to_owned());
    let market: MarketId = slug.parse().unwrap_or_else(|_| {
        eprintln!("unknown market {slug:?}; use one of:");
        for m in MarketId::ALL {
            eprintln!("  {}", m.slug());
        }
        std::process::exit(2);
    });

    let campaign = run_campaign(CampaignConfig {
        seed: 2018,
        ..CampaignConfig::default()
    });
    let t3 = table3::run(&campaign.analyzed);
    let t4 = table4::run(&campaign.analyzed);
    let t6 = table6::run(&campaign.analyzed, &campaign.second);

    let gp = MarketId::GooglePlay;
    println!("=== store audit: {} (vs Google Play) ===\n", market.name());
    let rows = [
        (
            "malware (AV-rank ≥ 10)",
            t4.row(market).av10,
            t4.row(gp).av10,
        ),
        ("flagged at all (≥ 1)", t4.row(market).av1, t4.row(gp).av1),
        ("fake apps", t3.row(market).fake, t3.row(gp).fake),
        (
            "signature clones",
            t3.row(market).sig_clone,
            t3.row(gp).sig_clone,
        ),
        (
            "code clones",
            t3.row(market).code_clone,
            t3.row(gp).code_clone,
        ),
    ];
    println!(
        "{:<26} {:>10} {:>13}",
        "metric",
        market.slug(),
        "googleplay"
    );
    for (name, ours, gps) in rows {
        println!("{:<26} {:>9.2}% {:>12.2}%", name, ours * 100.0, gps * 100.0);
    }

    match (t6.market(market), t6.market(gp)) {
        (Some(m), Some(g)) => println!(
            "{:<26} {:>9.2}% {:>12.2}%",
            "malware removed in 8 mo",
            m.rate * 100.0,
            g.rate * 100.0
        ),
        _ => println!("{:<26} {:>10}", "malware removed in 8 mo", "excluded"),
    }

    // The radar comparison (Figure 13) for broader context.
    if fig13::COMPARED.contains(&market) {
        println!(
            "\n{}",
            fig13::run(&campaign.analyzed, &campaign.snapshot).render()
        );
    }

    let verdict = t4.row(market).av10 / t4.row(gp).av10.max(1e-9);
    println!(
        "\nverdict: {} hosts {verdict:.1}× Google Play's malware share",
        market.name()
    );
}
