//! Dissect an APK the way the paper's tooling does: build one, walk its
//! ZIP entries, decode the manifest and DEX, extract the analysis digest,
//! then tamper with it and watch the signature check catch it.
//!
//! ```text
//! cargo run --release --example apk_anatomy
//! ```

use marketscope::apk::apicalls::ApiCallId;
use marketscope::apk::builder::{ApkBuilder, CERT_ENTRY};
use marketscope::apk::dex::{ClassDef, DexFile, MethodDef};
use marketscope::apk::digest::ApkDigest;
use marketscope::apk::manifest::Manifest;
use marketscope::apk::zip::ZipArchive;
use marketscope::apk::ParsedApk;
use marketscope::core::hash::to_hex;
use marketscope::core::{DeveloperKey, PackageName, VersionCode};

fn main() {
    // 1. A developer builds and signs an app.
    let manifest = Manifest {
        package: PackageName::new("com.kugou.android").unwrap(),
        version_code: VersionCode(870),
        version_name: "8.7.0".into(),
        min_sdk: 9,
        target_sdk: 25,
        app_label: "酷狗音乐".into(),
        permissions: vec![
            "android.permission.INTERNET".into(),
            "android.permission.READ_PHONE_STATE".into(),
        ],
        category: "Music".into(),
        components: vec![],
    };
    let dex = DexFile {
        classes: vec![
            ClassDef {
                name: "Lcom/kugou/android/Player;".into(),
                methods: vec![MethodDef {
                    api_calls: vec![ApiCallId(101), ApiCallId(2044)],
                    code_hash: 0xFEED_0001,
                    invokes: vec![],
                }],
            },
            ClassDef {
                name: "Lcom/umeng/analytics/Agent;".into(),
                methods: vec![MethodDef {
                    api_calls: vec![ApiCallId(7)],
                    code_hash: 0xFEED_0002,
                    invokes: vec![],
                }],
            },
        ],
    };
    let dev = DeveloperKey::from_label("kugou-official");
    let bytes = ApkBuilder::new(manifest, dex)
        .channel("kgchannel", b"source=tencent".to_vec())
        .build(dev)
        .unwrap();
    println!("built {} bytes, signed by {:?}\n", bytes.len(), dev);

    // 2. The container: ZIP entries.
    let zip = ZipArchive::parse(&bytes).unwrap();
    println!("zip entries:");
    for e in zip.entries() {
        println!("  {:<28} {:>6} bytes", e.name, e.data.len());
    }

    // 3. The parsed view.
    let apk = ParsedApk::parse(&bytes).unwrap();
    println!(
        "\nmanifest: {} v{} (min SDK {})",
        apk.manifest.package, apk.manifest.version_code, apk.manifest.min_sdk
    );
    println!("label:    {}", apk.manifest.app_label);
    println!("perms:    {:?}", apk.manifest.permissions);
    println!("classes:  {}", apk.dex.classes.len());
    println!("signature valid: {}", apk.signature_valid);
    println!("file md5: {}", to_hex(&apk.file_md5));
    println!(
        "channels: {:?}",
        apk.channels.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );

    // 4. The analysis digest (what the crawler stores).
    let digest = ApkDigest::from_bytes(&bytes).unwrap();
    println!("\ndigest package features:");
    for f in &digest.package_features {
        println!(
            "  {:<24} {} classes, feature hash {:016x}",
            f.java_package, f.class_count, f.feature_hash
        );
    }

    // 5. Tamper: swap a code byte without re-signing.
    let mut tampered = ZipArchive::new();
    for e in zip.entries() {
        if e.name == "classes.dex" {
            let mut dex = marketscope::apk::dex::DexFile::decode(&e.data).unwrap();
            dex.classes[0].methods[0].code_hash ^= 0xBAD;
            tampered.add(&e.name, dex.encode()).unwrap();
        } else {
            tampered.add(&e.name, e.data.clone()).unwrap();
        }
    }
    let hacked = ParsedApk::parse(&tampered.to_bytes()).unwrap();
    println!(
        "\nafter tampering with a method body: signature valid = {} (cert entry untouched: {})",
        hacked.signature_valid,
        hacked.entry_names.iter().any(|n| n == CERT_ENTRY)
    );
}
