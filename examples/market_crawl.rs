//! Drive the crawl machinery by hand: spin up the simulated market fleet,
//! point the crawler at it, and watch the paper's Section 3 mechanics —
//! index walking, Google Play BFS, parallel search, rate limiting and
//! AndroZoo backfill — play out over real loopback HTTP.
//!
//! ```text
//! cargo run --release --example market_crawl
//! ```

use marketscope::core::MarketId;
use marketscope::crawler::{CrawlConfig, CrawlTargets, Crawler};
use marketscope::ecosystem::{generate, Scale, WorldConfig};
use marketscope::market::MarketFleet;
use std::sync::Arc;

fn main() {
    let world = Arc::new(generate(WorldConfig {
        seed: 7,
        scale: Scale { divisor: 8_000 },
        ..WorldConfig::default()
    }));
    println!(
        "world: {} listings, {} apps, {} developers",
        world.listing_count(),
        world.apps.len(),
        world.developers.len()
    );

    let fleet = MarketFleet::spawn(Arc::clone(&world)).expect("spawn fleet");
    println!("fleet: 17 markets + repository on loopback");
    for m in [
        MarketId::GooglePlay,
        MarketId::TencentMyapp,
        MarketId::BaiduMarket,
    ] {
        println!("  {:<14} {}", m.slug(), fleet.addr(m));
    }

    // Seed Google Play's BFS with 60% of its packages (an external list
    // never covers everything — the crawler must discover the rest).
    let gp = world.market_listings(MarketId::GooglePlay);
    let seeds: Vec<String> = gp
        .iter()
        .step_by(2)
        .map(|l| world.app(world.listing(*l).app).package.as_str().to_owned())
        .collect();
    println!("seeding Google Play BFS with {} package names", seeds.len());

    let crawler = Crawler::new(CrawlConfig {
        seeds,
        ..CrawlConfig::default()
    });
    let targets = CrawlTargets {
        markets: MarketId::ALL.iter().map(|m| fleet.addr(*m)).collect(),
        repository: Some(fleet.repository_addr()),
    };
    let start = std::time::Instant::now();
    let snap = crawler.crawl(&targets);
    println!(
        "\ncrawl finished in {:.2}s — {} HTTP requests served by the fleet",
        start.elapsed().as_secs_f64(),
        fleet.total_requests()
    );
    println!(
        "listings {}  APKs {}  (direct {}, backfilled {}, missing {})",
        snap.total_listings(),
        snap.total_apks(),
        snap.stats.apks_direct,
        snap.stats.apks_backfilled,
        snap.stats.apks_missing
    );
    println!(
        "google play rate-limited {} times; parallel search found {} cross-market listings",
        snap.stats.rate_limited, snap.stats.parallel_search_hits
    );

    // Show coverage per market.
    println!(
        "\n{:<16} {:>8} {:>8} {:>9}",
        "market", "listed", "crawled", "with APK"
    );
    for m in MarketId::ALL {
        let listed = world.market_listings(m).len();
        let ms = snap.market(m);
        println!(
            "{:<16} {:>8} {:>8} {:>9}",
            m.slug(),
            listed,
            ms.listings.len(),
            ms.apk_count()
        );
    }
}
