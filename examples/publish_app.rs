//! Play the role of an app developer (Section 2.1): build an APK, then
//! try to publish it to every one of the 17 stores and compare their
//! publication rules — copyright certificates, company-only policies,
//! category restrictions, mandatory packers, size caps and vetting times.
//!
//! ```text
//! cargo run --release --example publish_app
//! ```

use marketscope::apk::builder::ApkBuilder;
use marketscope::apk::dex::{ClassDef, DexFile, MethodDef};
use marketscope::apk::manifest::Manifest;
use marketscope::core::json::Json;
use marketscope::core::{DeveloperKey, MarketId, PackageName, VersionCode};
use marketscope::ecosystem::{generate, Scale, WorldConfig};
use marketscope::market::MarketFleet;
use marketscope::net::http::{Method, Request};
use marketscope::net::HttpClient;
use std::sync::Arc;

fn build_app(category: &str, jiagu: bool) -> Vec<u8> {
    let manifest = Manifest {
        package: PackageName::new("com.indie.megarunner").unwrap(),
        version_code: VersionCode(1),
        version_name: "1.0".into(),
        min_sdk: 14,
        target_sdk: 25,
        app_label: "Mega Runner".into(),
        permissions: vec!["android.permission.INTERNET".into()],
        category: category.into(),
        components: vec![],
    };
    let mut classes = vec![ClassDef {
        name: "Lcom/indie/megarunner/Main;".into(),
        methods: vec![MethodDef {
            api_calls: vec![],
            code_hash: 0xC0FFEE,
            invokes: vec![],
        }],
    }];
    if jiagu {
        // 360 requires packing with Jiagubao before submission.
        classes.push(ClassDef {
            name: "Lcom/jiagu/StubLoader;".into(),
            methods: vec![],
        });
    }
    ApkBuilder::new(manifest, DexFile { classes })
        .build(DeveloperKey::from_label("indie-dev"))
        .unwrap()
}

fn submit(
    client: &HttpClient,
    addr: std::net::SocketAddr,
    body: Vec<u8>,
    certs: &[(&str, &str)],
) -> String {
    let mut req = Request::get("/upload");
    req.method = Method::Post;
    req.body = body;
    for (k, v) in certs {
        req.headers.insert((*k).to_owned(), (*v).to_owned());
    }
    match client.request(addr, &req) {
        Ok(resp) => {
            let doc =
                Json::parse(std::str::from_utf8(&resp.body).unwrap_or("{}")).unwrap_or(Json::Null);
            match doc.get("status").and_then(Json::as_str) {
                Some("pending") => format!(
                    "pending (vetting ≈ {} days)",
                    doc.get("vetting_days")
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0)
                ),
                Some("listed") => "listed immediately — no vetting".to_owned(),
                Some("rejected") => format!(
                    "REJECTED: {}",
                    doc.get("reason").and_then(Json::as_str).unwrap_or("?")
                ),
                _ => "unexpected response".to_owned(),
            }
        }
        Err(e) => format!("transport error: {e}"),
    }
}

fn main() {
    let world = Arc::new(generate(WorldConfig {
        seed: 6,
        scale: Scale { divisor: 60_000 },
        ..WorldConfig::default()
    }));
    let fleet = MarketFleet::spawn(world).expect("fleet");
    let client = HttpClient::new();

    println!("=== first attempt: a games app, no certificates ===");
    for m in [MarketId::TencentMyapp, MarketId::HiApk, MarketId::LenovoMm] {
        let verdict = submit(&client, fleet.addr(m), build_app("Game", false), &[]);
        println!("  {:<14} {verdict}", m.slug());
    }

    println!("\n=== second attempt: with a Software Copyright Certificate ===");
    let certs = [("x-copyright-cert", "SCC-2017-0042")];
    for m in MarketId::ALL {
        let verdict = submit(&client, fleet.addr(m), build_app("Game", false), &certs);
        println!("  {:<14} {verdict}", m.slug());
    }

    println!("\n=== fixing the rejections ===");
    println!(
        "  lenovo (as a company): {}",
        submit(
            &client,
            fleet.addr(MarketId::LenovoMm),
            build_app("Game", false),
            &[
                ("x-copyright-cert", "SCC-2017-0042"),
                ("x-company-cert", "Indie Ltd.")
            ],
        )
    );
    println!(
        "  oppo (as a theme app): {}",
        submit(
            &client,
            fleet.addr(MarketId::OppoMarket),
            build_app("Personalization", false),
            &certs
        )
    );
    println!(
        "  360 (packed with Jiagubao): {}",
        submit(
            &client,
            fleet.addr(MarketId::Market360),
            build_app("Game", true),
            &certs
        )
    );
    fleet.stop();
}
