//! Quickstart: run a complete miniature measurement campaign and print
//! the headline comparison the paper opens with — how much dirtier the
//! Chinese alternative markets are than Google Play.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use marketscope::ecosystem::Scale;
use marketscope::report::experiments::{table3, table4};
use marketscope::report::{run_campaign, CampaignConfig};

fn main() {
    // A small deterministic world: ~1.5K listings across 17 markets.
    let campaign = run_campaign(CampaignConfig {
        seed: 42,
        scale: Scale::SMALL,
        seed_share: 0.75,
        ..CampaignConfig::default()
    });

    println!(
        "crawled {} listings / {} APKs across 17 markets ({} unique apps)\n",
        campaign.snapshot.total_listings(),
        campaign.snapshot.total_apks(),
        campaign.analyzed.apps.len()
    );

    // Malware prevalence per market (Table 4) ...
    let t4 = table4::run(&campaign.analyzed);
    println!("{}", t4.render());

    // ... and fake/clone prevalence (Table 3).
    let t3 = table3::run(&campaign.analyzed);
    println!("{}", t3.render());

    let gp = t4.row(marketscope::core::MarketId::GooglePlay).av10;
    let (_, _, avg_cb) = t3.average();
    println!(
        "headline: Google Play malware share {:.1}% — Chinese average {:.1}%; \
         roughly 1 in {:.0} apps across markets is a code clone",
        gp * 100.0,
        t4.average().1 * 100.0,
        1.0 / avg_cb.max(1e-9),
    );
}
