//! The client-side C1k acceptance test for the multiplexed
//! submit/complete driver: one driver thread, hundreds of requests in
//! flight at once, a constant process thread count.
//!
//! The blocking client surface used to bound crawl fan-out by caller
//! threads — every outstanding request parked a thread. The mux driver
//! replaces that with per-connection state machines on one readiness
//! loop, so in-flight capacity is bounded by sockets. Proved end to end
//! here: submit 768 requests against a gated server (its handler
//! answers nothing until released), hold them all in flight until the
//! server reports >= 512 open connections, and read the process thread
//! count from `/proc/self/status` — it must not have grown by even one.
//! Then the gate opens and every ticket must still redeem cleanly.

use marketscope_net::{
    ClientConfig, HttpClient, HttpServer, ReactorConfig, Request, Response, ServerMetrics,
};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Requests submitted without waiting on any of them.
const SUBMITTED: usize = 768;

/// The acceptance bar: connections the server must see held open at
/// once (each in-flight request pins its own socket — nothing completes
/// while the gate is shut, so nothing is pooled or reused).
const BAR: u64 = 512;

/// A latch the server's handler blocks on: while shut, every dispatched
/// request parks in the handler (or queues behind it) and its
/// connection stays open.
struct Gate {
    open: Mutex<bool>,
    released: Condvar,
}

impl Gate {
    fn shut(&self) {
        *self.open.lock().unwrap() = false;
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.released.notify_all();
    }

    fn pass(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.released.wait(open).unwrap();
        }
    }
}

fn wait_until(mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn hundreds_in_flight_on_one_driver_thread() {
    let gate = Arc::new(Gate {
        open: Mutex::new(true),
        released: Condvar::new(),
    });
    let handler = {
        let gate = Arc::clone(&gate);
        move |_req: &Request| {
            gate.pass();
            Response::ok("text/plain", b"ok".to_vec())
        }
    };
    let server = HttpServer::spawn_configured(
        "127.0.0.1:0",
        handler,
        ServerMetrics::standalone(),
        None,
        ReactorConfig {
            max_connections: 4096,
            ..ReactorConfig::default()
        },
    )
    .expect("spawn server");
    let addr = server.addr();

    let client = HttpClient::builder()
        .config(
            ClientConfig::builder()
                .max_inflight(SUBMITTED)
                .retries(0)
                .connect_timeout(Duration::from_secs(20))
                .io_timeout(Duration::from_secs(60))
                .build(),
        )
        .build();

    // Warm up through the open gate: proves the plumbing works and
    // forces the lazily spawned driver thread into existence *before*
    // the thread-count snapshot.
    let resp = client.get(addr, "/warmup").expect("warmup");
    assert_eq!(resp.status.code(), 200);

    gate.shut();
    let threads_before =
        marketscope_telemetry::perf::thread_count().expect("read /proc/self/status");

    let tickets: Vec<_> = (0..SUBMITTED)
        .map(|i| client.submit(addr, &Request::get(&format!("/held/{i}"))))
        .collect();

    assert!(
        wait_until(|| server.live_connections() >= BAR),
        "held {} connections, wanted >= {BAR}",
        server.live_connections()
    );
    // The whole fan-out is airborne. Not one thread was added for it:
    // not by the client (one pre-existing driver), not by the server
    // (fixed reactor complement).
    let threads_during =
        marketscope_telemetry::perf::thread_count().expect("read /proc/self/status");
    assert_eq!(
        threads_before, threads_during,
        "thread count grew under {SUBMITTED} in-flight requests"
    );

    gate.release();
    for ticket in tickets {
        let resp = client.wait(ticket).expect("gated request");
        assert_eq!(resp.status.code(), 200);
    }
}
