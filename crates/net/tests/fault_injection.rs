//! End-to-end fault injection: real servers behind a [`FaultInjector`],
//! exercised over loopback by a real client. The unit tests in
//! `fault.rs` pin the decision logic; these pin what a *caller* sees on
//! the wire for each fault kind, and that the client's resilience layer
//! rides out the survivable ones.

use marketscope_net::client::{ClientConfig, HttpClient};
use marketscope_net::error::NetError;
use marketscope_net::fault::{FaultInjector, FaultPlan};
use marketscope_net::http::{Request, Response};
use marketscope_net::resilience::{BreakerConfig, ResilienceMetrics, RetryPolicy};
use marketscope_net::router::Router;
use marketscope_net::server::{HttpServer, ServerHandle, ServerMetrics};
use marketscope_telemetry::Registry;
use std::time::{Duration, Instant};

fn ping_router() -> Router {
    Router::new()
        .get(
            "/ping",
            |_req: &Request, _: &marketscope_net::router::Params| {
                Response::ok("text/plain", b"pong".to_vec())
            },
        )
        .get(
            "/__health",
            |_req: &Request, _: &marketscope_net::router::Params| {
                Response::ok("text/plain", b"ok".to_vec())
            },
        )
}

fn faulty_server(seed: u64, plan: FaultPlan) -> ServerHandle {
    HttpServer::spawn_with_faults(
        "127.0.0.1:0",
        ping_router(),
        ServerMetrics::standalone(),
        FaultInjector::new(seed, plan),
    )
    .unwrap()
}

/// A client with no safety nets: one attempt per request, no policy, no
/// breaker — it sees faults exactly as injected.
fn bare_client() -> HttpClient {
    HttpClient::builder()
        .config(ClientConfig::builder().retries(0).build())
        .build()
}

#[test]
fn injected_5xx_surfaces_with_status_and_hint() {
    let server = faulty_server(
        1,
        FaultPlan {
            error_5xx: 1.0,
            error_retry_after: Some(Duration::from_millis(25)),
            ..FaultPlan::none()
        },
    );
    let client = bare_client();
    for _ in 0..3 {
        match client.get(server.addr(), "/ping") {
            Err(NetError::Status { code, retry_after }) => {
                assert_eq!(code, 503);
                assert_eq!(retry_after, Some(Duration::from_millis(25)));
            }
            other => panic!("expected injected 503, got {other:?}"),
        }
    }
    assert_eq!(server.fault_injector().unwrap().injected(), 3);
}

#[test]
fn resets_and_truncations_surface_as_transient_errors() {
    let reset = faulty_server(
        2,
        FaultPlan {
            reset: 1.0,
            ..FaultPlan::none()
        },
    );
    let client = bare_client();
    let err = client.get(reset.addr(), "/ping").unwrap_err();
    assert!(err.is_transient(), "reset should look transient: {err:?}");

    let truncate = faulty_server(
        3,
        FaultPlan {
            truncate: 1.0,
            ..FaultPlan::none()
        },
    );
    // The head declares the full length but the body is cut short, so
    // the failure lands mid-read, not at connect time.
    let err = client.get(truncate.addr(), "/ping").unwrap_err();
    assert!(
        err.is_transient(),
        "truncation should look transient: {err:?}"
    );
}

#[test]
fn stalls_delay_the_response_but_serve_it_intact() {
    let server = faulty_server(
        4,
        FaultPlan {
            stall: 1.0,
            stall_for: Duration::from_millis(30),
            ..FaultPlan::none()
        },
    );
    let client = bare_client();
    let t = Instant::now();
    let resp = client.get(server.addr(), "/ping").unwrap();
    assert!(t.elapsed() >= Duration::from_millis(30));
    assert_eq!(resp.body, b"pong");
}

#[test]
fn downtime_windows_flap_with_the_declared_shape_over_the_wire() {
    let server = faulty_server(
        5,
        FaultPlan {
            downtime_every: 4,
            downtime_len: 2,
            ..FaultPlan::none()
        },
    );
    let client = bare_client();
    let outcomes: Vec<bool> = (0..8)
        .map(|_| client.get(server.addr(), "/ping").is_ok())
        .collect();
    assert_eq!(
        outcomes,
        [false, false, true, true, false, false, true, true],
        "window shape must be requests 0,1 dark then 2,3 served, repeating"
    );
}

#[test]
fn ops_paths_stay_reachable_under_total_chaos() {
    let server = faulty_server(
        6,
        FaultPlan {
            reset: 1.0,
            ..FaultPlan::none()
        },
    );
    let client = bare_client();
    // Real traffic dies every time...
    assert!(client.get(server.addr(), "/ping").is_err());
    // ...but the observer endpoints are exempt.
    for _ in 0..4 {
        let resp = client.get(server.addr(), "/__health").unwrap();
        assert_eq!(resp.body, b"ok");
    }
}

#[test]
fn retry_policy_rides_out_flapping_downtime() {
    let server = faulty_server(
        7,
        FaultPlan {
            downtime_every: 8,
            downtime_len: 1,
            ..FaultPlan::none()
        },
    );
    let registry = Registry::new();
    let client = HttpClient::builder()
        .config(ClientConfig::builder().retries(0).build())
        .retry(RetryPolicy::default())
        .resilience_metrics(ResilienceMetrics::register(&registry, &[]))
        .build();
    // Every 8th request lands in a one-request window; the policy's
    // backoff-and-retry absorbs each hit invisibly.
    for i in 0..24 {
        assert!(
            client.get(server.addr(), "/ping").is_ok(),
            "request {i} should have been retried through the window"
        );
    }
    let snap = registry.snapshot();
    let retries = snap
        .counter_value("marketscope_net_client_resilient_retries_total", &[])
        .unwrap_or(0);
    assert!(
        retries >= 3,
        "downtime hits must show up as retries: {retries}"
    );
}

#[test]
fn breaker_fast_fails_against_a_market_that_stays_dark() {
    let server = faulty_server(
        8,
        FaultPlan {
            // One giant window: the market never comes back.
            downtime_every: 1_000_000,
            downtime_len: 1_000_000,
            ..FaultPlan::none()
        },
    );
    let client = HttpClient::builder()
        .config(ClientConfig::builder().retries(0).build())
        .breaker(BreakerConfig {
            failure_threshold: 3,
            cooldown_rejections: 100,
            half_open_trials: 1,
        })
        .build();
    for _ in 0..3 {
        let err = client.get(server.addr(), "/ping").unwrap_err();
        assert!(err.is_transient());
    }
    // The circuit is open: the next requests never touch the wire.
    let served_before = server.request_count();
    for _ in 0..4 {
        assert!(matches!(
            client.get(server.addr(), "/ping"),
            Err(NetError::CircuitOpen)
        ));
    }
    assert_eq!(server.request_count(), served_before);
}
