//! Tracing overhead guard: with sampling at 0, the per-request cost of
//! the tracing hooks must be under 5% of a loopback request round trip.
//!
//! Direct A/B wall-clock comparison of two servers is noisy enough to
//! flake in CI, so the bound is computed the robust way: measure the
//! median loopback round trip, measure the *actual* per-request cost of
//! unsampled tracing hooks (span open/close on a rate-0 tracer) over many
//! iterations, and require hooks × spans-per-request < 5% of the round
//! trip. A second check pins the absolute behaviour: a rate-0 tracer
//! records zero journal entries under real traffic.

use marketscope_net::client::HttpClient;
use marketscope_net::http::{Request, Response};
use marketscope_net::server::{HttpServer, ServerMetrics};
use marketscope_telemetry::trace::{Tracer, TracerConfig};
use std::sync::Arc;
use std::time::Instant;

#[test]
fn unsampled_tracing_overhead_is_under_5_percent() {
    let tracer = Arc::new(Tracer::new(TracerConfig::propagate_only(1024)));
    let server = HttpServer::spawn_instrumented(
        "127.0.0.1:0",
        |_req: &Request| Response::ok("text/plain", b"ok".to_vec()),
        ServerMetrics::standalone().traced(Arc::clone(&tracer)),
    )
    .unwrap();
    let client = HttpClient::builder().tracer(Arc::clone(&tracer)).build();

    // Median of real round trips through the traced stack (warmed).
    for _ in 0..20 {
        client.get(server.addr(), "/x").unwrap();
    }
    let mut samples: Vec<u64> = (0..200)
        .map(|_| {
            let t = Instant::now();
            client.get(server.addr(), "/x").unwrap();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    let median_round_trip = samples[samples.len() / 2];

    // Per-hook cost of unsampled span open/close, amortized over 100k.
    let iters = 100_000u32;
    let t = Instant::now();
    for _ in 0..iters {
        let span = tracer.root_span("bench", "noop");
        span.event("ignored");
        span.finish();
    }
    let per_hook = t.elapsed().as_nanos() as u64 / iters as u64;

    // The request path adds at most ~6 span sites (client request +
    // attempt, server request + handler + write, plus slack for events).
    let overhead = per_hook.saturating_mul(8).max(1);
    let budget = median_round_trip / 20; // 5%
    assert!(
        overhead < budget,
        "unsampled tracing overhead {overhead}ns exceeds 5% of \
         median round trip {median_round_trip}ns"
    );

    // And the journal stayed byte-for-byte empty through all of it.
    assert_eq!(tracer.recorded(), 0);
    assert!(tracer.snapshot().is_empty());
}
