//! Resilience overhead guard: with a retry policy and breaker attached
//! but nothing failing, the per-request cost of the resilience hooks
//! must stay under 5% of a loopback round trip.
//!
//! Same shape as `trace_overhead.rs`: a direct A/B wall-clock race of
//! two clients is too noisy for CI, so measure the median round trip
//! through the fully-equipped stack, measure the actual per-request
//! cost of the success-path hooks (breaker lookup + admit + success
//! vote + the retry loop's key hash) amortized over many iterations,
//! and require hooks < 5% of the round trip. A second check pins the
//! absolute behaviour: against a healthy server, every resilience
//! instrument stays at zero.

use marketscope_core::hash::fnv1a64;
use marketscope_net::client::HttpClient;
use marketscope_net::http::{Request, Response};
use marketscope_net::resilience::{BreakerConfig, BreakerSet, ResilienceMetrics, RetryPolicy};
use marketscope_net::server::HttpServer;
use marketscope_telemetry::Registry;
use std::hint::black_box;
use std::time::Instant;

#[test]
fn idle_resilience_overhead_is_under_5_percent() {
    let server =
        HttpServer::spawn(|_req: &Request| Response::ok("text/plain", b"ok".to_vec())).unwrap();
    let registry = Registry::new();
    let client = HttpClient::builder()
        .retry(RetryPolicy::default())
        .breaker(BreakerConfig::default())
        .resilience_metrics(ResilienceMetrics::register(&registry, &[]))
        .build();

    // Median of real round trips through the resilient stack (warmed).
    for _ in 0..20 {
        client.get(server.addr(), "/x").unwrap();
    }
    let mut samples: Vec<u64> = (0..200)
        .map(|_| {
            let t = Instant::now();
            client.get(server.addr(), "/x").unwrap();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    let median_round_trip = samples[samples.len() / 2];

    // Actual per-request cost of the success-path hooks, amortized:
    // per-host breaker lookup, admission check, success vote, and the
    // retry loop's request-key hash. (The backoff machinery itself only
    // runs after a failure, which this guard by construction never has.)
    let set = BreakerSet::new(BreakerConfig::default(), None);
    let addr = server.addr();
    let iters = 100_000u32;
    let t = Instant::now();
    for _ in 0..iters {
        let breaker = set.for_host(addr);
        black_box(breaker.admit());
        breaker.on_success();
        black_box(fnv1a64(b"/x"));
    }
    let per_request = t.elapsed().as_nanos() as u64 / iters as u64;

    // Unlike the tracing guard (which multiplies one hook by its site
    // count), this loop already measures the complete per-request hook
    // bundle, so it is the overhead.
    let overhead = per_request.max(1);
    let budget = median_round_trip / 20; // 5%
    assert!(
        overhead < budget,
        "idle resilience overhead {overhead}ns exceeds 5% of \
         median round trip {median_round_trip}ns"
    );

    // And with a healthy server, every instrument stayed at zero: no
    // retries, no sleeps, no fast-fails, no breaker transitions.
    let snap = registry.snapshot();
    for counter in [
        "marketscope_net_client_resilient_retries_total",
        "marketscope_net_client_backoff_nanos_total",
        "marketscope_net_client_fast_fails_total",
    ] {
        assert_eq!(
            snap.counter_value(counter, &[]).unwrap_or(0),
            0,
            "{counter}"
        );
    }
    for to in ["open", "half_open", "closed"] {
        assert_eq!(
            snap.counter_value(
                "marketscope_net_client_breaker_transitions_total",
                &[("to", to)]
            )
            .unwrap_or(0),
            0
        );
    }
    assert_eq!(
        snap.gauge_value("marketscope_net_client_open_circuits", &[]),
        Some(0)
    );
}
