//! Blocking-vs-batched equivalence: the blocking `get` surface and the
//! submit/complete batch surface are the same machine, and these tests
//! hold them to it. Two identically seeded fault servers see the same
//! request sequence — one driven by sequential blocking calls, one by a
//! single-lane batch submitted all at once — and every observable must
//! match: per-request outcomes, resilience counters, retry span shapes,
//! and the request index at which a circuit breaker trips.

use marketscope_net::client::{ClientConfig, ClientMetrics, FetchSpec, HttpClient};
use marketscope_net::error::NetError;
use marketscope_net::fault::{FaultInjector, FaultPlan};
use marketscope_net::http::{Request, Response};
use marketscope_net::resilience::{BreakerConfig, ResilienceMetrics, RetryPolicy};
use marketscope_net::router::Router;
use marketscope_net::server::{HttpServer, ServerHandle, ServerMetrics};
use marketscope_telemetry::trace::{SpanContext, Tracer, TracerConfig};
use marketscope_telemetry::{JournalSnapshot, Registry};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn ping_router() -> Router {
    Router::new().get(
        "/ping",
        |_req: &Request, _: &marketscope_net::router::Params| {
            Response::ok("text/plain", b"pong".to_vec())
        },
    )
}

fn faulty_server(seed: u64, plan: FaultPlan) -> ServerHandle {
    HttpServer::spawn_with_faults(
        "127.0.0.1:0",
        ping_router(),
        ServerMetrics::standalone(),
        FaultInjector::new(seed, plan),
    )
    .unwrap()
}

/// A deterministic fingerprint of one request outcome: full body on
/// success, error kind (plus status code) on failure.
fn fingerprint(result: Result<Response, NetError>) -> String {
    match result {
        Ok(resp) => format!(
            "ok:{}:{}",
            resp.status.code(),
            String::from_utf8_lossy(&resp.body)
        ),
        Err(NetError::Status { code, .. }) => format!("status:{code}"),
        Err(e) => format!("err:{}", e.kind()),
    }
}

/// Run `n` requests for `/ping` the blocking way: one `get` at a time.
fn blocking_fingerprints(client: &HttpClient, server: &ServerHandle, n: usize) -> Vec<String> {
    (0..n)
        .map(|_| fingerprint(client.get(server.addr(), "/ping")))
        .collect()
}

/// Run `n` requests for `/ping` the batched way: every submission
/// enqueued up front on one ordering lane, then drained in order.
fn batched_fingerprints(client: &HttpClient, server: &ServerHandle, n: usize) -> Vec<String> {
    let tickets: Vec<_> = (0..n)
        .map(|_| client.submit_get(&FetchSpec::new(server.addr(), "/ping").lane(7)))
        .collect();
    tickets
        .into_iter()
        .map(|t| fingerprint(client.wait(t)))
        .collect()
}

#[test]
fn batched_outcomes_match_blocking_outcomes_under_seeded_chaos() {
    // Mixed weather: flapping downtime windows plus probabilistic 503s.
    // Same seed + same request order ⇒ the two servers inject the same
    // fault at the same request index.
    let plan = FaultPlan {
        downtime_every: 5,
        downtime_len: 2,
        error_5xx: 0.3,
        error_retry_after: Some(Duration::from_millis(5)),
        ..FaultPlan::none()
    };
    let bare = || {
        HttpClient::builder()
            .config(ClientConfig::builder().retries(0).build())
            .build()
    };

    let blocking_server = faulty_server(42, plan.clone());
    let blocking = blocking_fingerprints(&bare(), &blocking_server, 24);

    let batched_server = faulty_server(42, plan);
    let batched = batched_fingerprints(&bare(), &batched_server, 24);

    assert_eq!(blocking, batched);
    assert_eq!(
        blocking_server.request_count(),
        batched_server.request_count(),
        "both servers must have seen the same wire traffic"
    );
}

#[test]
fn resilient_retries_ride_out_chaos_identically_on_both_paths() {
    // Every 8th request lands in a one-request downtime window; the
    // retry policy absorbs each hit invisibly on both surfaces, and the
    // resilience counters must agree exactly.
    let plan = FaultPlan {
        downtime_every: 8,
        downtime_len: 1,
        ..FaultPlan::none()
    };
    let resilient = |registry: &Registry| {
        HttpClient::builder()
            .config(ClientConfig::builder().retries(0).build())
            .retry(RetryPolicy::default())
            .metrics(ClientMetrics::register(registry, &[]))
            .resilience_metrics(ResilienceMetrics::register(registry, &[]))
            .build()
    };
    let retries_in = |registry: &Registry| {
        registry
            .snapshot()
            .counter_value("marketscope_net_client_resilient_retries_total", &[])
            .unwrap_or(0)
    };

    let blocking_registry = Registry::new();
    let blocking_server = faulty_server(9, plan.clone());
    let blocking = blocking_fingerprints(&resilient(&blocking_registry), &blocking_server, 24);

    let batched_registry = Registry::new();
    let batched_server = faulty_server(9, plan);
    let batched = batched_fingerprints(&resilient(&batched_registry), &batched_server, 24);

    assert_eq!(blocking, batched);
    assert!(
        blocking.iter().all(|f| f == "ok:200:pong"),
        "the policy should have retried every window hit: {blocking:?}"
    );
    let (a, b) = (
        retries_in(&blocking_registry),
        retries_in(&batched_registry),
    );
    assert_eq!(a, b, "resilient retry counts diverged");
    assert!(a >= 3, "downtime hits must show up as retries: {a}");
}

/// Server-side records land after the response is written; poll briefly.
fn snapshot_with_at_least(tracer: &Arc<Tracer>, n: usize) -> JournalSnapshot {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let snap = tracer.snapshot();
        if snap.records.len() >= n || Instant::now() > deadline {
            return snap;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The client-side shape of one trace: `(name, parent name, events)`
/// for every client-component span, sorted. Ids and timings are
/// run-specific; the shape is what both paths must share.
fn client_shape(snap: &JournalSnapshot, root: SpanContext) -> Vec<(String, String, Vec<String>)> {
    let spans = snap.trace(root.trace_id);
    let name_of = |id| {
        spans
            .iter()
            .find(|r| r.span_id == id)
            .map(|r| r.name.clone())
            .unwrap_or_else(|| "root".to_owned())
    };
    let mut shape: Vec<_> = spans
        .iter()
        .filter(|r| r.component == "client")
        .map(|r| {
            (
                r.name.clone(),
                r.parent_id.map(&name_of).unwrap_or_default(),
                r.events.iter().map(|e| e.label.clone()).collect::<Vec<_>>(),
            )
        })
        .collect();
    shape.sort();
    shape
}

#[test]
fn transparent_retry_spans_share_their_shape_across_paths() {
    // Request index 0 falls in a downtime window, so the first logical
    // request needs a transparent in-wire retry: attempt#0 fails,
    // attempt#1 (tagged with a `retry` event) succeeds. Both surfaces
    // must journal exactly that tree.
    let plan = FaultPlan {
        downtime_every: 4,
        downtime_len: 1,
        ..FaultPlan::none()
    };
    let client_with = |tracer: &Arc<Tracer>| {
        HttpClient::builder()
            .config(ClientConfig::builder().retries(2).build())
            .tracer(Arc::clone(tracer))
            .build()
    };

    let blocking_tracer = Arc::new(Tracer::new(TracerConfig::always(256)));
    let blocking_server = faulty_server(11, plan.clone());
    let client = client_with(&blocking_tracer);
    let root = blocking_tracer.root_span("test", "fetch");
    let root_ctx = root.context().unwrap();
    client.get(blocking_server.addr(), "/ping").unwrap();
    root.finish();
    // root + request + two attempts = 4 records.
    let blocking_shape = client_shape(&snapshot_with_at_least(&blocking_tracer, 4), root_ctx);

    let batched_tracer = Arc::new(Tracer::new(TracerConfig::always(256)));
    let batched_server = faulty_server(11, plan);
    let client = client_with(&batched_tracer);
    let root = batched_tracer.root_span("test", "fetch");
    let root_ctx = root.context().unwrap();
    let ticket =
        client.submit_get(&FetchSpec::new(batched_server.addr(), "/ping").parent(root.context()));
    client.wait(ticket).unwrap();
    root.finish();
    let batched_shape = client_shape(&snapshot_with_at_least(&batched_tracer, 4), root_ctx);

    assert_eq!(blocking_shape, batched_shape);
    assert!(
        blocking_shape
            .iter()
            .any(|(name, _, _)| name == "attempt#1"),
        "the window hit must have forced a second attempt: {blocking_shape:?}"
    );
    assert!(
        blocking_shape
            .iter()
            .any(|(name, _, events)| name == "attempt#1" && events.iter().any(|e| e == "retry")),
        "attempt#1 must carry the retry event: {blocking_shape:?}"
    );
}

#[test]
fn breakers_trip_at_the_same_request_index_on_both_paths() {
    // A market that never comes back: three transient failures open the
    // breaker, then every further request fast-fails without touching
    // the wire — at the same index whether the requests were issued one
    // at a time or batched up front on one lane.
    let plan = FaultPlan {
        downtime_every: 1_000_000,
        downtime_len: 1_000_000,
        ..FaultPlan::none()
    };
    let breaker_client = || {
        HttpClient::builder()
            .config(ClientConfig::builder().retries(0).build())
            .breaker(BreakerConfig {
                failure_threshold: 3,
                cooldown_rejections: 100,
                half_open_trials: 1,
            })
            .build()
    };

    let blocking_server = faulty_server(8, plan.clone());
    let blocking = blocking_fingerprints(&breaker_client(), &blocking_server, 7);

    let batched_server = faulty_server(8, plan);
    let batched = batched_fingerprints(&breaker_client(), &batched_server, 7);

    assert_eq!(blocking, batched);
    assert_eq!(
        &blocking[3..],
        &["err:circuit_open"; 4],
        "requests past the threshold must fast-fail: {blocking:?}"
    );
    assert_eq!(
        blocking_server.request_count(),
        batched_server.request_count(),
        "an open circuit must keep batched submissions off the wire too"
    );
}
