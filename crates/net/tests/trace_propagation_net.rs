//! Trace-context propagation across the client/server wire: one sampled
//! crawl-side span yields a linked server-side span tree, and an
//! unsampled request leaves no journal entries and no header.

use marketscope_net::client::HttpClient;
use marketscope_net::http::{Request, Response};
use marketscope_net::server::{HttpServer, ServerMetrics};
use marketscope_telemetry::trace::{Tracer, TracerConfig};
use marketscope_telemetry::{JournalSnapshot, TRACE_HEADER};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server-side span records land *after* the response is written, so a
/// client-side snapshot races them; poll briefly.
fn snapshot_with_at_least(tracer: &Arc<Tracer>, n: usize) -> JournalSnapshot {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let snap = tracer.snapshot();
        if snap.records.len() >= n || Instant::now() > deadline {
            return snap;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn sampled_request_links_client_and_server_spans() {
    let tracer = Arc::new(Tracer::new(TracerConfig::always(256)));
    let server = HttpServer::spawn_instrumented(
        "127.0.0.1:0",
        |_req: &Request| Response::ok("text/plain", b"ok".to_vec()),
        ServerMetrics::standalone().traced(Arc::clone(&tracer)),
    )
    .unwrap();
    let client = HttpClient::builder().tracer(Arc::clone(&tracer)).build();

    let root = tracer.root_span("crawler", "fetch /x");
    let root_ctx = root.context().unwrap();
    client.get(server.addr(), "/x").unwrap();
    root.finish();

    // root + request + attempt + server request + handler + write = 6.
    let snap = snapshot_with_at_least(&tracer, 6);
    let spans = snap.trace(root_ctx.trace_id);
    assert_eq!(spans.len(), 6, "spans: {spans:#?}");

    let request = spans
        .iter()
        .find(|r| r.component == "client" && r.name == "GET /x")
        .expect("client request span");
    assert_eq!(request.parent_id, Some(root_ctx.span_id));

    let attempt = spans
        .iter()
        .find(|r| r.component == "client" && r.name == "attempt#0")
        .expect("attempt span");
    assert_eq!(attempt.parent_id, Some(request.span_id));

    // The server-side request span is a remote child of the attempt.
    let server_req = spans
        .iter()
        .find(|r| r.component == "server" && r.name == "GET /x")
        .expect("server request span");
    assert_eq!(server_req.parent_id, Some(attempt.span_id));
    assert!(server_req.events.iter().any(|e| e.label == "status:200"));

    for name in ["handler", "write"] {
        let child = spans
            .iter()
            .find(|r| r.component == "server" && r.name == name)
            .unwrap_or_else(|| panic!("missing server {name} span"));
        assert_eq!(child.parent_id, Some(server_req.span_id));
    }
}

#[test]
fn unsampled_request_sends_no_header_and_records_nothing() {
    let tracer = Arc::new(Tracer::new(TracerConfig::propagate_only(256)));
    let saw_header = Arc::new(AtomicBool::new(false));
    let saw = Arc::clone(&saw_header);
    let server = HttpServer::spawn_instrumented(
        "127.0.0.1:0",
        move |req: &Request| {
            if req.header(TRACE_HEADER).is_some() {
                saw.store(true, Ordering::SeqCst);
            }
            Response::ok("text/plain", b"ok".to_vec())
        },
        ServerMetrics::standalone().traced(Arc::clone(&tracer)),
    )
    .unwrap();
    let client = HttpClient::builder().tracer(Arc::clone(&tracer)).build();

    let root = tracer.root_span("crawler", "fetch /x"); // rate 0: no-op
    assert!(!root.is_sampled());
    client.get(server.addr(), "/x").unwrap();
    root.finish();

    assert!(!saw_header.load(Ordering::SeqCst), "no header expected");
    // Give the server's write path a moment, then confirm silence.
    std::thread::sleep(Duration::from_millis(30));
    let snap = tracer.snapshot();
    assert!(snap.is_empty(), "journal must stay empty: {snap:#?}");
    assert_eq!(tracer.recorded(), 0);
}

#[test]
fn retries_stay_in_one_trace_as_sibling_attempts() {
    use std::io::{Read, Write};
    use std::net::TcpListener;

    // A hand-rolled server that slams the door on the first connection
    // (forcing a client retry) and answers the second one properly.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let (first, _) = listener.accept().unwrap();
        drop(first); // connection reset -> attempt#0 fails
        let (mut second, _) = listener.accept().unwrap();
        let mut buf = [0u8; 4096];
        let mut seen = Vec::new();
        while !seen.windows(4).any(|w| w == b"\r\n\r\n") {
            let n = second.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            seen.extend_from_slice(&buf[..n]);
        }
        second
            .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok")
            .unwrap();
        String::from_utf8_lossy(&seen).to_string()
    });

    let tracer = Arc::new(Tracer::new(TracerConfig::always(64)));
    let client = HttpClient::builder().tracer(Arc::clone(&tracer)).build();
    let root = tracer.root_span("crawler", "fetch /r");
    let root_ctx = root.context().unwrap();
    let resp = client.get(addr, "/r").unwrap();
    root.finish();
    assert_eq!(resp.body, b"ok");
    let raw_request = handle.join().unwrap();

    let snap = tracer.snapshot();
    let spans = snap.trace(root_ctx.trace_id);
    let request = spans
        .iter()
        .find(|r| r.component == "client" && r.name == "GET /r")
        .expect("request span");

    // Both attempts landed in the same trace, as siblings under the
    // request span; the failed one carries the failure event, the
    // retried one the retry marker.
    let attempt0 = spans
        .iter()
        .find(|r| r.name == "attempt#0")
        .expect("attempt#0 span");
    let attempt1 = spans
        .iter()
        .find(|r| r.name == "attempt#1")
        .expect("attempt#1 span");
    assert_eq!(attempt0.parent_id, Some(request.span_id));
    assert_eq!(attempt1.parent_id, Some(request.span_id));
    assert!(attempt0
        .events
        .iter()
        .any(|e| e.label.starts_with("failed:")));
    assert!(attempt1.events.iter().any(|e| e.label == "retry"));

    // The header that reached the server names the *second* attempt.
    let header_line = raw_request
        .lines()
        .find(|l| l.to_ascii_lowercase().starts_with(TRACE_HEADER))
        .expect("trace header on the wire");
    let ctx =
        marketscope_telemetry::SpanContext::parse(header_line.split_once(':').unwrap().1.trim())
            .expect("parseable wire context");
    assert_eq!(ctx.trace_id, root_ctx.trace_id);
    assert_eq!(ctx.span_id, attempt1.span_id);
}

#[test]
fn header_survives_even_without_server_tracer() {
    // A traced client talking to an untraced server still completes and
    // still records its client-side spans.
    let tracer = Arc::new(Tracer::new(TracerConfig::always(64)));
    let server = HttpServer::spawn(|req: &Request| {
        Response::ok(
            "text/plain",
            req.header(TRACE_HEADER).unwrap_or("absent").into(),
        )
    })
    .unwrap();
    let client = HttpClient::builder().tracer(Arc::clone(&tracer)).build();
    let root = tracer.root_span("crawler", "fetch");
    let resp = client.get(server.addr(), "/x").unwrap();
    root.finish();
    let echoed = String::from_utf8(resp.body).unwrap();
    assert_ne!(echoed, "absent", "header must be on the wire");
    let ctx = marketscope_telemetry::SpanContext::parse(&echoed).expect("parseable context");
    let snap = tracer.snapshot();
    assert!(snap.records.iter().any(|r| r.span_id == ctx.span_id));
}
