//! Property tests for the HTTP subset: total parsing over hostile bytes,
//! lossless round-trips over arbitrary content.

use marketscope_net::http::{url_decode, url_encode, Method, Request, Response, Status};
use proptest::prelude::*;
use std::io::BufReader;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn request_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut reader = BufReader::new(bytes.as_slice());
        let _ = Request::read_from(&mut reader);
    }

    #[test]
    fn response_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut reader = BufReader::new(bytes.as_slice());
        let _ = Response::read_from(&mut reader);
    }

    #[test]
    fn request_round_trips(
        path_seg in "[a-zA-Z0-9._-]{1,24}",
        params in proptest::collection::vec(("[a-z]{1,8}", "\\PC{0,24}"), 0..5),
        body in proptest::collection::vec(any::<u8>(), 0..512),
        post in any::<bool>(),
    ) {
        let mut req = Request::get(&format!("/x/{path_seg}"));
        req.method = if post { Method::Post } else { Method::Get };
        for (k, v) in &params {
            req.query.push((k.clone(), v.clone()));
        }
        req.body = body;
        let mut wire = Vec::new();
        req.write_to(&mut wire).unwrap();
        let back = Request::read_from(&mut BufReader::new(wire.as_slice()))
            .unwrap()
            .expect("complete request");
        prop_assert_eq!(back.method, req.method);
        prop_assert_eq!(&back.path, &req.path);
        prop_assert_eq!(&back.body, &req.body);
        // Query params survive in order with exact values.
        prop_assert_eq!(&back.query, &req.query);
    }

    #[test]
    fn response_round_trips(
        body in proptest::collection::vec(any::<u8>(), 0..4096),
        ct in "[a-z]{3,12}/[a-z]{3,12}",
    ) {
        let resp = Response::ok(&ct, body);
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let back = Response::read_from(&mut BufReader::new(wire.as_slice())).unwrap();
        prop_assert_eq!(back.status, Status::Ok);
        prop_assert_eq!(&back.body, &resp.body);
        prop_assert_eq!(back.headers.get("content-type"), resp.headers.get("content-type"));
    }

    #[test]
    fn url_codec_round_trips(s in "\\PC{0,64}") {
        prop_assert_eq!(url_decode(&url_encode(&s)), s);
    }

    #[test]
    fn url_decode_total(s in "\\PC{0,64}") {
        let _ = url_decode(&s); // must not panic, whatever the input
    }

    #[test]
    fn pipelined_requests_parse_in_order(n in 1usize..6) {
        let mut wire = Vec::new();
        for i in 0..n {
            Request::get(&format!("/req/{i}")).write_to(&mut wire).unwrap();
        }
        let mut reader = BufReader::new(wire.as_slice());
        for i in 0..n {
            let req = Request::read_from(&mut reader).unwrap().expect("request");
            prop_assert_eq!(req.path, format!("/req/{i}"));
        }
        prop_assert!(Request::read_from(&mut reader).unwrap().is_none());
    }
}
