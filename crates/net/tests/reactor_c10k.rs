//! The C10k acceptance test for the event-loop transport: one server,
//! thousands of parked keep-alive connections, a constant thread count.
//!
//! The blocking transport this reactor replaced spent one OS thread per
//! open connection, so a fleet-scale monitor holding thousands of
//! keep-alive sockets was structurally impossible. Here we prove the
//! replacement claim end to end: open 2,048 connections against a single
//! server, round-trip one request on each, hold them all open, and read
//! the process thread count from `/proc/self/status` — it must not have
//! grown past the fixed transport complement (acceptor + shards +
//! handler pool) sized at spawn.

use marketscope_net::{HttpServer, ReactorConfig, Request, Response, ServerMetrics};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Connections to park (the acceptance bar is >= 2,000).
const HELD: usize = 2_048;

/// Drain exactly one HTTP response (headers + `content-length` body)
/// from `s`, returning the status line.
fn read_response(s: &mut TcpStream) -> String {
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..pos]).to_string();
            let body_len: usize = head
                .lines()
                .find_map(|l| {
                    let (name, value) = l.split_once(':')?;
                    name.trim()
                        .eq_ignore_ascii_case("content-length")
                        .then(|| value.trim().parse().ok())?
                })
                .unwrap_or(0);
            if buf.len() >= pos + 4 + body_len {
                return head.lines().next().unwrap_or_default().to_owned();
            }
        }
        match s.read(&mut chunk) {
            Ok(0) => panic!("peer closed mid-response: {buf:?}"),
            Ok(k) => buf.extend_from_slice(&chunk[..k]),
            Err(e) => panic!("read failed: {e}"),
        }
    }
}

fn wait_until(mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn two_thousand_keep_alive_connections_on_a_fixed_thread_count() {
    let threads = || marketscope_telemetry::perf::thread_count().expect("linux /proc");
    let config = ReactorConfig::default();
    let transport_threads = (1 + config.shards + config.handler_threads) as u64;

    let before_spawn = threads();
    let server = HttpServer::spawn_configured(
        "127.0.0.1:0",
        |_req: &Request| Response::ok("text/plain", b"ok".to_vec()),
        ServerMetrics::standalone(),
        None,
        config,
    )
    .unwrap();
    let after_spawn = threads();
    assert_eq!(
        after_spawn - before_spawn,
        transport_threads,
        "spawn must cost exactly the fixed transport complement"
    );

    // Phase 1: connect everything. Phase 2: write one keep-alive request
    // per connection. Phase 3: drain the responses. Writing before
    // reading lets the round trips overlap inside the reactor instead of
    // serializing 2,048 times client-side.
    let addr: SocketAddr = server.addr();
    let mut socks: Vec<TcpStream> = (0..HELD)
        .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect #{i} failed: {e}")))
        .collect();
    for s in &mut socks {
        s.write_all(b"GET /ping HTTP/1.1\r\nconnection: keep-alive\r\n\r\n")
            .unwrap();
    }
    for s in &mut socks {
        let status = read_response(s);
        assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    }

    // Everything is parked and adopted; the server holds all of them.
    assert!(
        wait_until(|| server.live_connections() == HELD as u64),
        "live gauge stuck at {} (want {HELD})",
        server.live_connections()
    );
    assert_eq!(server.request_count(), HELD as u64);
    assert_eq!(server.shed_connections(), 0, "ceiling must not engage");

    // The C10k claim itself: holding 2,048 connections costs zero
    // additional threads over the idle server.
    let while_held = threads();
    assert_eq!(
        while_held, after_spawn,
        "thread count grew while holding {HELD} connections"
    );

    // The parked mass must not starve new traffic: a fresh connection
    // still gets served promptly.
    let mut fresh = TcpStream::connect(addr).unwrap();
    fresh
        .write_all(b"GET /ping HTTP/1.1\r\nconnection: close\r\n\r\n")
        .unwrap();
    assert!(read_response(&mut fresh).starts_with("HTTP/1.1 200"));
    drop(fresh);

    // Release the herd; the live gauge must return to balance.
    drop(socks);
    assert!(
        wait_until(|| server.live_connections() == 0),
        "live gauge leaked: {}",
        server.live_connections()
    );
    server.stop();
}
