//! Ops-plane overhead guard: the structured event log and the series
//! scraper together must cost under 5% of a loopback request round
//! trip, amortized over the traffic a request actually generates.
//!
//! Same robust structure as `trace_overhead.rs`: measure the median
//! round trip through a logged server, measure the actual amortized
//! cost of the ops primitives (one `EventLog::record` and one scrape
//! tick's per-request share) over many iterations, and require the sum
//! to fit the 5% budget. The steady-state claim is pinned separately:
//! serving requests writes *nothing* to the event log — only incidents
//! (shed, accept errors, faults, alerts) record events.

use marketscope_net::client::HttpClient;
use marketscope_net::http::{Request, Response};
use marketscope_net::server::{HttpServer, ServerMetrics};
use marketscope_telemetry::{EventLog, LogLevel, Registry, SeriesStore};
use std::sync::Arc;
use std::time::Instant;

#[test]
fn ops_plane_overhead_is_under_5_percent() {
    let registry = Arc::new(Registry::new());
    let log = Arc::new(EventLog::new(4096));
    let server = HttpServer::spawn_instrumented(
        "127.0.0.1:0",
        |_req: &Request| Response::ok("text/plain", b"ok".to_vec()),
        ServerMetrics::register(&registry, &[("market", "bench")]).logged(Arc::clone(&log)),
    )
    .unwrap();
    let client = HttpClient::new();

    // Median of real round trips through the logged stack (warmed).
    for _ in 0..20 {
        client.get(server.addr(), "/x").unwrap();
    }
    let mut samples: Vec<u64> = (0..200)
        .map(|_| {
            let t = Instant::now();
            client.get(server.addr(), "/x").unwrap();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    let median_round_trip = samples[samples.len() / 2];

    // Serving clean traffic recorded no events: the log is incident-only,
    // so its steady-state per-request cost is zero by construction.
    assert_eq!(log.recorded(), 0, "clean requests must not emit events");

    // Worst-case per-event cost, amortized: even if every request DID
    // record an event (no request does), one record must fit the budget.
    let iters = 50_000u32;
    let t = Instant::now();
    for _ in 0..iters {
        log.record(
            LogLevel::Warn,
            "bench",
            "synthetic incident",
            &[("market", "bench"), ("detail", "x")],
        );
    }
    let per_record = t.elapsed().as_nanos() as u64 / iters as u64;

    // Scraper cost: one tick snapshots the registry and diffs it into
    // the rings. Pad the registry to fleet-like cardinality (17 markets
    // x a dozen instruments) so the tick cost is measured against a
    // realistic snapshot. The scraper runs on its own thread at a fixed
    // cadence, so its honest cost is CPU duty cycle — tick cost over
    // the 100ms tick interval — not a per-request latency share.
    for m in 0..17 {
        let market = format!("market{m}");
        let labels = [("market", market.as_str())];
        for status in ["200", "404", "429", "500", "503"] {
            registry
                .counter(
                    "bench_responses_total",
                    &[("market", market.as_str()), ("status", status)],
                )
                .inc();
        }
        registry.counter("bench_requests_total", &labels).inc();
        registry.gauge("bench_open_connections", &labels).set(3);
        for v in [1_000u64, 50_000, 2_000_000] {
            registry.histogram("bench_handler_nanos", &labels).record(v);
        }
    }
    let mut store = SeriesStore::new(600);
    store.observe(&registry.snapshot()); // prime `last`
    let ticks = 200u32;
    let t = Instant::now();
    for _ in 0..ticks {
        store.observe(&registry.snapshot());
    }
    let per_tick = t.elapsed().as_nanos() as u64 / ticks as u64;

    // The two components meet the <5% bar on their own axes, and their
    // combined relative overhead stays under 5% too.
    let tick_interval = 100_000_000u64; // the fleet's 100ms cadence
    let record_share = per_record.max(1) as f64 / median_round_trip.max(1) as f64;
    let scrape_duty = per_tick as f64 / tick_interval as f64;
    let combined = record_share + scrape_duty;
    assert!(
        combined < 0.05,
        "ops-plane overhead {:.2}% (log record {per_record}ns = {:.2}% of median \
         round trip {median_round_trip}ns; scrape tick {per_tick}ns = {:.2}% CPU \
         duty at 100ms cadence) exceeds the 5% budget",
        combined * 100.0,
        record_share * 100.0,
        scrape_duty * 100.0,
    );
}
