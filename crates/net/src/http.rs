//! HTTP/1.1-subset message types, parser and serializer.

use crate::error::NetError;
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::time::Duration;

/// Maximum accepted size of the request/status line plus headers.
pub const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted body size (APK payloads stay far below this).
pub const MAX_BODY: usize = 64 * 1024 * 1024;
/// Maximum number of header fields.
pub const MAX_HEADERS: usize = 64;

/// Request methods supported by the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Retrieve a resource.
    Get,
    /// Submit a body (used by developer upload endpoints).
    Post,
}

impl Method {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Result<Method, NetError> {
        match s {
            "GET" => Ok(Method::Get),
            "POST" => Ok(Method::Post),
            _ => Err(NetError::Protocol("unsupported method")),
        }
    }
}

/// Response status codes used by the market simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// 200
    Ok,
    /// 400
    BadRequest,
    /// 404
    NotFound,
    /// 429 — Google Play's rate limiting (Section 3.1) surfaces as this.
    TooManyRequests,
    /// 500
    InternalError,
    /// 503 — injected fault bursts and flaky mirrors answer with this.
    ServiceUnavailable,
}

impl Status {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::BadRequest => 400,
            Status::NotFound => 404,
            Status::TooManyRequests => 429,
            Status::InternalError => 500,
            Status::ServiceUnavailable => 503,
        }
    }

    /// Reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::BadRequest => "Bad Request",
            Status::NotFound => "Not Found",
            Status::TooManyRequests => "Too Many Requests",
            Status::InternalError => "Internal Server Error",
            Status::ServiceUnavailable => "Service Unavailable",
        }
    }

    /// Map a numeric code back to a known status.
    pub fn from_code(code: u16) -> Result<Status, NetError> {
        match code {
            200 => Ok(Status::Ok),
            400 => Ok(Status::BadRequest),
            404 => Ok(Status::NotFound),
            429 => Ok(Status::TooManyRequests),
            500 => Ok(Status::InternalError),
            503 => Ok(Status::ServiceUnavailable),
            _ => Err(NetError::Protocol("unknown status code")),
        }
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Path component (no scheme/host), e.g. `/app/com.foo.bar`.
    pub path: String,
    /// Decoded query parameters, in document order of first occurrence.
    pub query: Vec<(String, String)>,
    /// Header fields (names lower-cased).
    pub headers: BTreeMap<String, String>,
    /// Message body.
    pub body: Vec<u8>,
}

impl Request {
    /// Build a GET request for `path_and_query` (e.g. `/search?q=maps`).
    pub fn get(path_and_query: &str) -> Request {
        let (path, query) = split_query(path_and_query);
        Request {
            method: Method::Get,
            path,
            query,
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// First query parameter with the given key.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Value of one header, if present (header names are stored
    /// lower-cased).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name).map(String::as_str)
    }

    /// The propagated trace context from the
    /// [`TRACE_HEADER`](marketscope_telemetry::TRACE_HEADER) request
    /// header, if present and well-formed.
    pub fn trace_context(&self) -> Option<marketscope_telemetry::SpanContext> {
        self.header(marketscope_telemetry::TRACE_HEADER)
            .and_then(marketscope_telemetry::SpanContext::parse)
    }

    /// A copy of this request carrying the given trace context in the
    /// [`TRACE_HEADER`](marketscope_telemetry::TRACE_HEADER) header.
    pub fn with_trace_context(&self, ctx: marketscope_telemetry::SpanContext) -> Request {
        let mut req = self.clone();
        req.headers
            .insert(marketscope_telemetry::TRACE_HEADER.to_owned(), ctx.render());
        req
    }

    /// Serialize onto a writer (adds `Content-Length`; keeps the
    /// connection alive unless a `connection: close` header was set).
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), NetError> {
        let mut target = self.path.clone();
        for (i, (k, v)) in self.query.iter().enumerate() {
            target.push(if i == 0 { '?' } else { '&' });
            target.push_str(&url_encode(k));
            target.push('=');
            target.push_str(&url_encode(v));
        }
        write!(w, "{} {} HTTP/1.1\r\n", self.method.as_str(), target)?;
        for (k, v) in &self.headers {
            write!(w, "{k}: {v}\r\n")?;
        }
        write!(w, "content-length: {}\r\n\r\n", self.body.len())?;
        w.write_all(&self.body)?;
        w.flush()?;
        Ok(())
    }

    /// Parse one request from a buffered reader. Returns `Ok(None)` on a
    /// clean EOF before any byte (keep-alive peer going away).
    pub fn read_from(r: &mut impl BufRead) -> Result<Option<Request>, NetError> {
        let Some(head) = read_head(r)? else {
            return Ok(None);
        };
        let (method, target, mut headers) = parse_request_head(&head)?;
        let target = target.to_owned();
        let body = read_body(r, &headers)?;
        // content-length is transport framing, not message metadata.
        headers.remove("content-length");
        Ok(Some(assemble_request(method, &target, headers, body)?))
    }

    /// Incrementally parse one request out of an in-memory byte buffer —
    /// the nonblocking transport's entry point (see [`crate::reactor`]),
    /// where bytes arrive in readiness-sized chunks instead of through a
    /// blocking reader.
    ///
    /// Returns `Ok(None)` while the buffer holds only a prefix of a
    /// request (read more and call again), or `Ok(Some((request, n)))`
    /// once a full message is present, where `n` is the number of bytes
    /// consumed — the caller drains them and may call again on the
    /// residue (pipelined keep-alive requests). Errors mean the
    /// connection is unrecoverable: protocol violations and size-cap
    /// breaches, with the same limits as [`Request::read_from`].
    pub fn parse_partial(buf: &[u8]) -> Result<Option<(Request, usize)>, NetError> {
        let window = &buf[..buf.len().min(MAX_HEAD + 4)];
        let Some(pos) = find_terminator(window) else {
            if buf.len() >= MAX_HEAD {
                return Err(NetError::TooLarge {
                    what: "header",
                    limit: MAX_HEAD,
                });
            }
            return Ok(None);
        };
        let head =
            std::str::from_utf8(&buf[..pos]).map_err(|_| NetError::Protocol("head not utf-8"))?;
        let (method, target, mut headers) = parse_request_head(head)?;
        let body_len: usize = match headers.get("content-length") {
            None => 0,
            Some(v) => v
                .parse()
                .map_err(|_| NetError::Protocol("bad content-length"))?,
        };
        if body_len > MAX_BODY {
            return Err(NetError::TooLarge {
                what: "body",
                limit: MAX_BODY,
            });
        }
        let body_start = pos + 4;
        let Some(body_end) = body_start.checked_add(body_len).filter(|&e| e <= buf.len()) else {
            return Ok(None); // head complete, body still in flight
        };
        let body = buf[body_start..body_end].to_vec();
        headers.remove("content-length");
        let req = assemble_request(method, target, headers, body)?;
        Ok(Some((req, body_end)))
    }

    /// Whether the peer asked to close the connection after this message.
    pub fn wants_close(&self) -> bool {
        self.headers
            .get("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Response status.
    pub status: Status,
    /// Header fields (names lower-cased).
    pub headers: BTreeMap<String, String>,
    /// Message body.
    pub body: Vec<u8>,
}

impl Response {
    /// A 200 response with a body and content type.
    pub fn ok(content_type: &str, body: Vec<u8>) -> Response {
        let mut headers = BTreeMap::new();
        headers.insert("content-type".to_owned(), content_type.to_owned());
        Response {
            status: Status::Ok,
            headers,
            body,
        }
    }

    /// A 200 response carrying a JSON document.
    pub fn json(doc: &marketscope_core::json::Json) -> Response {
        Response::ok("application/json", doc.to_string_compact().into_bytes())
    }

    /// An empty response with the given status.
    pub fn status(status: Status) -> Response {
        Response {
            status,
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// An empty response with the given status and a `retry-after` header
    /// telling the client when to come back. Rendered as decimal seconds
    /// — a subset extension (RFC 9110 allows only integer seconds, too
    /// coarse for loopback rate limiters refilling in milliseconds).
    pub fn status_with_retry_after(status: Status, after: Duration) -> Response {
        let mut resp = Response::status(status);
        resp.headers
            .insert("retry-after".to_owned(), format!("{}", after.as_secs_f64()));
        resp
    }

    /// Parsed `retry-after` response header (decimal seconds), if present
    /// and well-formed. Negative or non-finite values are ignored.
    pub fn retry_after(&self) -> Option<Duration> {
        let secs: f64 = self.headers.get("retry-after")?.parse().ok()?;
        if !secs.is_finite() || secs < 0.0 {
            return None;
        }
        Some(Duration::from_secs_f64(secs))
    }

    /// Serialize onto a writer (adds `Content-Length`).
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), NetError> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\n",
            self.status.code(),
            self.status.reason()
        )?;
        for (k, v) in &self.headers {
            write!(w, "{k}: {v}\r\n")?;
        }
        write!(w, "content-length: {}\r\n\r\n", self.body.len())?;
        w.write_all(&self.body)?;
        w.flush()?;
        Ok(())
    }

    /// Serialize a deliberately broken copy of this response: the head
    /// declares the full `Content-Length` but only the first `keep` body
    /// bytes follow. A reader sees a mid-body EOF once the connection
    /// closes — the fault-injection layer's "truncated body" failure mode
    /// (see [`crate::fault`]).
    pub fn write_truncated_to(&self, w: &mut impl Write, keep: usize) -> Result<(), NetError> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\n",
            self.status.code(),
            self.status.reason()
        )?;
        for (k, v) in &self.headers {
            write!(w, "{k}: {v}\r\n")?;
        }
        write!(w, "content-length: {}\r\n\r\n", self.body.len())?;
        w.write_all(&self.body[..keep.min(self.body.len())])?;
        w.flush()?;
        Ok(())
    }

    /// Parse one response from a buffered reader.
    pub fn read_from(r: &mut impl BufRead) -> Result<Response, NetError> {
        let head = read_head(r)?.ok_or(NetError::UnexpectedEof)?;
        let (status, mut headers) = parse_status_head(&head)?;
        let body = read_body(r, &headers)?;
        headers.remove("content-length");
        Ok(Response {
            status,
            headers,
            body,
        })
    }

    /// Incrementally parse one response out of an in-memory byte buffer —
    /// the mux client's entry point (see [`crate::mux`]), where bytes
    /// arrive in readiness-sized chunks instead of through a blocking
    /// reader.
    ///
    /// Returns `Ok(None)` while the buffer holds only a prefix of a
    /// response (read more and call again), or `Ok(Some((response, n)))`
    /// once a full message is present, where `n` is the number of bytes
    /// consumed — the caller drains them and keeps any residue for the
    /// next keep-alive exchange. Errors mean the connection is
    /// unrecoverable: protocol violations and size-cap breaches, with the
    /// same limits as [`Response::read_from`].
    pub fn parse_partial(buf: &[u8]) -> Result<Option<(Response, usize)>, NetError> {
        let window = &buf[..buf.len().min(MAX_HEAD + 4)];
        let Some(pos) = find_terminator(window) else {
            if buf.len() >= MAX_HEAD {
                return Err(NetError::TooLarge {
                    what: "header",
                    limit: MAX_HEAD,
                });
            }
            return Ok(None);
        };
        let head =
            std::str::from_utf8(&buf[..pos]).map_err(|_| NetError::Protocol("head not utf-8"))?;
        let (status, mut headers) = parse_status_head(head)?;
        let body_len: usize = match headers.get("content-length") {
            None => 0,
            Some(v) => v
                .parse()
                .map_err(|_| NetError::Protocol("bad content-length"))?,
        };
        if body_len > MAX_BODY {
            return Err(NetError::TooLarge {
                what: "body",
                limit: MAX_BODY,
            });
        }
        let body_start = pos + 4;
        let Some(body_end) = body_start.checked_add(body_len).filter(|&e| e <= buf.len()) else {
            return Ok(None); // head complete, body still in flight
        };
        let body = buf[body_start..body_end].to_vec();
        headers.remove("content-length");
        Ok(Some((
            Response {
                status,
                headers,
                body,
            },
            body_end,
        )))
    }
}

/// Parse the status line plus header block (everything before the blank
/// line) into status and lower-cased headers. Shared by the blocking and
/// incremental response parsers.
fn parse_status_head(head: &str) -> Result<(Status, BTreeMap<String, String>), NetError> {
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or(NetError::Protocol("empty head"))?;
    let mut parts = status_line.splitn(3, ' ');
    match parts.next() {
        Some("HTTP/1.1" | "HTTP/1.0") => {}
        _ => return Err(NetError::Protocol("bad http version")),
    }
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or(NetError::Protocol("bad status code"))?;
    let status = Status::from_code(code)?;
    let headers = parse_headers(lines)?;
    Ok((status, headers))
}

/// Read the head (request/status line + headers) up to the blank line.
/// Returns `Ok(None)` on immediate EOF.
fn read_head(r: &mut impl BufRead) -> Result<Option<String>, NetError> {
    let mut head = Vec::new();
    loop {
        let available = r.fill_buf()?;
        if available.is_empty() {
            if head.is_empty() {
                return Ok(None);
            }
            return Err(NetError::UnexpectedEof);
        }
        // Look for the terminator across the boundary by appending first.
        let take = available.len().min(MAX_HEAD + 4 - head.len());
        head.extend_from_slice(&available[..take]);
        if let Some(pos) = find_terminator(&head) {
            let consumed = take - (head.len() - pos - 4);
            r.consume(consumed);
            head.truncate(pos);
            let s = String::from_utf8(head).map_err(|_| NetError::Protocol("head not utf-8"))?;
            return Ok(Some(s));
        }
        r.consume(take);
        if head.len() >= MAX_HEAD {
            return Err(NetError::TooLarge {
                what: "header",
                limit: MAX_HEAD,
            });
        }
    }
}

/// Position of the `\r\n\r\n` terminator, if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parse the request line plus header block (everything before the blank
/// line) into method, raw target, and lower-cased headers. Shared by the
/// blocking and incremental request parsers.
fn parse_request_head(head: &str) -> Result<(Method, &str, BTreeMap<String, String>), NetError> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(NetError::Protocol("empty head"))?;
    let mut parts = request_line.split(' ');
    let method = Method::parse(parts.next().unwrap_or(""))?;
    let target = parts.next().ok_or(NetError::Protocol("missing target"))?;
    match parts.next() {
        Some("HTTP/1.1" | "HTTP/1.0") => {}
        _ => return Err(NetError::Protocol("bad http version")),
    }
    if parts.next().is_some() {
        return Err(NetError::Protocol("malformed request line"));
    }
    let headers = parse_headers(lines)?;
    Ok((method, target, headers))
}

/// Final request assembly shared by both parsers: split the target into
/// path and query, validate the path shape.
fn assemble_request(
    method: Method,
    target: &str,
    headers: BTreeMap<String, String>,
    body: Vec<u8>,
) -> Result<Request, NetError> {
    let (path, query) = split_query(target);
    if !path.starts_with('/') {
        return Err(NetError::Protocol("target must be absolute path"));
    }
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

fn parse_headers<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<BTreeMap<String, String>, NetError> {
    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line
            .split_once(':')
            .ok_or(NetError::Protocol("malformed header"))?;
        if k.is_empty() || k.contains(' ') {
            return Err(NetError::Protocol("malformed header name"));
        }
        if headers.len() >= MAX_HEADERS {
            return Err(NetError::TooLarge {
                what: "header count",
                limit: MAX_HEADERS,
            });
        }
        headers.insert(k.to_ascii_lowercase(), v.trim().to_owned());
    }
    Ok(headers)
}

fn read_body(
    r: &mut impl BufRead,
    headers: &BTreeMap<String, String>,
) -> Result<Vec<u8>, NetError> {
    let len: usize = match headers.get("content-length") {
        None => return Ok(Vec::new()),
        Some(v) => v
            .parse()
            .map_err(|_| NetError::Protocol("bad content-length"))?,
    };
    if len > MAX_BODY {
        return Err(NetError::TooLarge {
            what: "body",
            limit: MAX_BODY,
        });
    }
    let mut body = vec![0u8; len];
    let mut read = 0;
    while read < len {
        let available = r.fill_buf()?;
        if available.is_empty() {
            return Err(NetError::UnexpectedEof);
        }
        let take = available.len().min(len - read);
        body[read..read + take].copy_from_slice(&available[..take]);
        r.consume(take);
        read += take;
    }
    Ok(body)
}

/// Split a request target into path and decoded query pairs.
fn split_query(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_owned(), Vec::new()),
        Some((path, q)) => {
            let mut out = Vec::new();
            for pair in q.split('&') {
                if pair.is_empty() {
                    continue;
                }
                let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                out.push((url_decode(k), url_decode(v)));
            }
            (path.to_owned(), out)
        }
    }
}

/// Percent-encode everything outside the unreserved set.
pub fn url_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => {
                use std::fmt::Write;
                let _ = write!(out, "%{b:02X}");
            }
        }
    }
    out
}

/// Percent-decode; invalid escapes pass through literally (lenient, as
/// real crawlers must be).
pub fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    fn hex_val(b: u8) -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    }
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            if let (Some(hi), Some(lo)) = (hex_val(bytes[i + 1]), hex_val(bytes[i + 2])) {
                out.push(hi * 16 + lo);
                i += 3;
                continue;
            }
        }
        if bytes[i] == b'+' {
            out.push(b' ');
        } else {
            out.push(bytes[i]);
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn round_trip_request(req: &Request) -> Request {
        let mut wire = Vec::new();
        req.write_to(&mut wire).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        Request::read_from(&mut reader).unwrap().unwrap()
    }

    #[test]
    fn request_round_trip() {
        let mut req = Request::get("/app/com.foo.bar?fields=all&lang=zh");
        req.headers.insert("x-crawler".into(), "marketscope".into());
        let back = round_trip_request(&req);
        assert_eq!(back.method, Method::Get);
        assert_eq!(back.path, "/app/com.foo.bar");
        assert_eq!(back.query_param("fields"), Some("all"));
        assert_eq!(back.query_param("lang"), Some("zh"));
        assert_eq!(back.headers.get("x-crawler").unwrap(), "marketscope");
    }

    #[test]
    fn request_with_body_round_trip() {
        let mut req = Request::get("/upload");
        req.method = Method::Post;
        req.body = vec![1, 2, 3, 255, 0];
        let back = round_trip_request(&req);
        assert_eq!(back.body, vec![1, 2, 3, 255, 0]);
    }

    #[test]
    fn query_encoding_round_trips_special_chars() {
        let mut req = Request::get("/search");
        req.query.push(("q".into(), "酷狗 music & more".into()));
        let back = round_trip_request(&req);
        assert_eq!(back.query_param("q"), Some("酷狗 music & more"));
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::ok("application/octet-stream", vec![9u8; 1000]);
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        let back = Response::read_from(&mut reader).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn retry_after_round_trips_fractional_seconds() {
        let resp = Response::status_with_retry_after(
            Status::ServiceUnavailable,
            Duration::from_millis(250),
        );
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let back = Response::read_from(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(back.status, Status::ServiceUnavailable);
        assert_eq!(back.retry_after(), Some(Duration::from_millis(250)));
        // Absent and malformed headers parse to None.
        assert_eq!(Response::status(Status::Ok).retry_after(), None);
        let mut junk = Response::status(Status::Ok);
        junk.headers.insert("retry-after".into(), "soon".into());
        assert_eq!(junk.retry_after(), None);
        junk.headers.insert("retry-after".into(), "-3".into());
        assert_eq!(junk.retry_after(), None);
    }

    #[test]
    fn truncated_write_produces_mid_body_eof() {
        let resp = Response::ok("text/plain", vec![7u8; 100]);
        let mut wire = Vec::new();
        resp.write_truncated_to(&mut wire, 40).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        assert!(matches!(
            Response::read_from(&mut reader),
            Err(NetError::UnexpectedEof)
        ));
    }

    #[test]
    fn empty_status_responses() {
        for s in [
            Status::NotFound,
            Status::TooManyRequests,
            Status::InternalError,
            Status::ServiceUnavailable,
        ] {
            let resp = Response::status(s);
            let mut wire = Vec::new();
            resp.write_to(&mut wire).unwrap();
            let back = Response::read_from(&mut BufReader::new(wire.as_slice())).unwrap();
            assert_eq!(back.status, s);
            assert!(back.body.is_empty());
        }
    }

    #[test]
    fn keep_alive_two_requests_one_stream() {
        let mut wire = Vec::new();
        Request::get("/a").write_to(&mut wire).unwrap();
        Request::get("/b").write_to(&mut wire).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        assert_eq!(Request::read_from(&mut reader).unwrap().unwrap().path, "/a");
        assert_eq!(Request::read_from(&mut reader).unwrap().unwrap().path, "/b");
        assert!(Request::read_from(&mut reader).unwrap().is_none());
    }

    #[test]
    fn clean_eof_yields_none() {
        let mut reader = BufReader::new(&[][..]);
        assert!(Request::read_from(&mut reader).unwrap().is_none());
    }

    #[test]
    fn truncated_body_is_unexpected_eof() {
        let wire = b"GET /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc";
        let mut reader = BufReader::new(&wire[..]);
        assert!(matches!(
            Request::read_from(&mut reader),
            Err(NetError::UnexpectedEof)
        ));
    }

    #[test]
    fn rejects_protocol_violations() {
        for bad in [
            "BREW /x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/2\r\n\r\n",
            "GET x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "GET /x HTTP/1.1\r\nbad header line\r\n\r\n",
            "GET /x HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
        ] {
            let mut reader = BufReader::new(bad.as_bytes());
            assert!(Request::read_from(&mut reader).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut wire = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..2000 {
            wire.push_str(&format!("x-h{i}: {}\r\n", "v".repeat(20)));
        }
        wire.push_str("\r\n");
        let mut reader = BufReader::new(wire.as_bytes());
        assert!(matches!(
            Request::read_from(&mut reader),
            Err(NetError::TooLarge { what: "header", .. })
        ));
    }

    #[test]
    fn oversized_declared_body_is_rejected() {
        let wire = format!(
            "GET /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let mut reader = BufReader::new(wire.as_bytes());
        assert!(matches!(
            Request::read_from(&mut reader),
            Err(NetError::TooLarge { what: "body", .. })
        ));
    }

    #[test]
    fn url_codec_round_trip() {
        for s in ["hello", "a b+c", "100%", "中文/路径", "a=b&c=d"] {
            assert_eq!(url_decode(&url_encode(s)), s, "{s}");
        }
    }

    #[test]
    fn url_decode_lenient_on_invalid() {
        assert_eq!(url_decode("%zz"), "%zz");
        assert_eq!(url_decode("%"), "%");
        assert_eq!(url_decode("a+b"), "a b");
    }

    #[test]
    fn parse_partial_needs_more_then_parses() {
        let wire = b"POST /upload HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello";
        // Every strict prefix is "need more bytes", never an error.
        for cut in 0..wire.len() {
            assert!(
                matches!(Request::parse_partial(&wire[..cut]), Ok(None)),
                "prefix of {cut} bytes must be incomplete"
            );
        }
        let (req, used) = Request::parse_partial(wire).unwrap().unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.path, "/upload");
        assert_eq!(req.body, b"hello");
        assert!(!req.headers.contains_key("content-length"));
    }

    #[test]
    fn parse_partial_pipelined_requests_consume_in_order() {
        let mut wire = Vec::new();
        Request::get("/a").write_to(&mut wire).unwrap();
        Request::get("/b?x=1").write_to(&mut wire).unwrap();
        let (first, used) = Request::parse_partial(&wire).unwrap().unwrap();
        assert_eq!(first.path, "/a");
        let (second, used2) = Request::parse_partial(&wire[used..]).unwrap().unwrap();
        assert_eq!(second.path, "/b");
        assert_eq!(second.query_param("x"), Some("1"));
        assert_eq!(used + used2, wire.len());
        assert!(matches!(Request::parse_partial(&[]), Ok(None)));
    }

    #[test]
    fn parse_partial_matches_read_from_on_violations() {
        for bad in [
            "BREW /x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/2\r\n\r\n",
            "GET x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "GET /x HTTP/1.1\r\nbad header line\r\n\r\n",
            "GET /x HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
        ] {
            assert!(Request::parse_partial(bad.as_bytes()).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn parse_partial_enforces_size_caps() {
        // A head that never terminates within MAX_HEAD is rejected, not
        // buffered forever.
        let endless = vec![b'x'; MAX_HEAD + 8];
        assert!(matches!(
            Request::parse_partial(&endless),
            Err(NetError::TooLarge { what: "header", .. })
        ));
        let huge_body = format!(
            "GET /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            Request::parse_partial(huge_body.as_bytes()),
            Err(NetError::TooLarge { what: "body", .. })
        ));
    }

    #[test]
    fn response_parse_partial_needs_more_then_matches_read_from() {
        let mut wire = Vec::new();
        Response::ok("text/plain", b"hello".to_vec())
            .write_to(&mut wire)
            .unwrap();
        // Every strict prefix is "need more bytes", never an error.
        for cut in 0..wire.len() {
            assert!(
                matches!(Response::parse_partial(&wire[..cut]), Ok(None)),
                "prefix of {cut} bytes must be incomplete"
            );
        }
        let (resp, used) = Response::parse_partial(&wire).unwrap().unwrap();
        assert_eq!(used, wire.len());
        let blocking = Response::read_from(&mut std::io::BufReader::new(&wire[..])).unwrap();
        assert_eq!(resp, blocking, "incremental parse must match read_from");
        assert_eq!(resp.body, b"hello");
        assert!(!resp.headers.contains_key("content-length"));
    }

    #[test]
    fn response_parse_partial_keep_alive_residue_consumes_in_order() {
        let mut wire = Vec::new();
        Response::status(Status::NotFound)
            .write_to(&mut wire)
            .unwrap();
        Response::status_with_retry_after(Status::TooManyRequests, Duration::from_millis(250))
            .write_to(&mut wire)
            .unwrap();
        let (first, used) = Response::parse_partial(&wire).unwrap().unwrap();
        assert_eq!(first.status, Status::NotFound);
        let (second, used2) = Response::parse_partial(&wire[used..]).unwrap().unwrap();
        assert_eq!(second.status, Status::TooManyRequests);
        assert_eq!(second.retry_after(), Some(Duration::from_millis(250)));
        assert_eq!(used + used2, wire.len());
        assert!(matches!(Response::parse_partial(&[]), Ok(None)));
    }

    #[test]
    fn response_parse_partial_matches_read_from_on_violations() {
        for bad in [
            "HTTP/2 200 OK\r\n\r\n",
            "HTTP/1.1 banana OK\r\n\r\n",
            "HTTP/1.1 200 OK\r\nbad header line\r\n\r\n",
            "HTTP/1.1 200 OK\r\ncontent-length: banana\r\n\r\n",
        ] {
            let partial = Response::parse_partial(bad.as_bytes());
            let blocking = Response::read_from(&mut std::io::BufReader::new(bad.as_bytes()));
            assert!(partial.is_err(), "{bad:?}");
            assert!(blocking.is_err(), "{bad:?}");
        }
    }

    #[test]
    fn response_parse_partial_enforces_size_caps() {
        let endless = vec![b'x'; MAX_HEAD + 8];
        assert!(matches!(
            Response::parse_partial(&endless),
            Err(NetError::TooLarge { what: "header", .. })
        ));
        let huge_body = format!(
            "HTTP/1.1 200 OK\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            Response::parse_partial(huge_body.as_bytes()),
            Err(NetError::TooLarge { what: "body", .. })
        ));
    }

    #[test]
    fn wants_close_header() {
        let mut req = Request::get("/");
        assert!(!req.wants_close());
        req.headers.insert("connection".into(), "close".into());
        assert!(req.wants_close());
        req.headers.insert("connection".into(), "keep-alive".into());
        assert!(!req.wants_close());
    }
}
