//! The HTTP client: keep-alive connection pooling, timeouts, classified
//! retries, and optional circuit breaking — all served by the
//! multiplexed [`mux`](crate::mux) engine.
//!
//! [`HttpClient`] keeps its original blocking surface
//! (`request`/`get`/`get_json`), but each call is now a thin
//! submit-then-wait wrapper over one shared [`MuxClient`] driver
//! thread, so a caller thread blocked in `get` costs a parked ticket,
//! not a socket-bound thread. Batch callers use [`HttpClient::get_many`]
//! / [`HttpClient::get_json_many`] (or the ticket-level
//! [`HttpClient::submit_get`]) to put hundreds of requests in flight
//! from a single thread.

use crate::error::NetError;
use crate::http::{Request, Response, Status};
use crate::mux::{decode_response, DecodeMode, MuxClient, Payload, Ticket};
use crate::resilience::{BreakerConfig, BreakerSet, ResilienceMetrics, RetryPolicy};
use marketscope_core::hash::fnv1a64;
use marketscope_telemetry::{trace, Counter, Histogram, Registry, SpanContext, Tracer};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Client configuration. Prefer [`ClientConfig::builder`]; the fields
/// stay public for `..Default::default()`-style construction.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-socket read/write timeout.
    pub io_timeout: Duration,
    /// Connect timeout.
    pub connect_timeout: Duration,
    /// How many idle connections to keep per remote address.
    pub pool_per_host: usize,
    /// Transparent same-request retries on *transient* connection-level
    /// failures (the keep-alive race, a reset socket). HTTP error
    /// statuses never retry here — that is [`RetryPolicy`]'s job.
    pub retries: u32,
    /// Cap on concurrently in-flight requests through this client,
    /// enforced as the mux driver's wire-active limit: excess
    /// submissions queue inside the driver instead of blocking caller
    /// threads on a gate. `None` (the default) means unbounded; the
    /// load generator sets it to hold *offered* concurrency constant
    /// while it sweeps worker counts, so achieved-vs-offered RPS is
    /// attributable to the server side rather than client-side queueing.
    pub max_inflight: Option<usize>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            io_timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(5),
            pool_per_host: 8,
            retries: 2,
            max_inflight: None,
        }
    }
}

impl ClientConfig {
    /// Start from defaults and override individual knobs:
    ///
    /// ```
    /// # use marketscope_net::client::ClientConfig;
    /// let cfg = ClientConfig::builder().retries(0).pool_per_host(4).build();
    /// assert_eq!(cfg.retries, 0);
    /// ```
    pub fn builder() -> ClientConfigBuilder {
        ClientConfigBuilder {
            inner: ClientConfig::default(),
        }
    }

    /// Positional construction shim for pre-builder call sites.
    #[deprecated(note = "use ClientConfig::builder()")]
    pub fn legacy(
        io_timeout: Duration,
        connect_timeout: Duration,
        pool_per_host: usize,
        retries: u32,
        max_inflight: Option<usize>,
    ) -> ClientConfig {
        ClientConfig {
            io_timeout,
            connect_timeout,
            pool_per_host,
            retries,
            max_inflight,
        }
    }
}

/// Builds a [`ClientConfig`] knob by knob. Obtained from
/// [`ClientConfig::builder`]; every setter defaults to the
/// [`ClientConfig::default`] value when not called.
#[derive(Debug, Clone)]
pub struct ClientConfigBuilder {
    inner: ClientConfig,
}

impl ClientConfigBuilder {
    /// Per-socket read/write timeout.
    pub fn io_timeout(mut self, t: Duration) -> Self {
        self.inner.io_timeout = t;
        self
    }

    /// Connect timeout.
    pub fn connect_timeout(mut self, t: Duration) -> Self {
        self.inner.connect_timeout = t;
        self
    }

    /// Idle connections kept per remote address.
    pub fn pool_per_host(mut self, n: usize) -> Self {
        self.inner.pool_per_host = n;
        self
    }

    /// Transparent transient-failure retries per request.
    pub fn retries(mut self, n: u32) -> Self {
        self.inner.retries = n;
        self
    }

    /// Mux driver cap on wire-active requests.
    pub fn max_inflight(mut self, n: usize) -> Self {
        self.inner.max_inflight = Some(n);
        self
    }

    /// Finish the configuration.
    pub fn build(self) -> ClientConfig {
        self.inner
    }
}

/// Error kinds the client counts separately (see [`NetError::kind`]).
const ERROR_KINDS: [&str; 6] = [
    "io",
    "protocol",
    "too_large",
    "status",
    "eof",
    "circuit_open",
];

/// Client-side instruments: request latency, transparent retries, and
/// errors broken down by kind. Cloneable so the blocking wrapper and
/// the mux driver share one set of counters.
#[derive(Debug, Clone)]
pub struct ClientMetrics {
    request_nanos: Arc<Histogram>,
    retries: Arc<Counter>,
    errors: Vec<(&'static str, Arc<Counter>)>,
}

impl ClientMetrics {
    /// Register the client instruments in `registry` under the given base
    /// labels. Metric names:
    ///
    /// * `marketscope_net_client_request_nanos`
    /// * `marketscope_net_client_retries_total`
    /// * `marketscope_net_client_errors_total{kind="..."}`
    pub fn register(registry: &Registry, labels: &[(&str, &str)]) -> ClientMetrics {
        let errors = ERROR_KINDS
            .iter()
            .map(|&kind| {
                let mut with_kind = labels.to_vec();
                with_kind.push(("kind", kind));
                (
                    kind,
                    registry.counter("marketscope_net_client_errors_total", &with_kind),
                )
            })
            .collect();
        ClientMetrics {
            request_nanos: registry.histogram("marketscope_net_client_request_nanos", labels),
            retries: registry.counter("marketscope_net_client_retries_total", labels),
            errors,
        }
    }

    pub(crate) fn note_error(&self, e: &NetError) {
        let kind = e.kind();
        if let Some((_, c)) = self.errors.iter().find(|(k, _)| *k == kind) {
            c.inc();
        }
    }

    /// One transparent connection-level retry burned.
    pub(crate) fn note_transparent_retry(&self) {
        self.retries.inc();
    }

    /// One wire cycle finished (success or failure) after `elapsed`.
    pub(crate) fn record_request(&self, elapsed: Duration) {
        self.request_nanos.record_duration(elapsed);
    }
}

/// Configures and builds an [`HttpClient`]. Obtained from
/// [`HttpClient::builder`]; every knob is optional:
///
/// ```no_run
/// # use marketscope_net::client::{ClientConfig, HttpClient};
/// # use marketscope_net::resilience::{BreakerConfig, RetryPolicy};
/// let client = HttpClient::builder()
///     .config(ClientConfig::builder().pool_per_host(4).build())
///     .retry(RetryPolicy::default())
///     .breaker(BreakerConfig::default())
///     .build();
/// ```
#[derive(Default)]
pub struct HttpClientBuilder {
    config: Option<ClientConfig>,
    metrics: Option<ClientMetrics>,
    tracer: Option<Arc<Tracer>>,
    retry: Option<RetryPolicy>,
    breaker: Option<BreakerConfig>,
    resilience_metrics: Option<ResilienceMetrics>,
}

impl HttpClientBuilder {
    /// Socket-level configuration (timeouts, pool size, transparent
    /// connection retries, driver in-flight cap).
    pub fn config(mut self, config: ClientConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Attach registered instruments: every request records its latency;
    /// retries and errors are counted by kind.
    pub fn metrics(mut self, metrics: ClientMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attach a tracer. When a sampled span is active on the calling
    /// thread, each request opens a child span plus one span per
    /// connection attempt, and every attempt carries its own span
    /// context out in the `x-marketscope-trace` header so the server's
    /// handler spans link back to this exact attempt.
    pub fn tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Attach a status-level retry policy: [`HttpClient::get`] retries
    /// [retryable](NetError::is_retryable) failures with deterministic
    /// backoff, honoring server `retry-after` hints within the policy's
    /// budget.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Attach per-host circuit breaking: after a run of terminal
    /// failures, requests to that host fast-fail with
    /// [`NetError::CircuitOpen`] until a half-open probe succeeds.
    pub fn breaker(mut self, config: BreakerConfig) -> Self {
        self.breaker = Some(config);
        self
    }

    /// Attach resilience instruments (retry counts, backoff time,
    /// fast-fails, breaker transitions and the open-circuit gauge).
    pub fn resilience_metrics(mut self, metrics: ResilienceMetrics) -> Self {
        self.resilience_metrics = Some(metrics);
        self
    }

    /// Build the client (and its mux engine; the driver thread itself
    /// spawns lazily on the first submission).
    pub fn build(self) -> HttpClient {
        let config = self.config.unwrap_or_default();
        let breakers = self
            .breaker
            .map(|cfg| Arc::new(BreakerSet::new(cfg, self.resilience_metrics.clone())));
        HttpClient {
            mux: MuxClient::new(
                config,
                self.tracer,
                self.metrics.clone(),
                self.retry,
                breakers.clone(),
                self.resilience_metrics.clone(),
            ),
            metrics: self.metrics,
            retry: self.retry,
            breakers,
            resilience_metrics: self.resilience_metrics,
        }
    }
}

/// One entry in a batched fetch: where to go, what to get, and how the
/// submission hangs in the trace/ordering fabric.
#[derive(Debug, Clone)]
pub struct FetchSpec {
    /// Server to contact.
    pub addr: SocketAddr,
    /// Path plus query string, as [`HttpClient::get`] takes it.
    pub path: String,
    /// Span the request's client spans are parented under. Capture
    /// [`trace::current()`] for "as if called on this thread", or a
    /// pre-opened per-item span's context for batch fan-out.
    pub parent: Option<SpanContext>,
    /// Ordering lane: submissions sharing a lane key run one at a time
    /// in submission order (a per-market batch reaches that market's
    /// server in exactly the sequence a blocking loop would produce).
    /// `None` imposes no ordering.
    pub lane: Option<u64>,
}

impl FetchSpec {
    /// A spec parented under the calling thread's current span, with no
    /// ordering lane.
    pub fn new(addr: SocketAddr, path: impl Into<String>) -> FetchSpec {
        FetchSpec {
            addr,
            path: path.into(),
            parent: trace::current(),
            lane: None,
        }
    }

    /// Serialize this fetch behind every other fetch sharing `lane`.
    pub fn lane(mut self, lane: u64) -> FetchSpec {
        self.lane = Some(lane);
        self
    }

    /// Parent the request's spans under `ctx` instead of the submitting
    /// thread's current span.
    pub fn parent(mut self, ctx: Option<SpanContext>) -> FetchSpec {
        self.parent = ctx;
        self
    }
}

/// A blocking-surface HTTP client over the multiplexed driver.
///
/// Cloneable-by-reference via `Arc` at call sites; internally synchronized
/// so crawler worker threads can share one client (and with it one pool,
/// one breaker set, and one driver thread).
pub struct HttpClient {
    mux: MuxClient,
    metrics: Option<ClientMetrics>,
    retry: Option<RetryPolicy>,
    breakers: Option<Arc<BreakerSet>>,
    resilience_metrics: Option<ResilienceMetrics>,
}

impl HttpClient {
    /// Client with default configuration, no telemetry, no resilience
    /// policy — the trivial case. Everything else goes through
    /// [`HttpClient::builder`].
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Start building a configured client.
    pub fn builder() -> HttpClientBuilder {
        HttpClientBuilder::default()
    }

    /// Issue a request and await the response. Pooled connections are
    /// reused; *transient* connection-level failures (a reset socket,
    /// mid-message EOF — the classic keep-alive race) are retried on a
    /// fresh connection, bounded by [`ClientConfig::retries`]. Error
    /// statuses and protocol violations surface immediately.
    ///
    /// Equivalent to [`MuxClient::submit`] + [`MuxClient::wait`]: the
    /// wire work happens on the driver thread, this thread just parks
    /// on the ticket.
    pub fn request(&self, addr: SocketAddr, req: &Request) -> Result<Response, NetError> {
        let ticket = self.mux.submit(addr, req.clone());
        self.mux.wait(ticket)
    }

    /// Enqueue a raw request without waiting; redeem the ticket with
    /// [`HttpClient::wait`]. The open-loop form of
    /// [`HttpClient::request`].
    pub fn submit(&self, addr: SocketAddr, req: &Request) -> Ticket {
        self.mux.submit(addr, req.clone())
    }

    /// Enqueue one managed GET (full retry/breaker/trace policy executed
    /// inside the driver) without waiting; redeem with
    /// [`HttpClient::wait`]. The open-loop form of [`HttpClient::get`].
    pub fn submit_get(&self, spec: &FetchSpec) -> Ticket {
        self.mux.submit_managed(
            spec.addr,
            &spec.path,
            DecodeMode::Response,
            spec.parent,
            spec.lane,
        )
    }

    /// Block on a ticket from [`HttpClient::submit`] or
    /// [`HttpClient::submit_get`].
    pub fn wait(&self, ticket: Ticket) -> Result<Response, NetError> {
        self.mux.wait(ticket)
    }

    /// Enqueue one managed JSON GET without waiting; redeem with
    /// [`HttpClient::wait_json`]. The open-loop form of
    /// [`HttpClient::get_json`].
    pub fn submit_get_json(&self, spec: &FetchSpec) -> Ticket {
        self.mux.submit_managed(
            spec.addr,
            &spec.path,
            DecodeMode::Json,
            spec.parent,
            spec.lane,
        )
    }

    /// Block on a ticket from [`HttpClient::submit_get_json`].
    pub fn wait_json(&self, ticket: Ticket) -> Result<marketscope_core::json::Json, NetError> {
        match self.mux.wait_payload(ticket)? {
            Payload::Doc(doc) => Ok(doc),
            Payload::Resp(_) => Err(NetError::Protocol("unexpected undecoded payload")),
        }
    }

    /// Convenience: GET a path and require a 200. Non-200 statuses
    /// surface as [`NetError::Status`] carrying any `retry-after` hint.
    ///
    /// This is where the resilience policy lives: with a
    /// [`RetryPolicy`] attached, retryable failures (connection faults,
    /// 429/500/503) are retried with deterministic backoff until the
    /// policy's budget runs out; with a [`BreakerConfig`] attached, a
    /// host whose requests keep failing terminally gets its circuit
    /// opened and subsequent calls fast-fail with
    /// [`NetError::CircuitOpen`] until a probe succeeds.
    pub fn get(&self, addr: SocketAddr, path_and_query: &str) -> Result<Response, NetError> {
        match self.get_with(addr, path_and_query, DecodeMode::Response)? {
            Payload::Resp(resp) => Ok(resp),
            Payload::Doc(_) => Err(NetError::Protocol("unexpected decoded payload")),
        }
    }

    /// Convenience: GET a path, parse the body as JSON, require a 200.
    ///
    /// Runs the same retry/breaker/trace loop as [`HttpClient::get`]:
    /// the body decode happens inside the resilience cycle (through the
    /// shared decode seam the mux driver also uses), so a malformed body
    /// is classified, counted, and settled with the breaker exactly like
    /// any other terminal failure instead of bypassing the policy.
    pub fn get_json(
        &self,
        addr: SocketAddr,
        path_and_query: &str,
    ) -> Result<marketscope_core::json::Json, NetError> {
        match self.get_with(addr, path_and_query, DecodeMode::Json)? {
            Payload::Doc(doc) => Ok(doc),
            Payload::Resp(_) => Err(NetError::Protocol("unexpected undecoded payload")),
        }
    }

    /// Batched [`HttpClient::get`]: submit every spec to the driver at
    /// once, then collect outcomes in spec order. All requests are in
    /// flight concurrently (subject to `max_inflight` and each spec's
    /// lane), from one caller thread.
    pub fn get_many(&self, specs: &[FetchSpec]) -> Vec<Result<Response, NetError>> {
        let tickets: Vec<Ticket> = specs.iter().map(|s| self.submit_get(s)).collect();
        tickets.into_iter().map(|t| self.mux.wait(t)).collect()
    }

    /// Batched [`HttpClient::get_json`]: like [`HttpClient::get_many`]
    /// with each body decoded as JSON inside the driver.
    pub fn get_json_many(
        &self,
        specs: &[FetchSpec],
    ) -> Vec<Result<marketscope_core::json::Json, NetError>> {
        let tickets: Vec<Ticket> = specs
            .iter()
            .map(|s| {
                self.mux
                    .submit_managed(s.addr, &s.path, DecodeMode::Json, s.parent, s.lane)
            })
            .collect();
        tickets
            .into_iter()
            .map(|t| match self.mux.wait_payload(t) {
                Ok(Payload::Doc(doc)) => Ok(doc),
                Ok(Payload::Resp(_)) => Err(NetError::Protocol("unexpected undecoded payload")),
                Err(e) => Err(e),
            })
            .collect()
    }

    /// The shared `get` loop: breaker admission, one wire request via
    /// the mux driver, the status/decode seam, and the retry policy —
    /// all on the calling thread, exactly as the blocking client always
    /// ran it. `get` and `get_json` differ only in `mode`.
    fn get_with(
        &self,
        addr: SocketAddr,
        path_and_query: &str,
        mode: DecodeMode,
    ) -> Result<Payload, NetError> {
        let req = Request::get(path_and_query);
        let breaker = self.breakers.as_ref().map(|b| b.for_host(addr));
        let key = fnv1a64(path_and_query.as_bytes());
        let mut slept = Duration::ZERO;
        let mut attempt = 0u32;
        loop {
            if let Some(b) = &breaker {
                if !b.admit() {
                    let err = NetError::CircuitOpen;
                    trace::current_event("circuit_open");
                    if let Some(m) = &self.metrics {
                        m.note_error(&err);
                    }
                    return Err(err);
                }
            }
            // Wire errors were already counted inside the driver; errors
            // *minted here* — a non-200 status, a body that fails the
            // decode seam — get their own count.
            let result = self
                .request(addr, &req)
                .map_err(|e| (e, false))
                .and_then(|resp| {
                    if resp.status == Status::Ok {
                        Ok(resp)
                    } else {
                        Err((
                            NetError::Status {
                                code: resp.status.code(),
                                retry_after: resp.retry_after(),
                            },
                            true,
                        ))
                    }
                })
                .and_then(|resp| decode_response(resp, mode).map_err(|e| (e, true)));
            let (err, minted) = match result {
                Ok(payload) => {
                    if let Some(b) = &breaker {
                        b.on_success();
                    }
                    return Ok(payload);
                }
                Err(pair) => pair,
            };
            if minted {
                if let Some(m) = &self.metrics {
                    m.note_error(&err);
                }
            }
            let delay = self
                .retry
                .as_ref()
                .and_then(|p| p.delay_for(&err, attempt, key, slept));
            match delay {
                Some(wait) => {
                    // Still trying: the breaker only hears about
                    // *terminal* outcomes.
                    trace::current_event(&format!("resilient-retry:{}", err.kind()));
                    if let Some(rm) = &self.resilience_metrics {
                        rm.note_retry(wait);
                    }
                    std::thread::sleep(wait);
                    slept += wait;
                    attempt += 1;
                }
                None => {
                    if let Some(b) = &breaker {
                        // Only signs of host distress — dead connections
                        // and 5xx answers — push the circuit toward open.
                        // A 404 is a definitive answer and a 429 means
                        // the host is alive enough to throttle us; both
                        // leave the breaker closed.
                        let host_fault = err.is_transient()
                            || matches!(
                                err,
                                NetError::Status {
                                    code: 500..=599,
                                    ..
                                }
                            );
                        if host_fault {
                            b.on_failure();
                        } else {
                            b.on_success();
                        }
                    }
                    return Err(err);
                }
            }
        }
    }

    /// Number of idle pooled connections (for tests/metrics).
    pub fn idle_connections(&self) -> usize {
        self.mux.idle_connections()
    }

    /// Number of per-host circuits currently not closed (zero without a
    /// breaker).
    pub fn open_circuits(&self) -> usize {
        self.breakers.as_ref().map_or(0, |b| b.open_count())
    }
}

impl Default for HttpClient {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::HttpServer;
    use marketscope_core::json::Json;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn get_round_trip_and_pooling() {
        let server = HttpServer::spawn(|req: &Request| {
            Response::ok("text/plain", req.path.as_bytes().to_vec())
        })
        .unwrap();
        let client = HttpClient::new();
        for i in 0..5 {
            let resp = client.get(server.addr(), &format!("/ping/{i}")).unwrap();
            assert_eq!(resp.body, format!("/ping/{i}").into_bytes());
        }
        // All five requests reused one pooled connection.
        assert_eq!(client.idle_connections(), 1);
        assert_eq!(server.live_connections(), 1);
    }

    #[test]
    fn get_json_parses() {
        let server = HttpServer::spawn(|_req: &Request| {
            Response::json(&Json::obj([("apps", Json::from(vec![1i64, 2, 3]))]))
        })
        .unwrap();
        let client = HttpClient::new();
        let doc = client.get_json(server.addr(), "/index").unwrap();
        assert_eq!(doc.get("apps").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn non_200_statuses_surface() {
        let server = HttpServer::spawn(|req: &Request| {
            if req.path == "/limited" {
                Response::status(Status::TooManyRequests)
            } else {
                Response::status(Status::NotFound)
            }
        })
        .unwrap();
        let client = HttpClient::new();
        match client.get(server.addr(), "/limited") {
            Err(NetError::Status { code: 429, .. }) => {}
            other => panic!("expected 429, got {other:?}"),
        }
        match client.get(server.addr(), "/nope") {
            Err(NetError::Status { code: 404, .. }) => {}
            other => panic!("expected 404, got {other:?}"),
        }
    }

    #[test]
    fn status_errors_carry_the_servers_retry_hint() {
        let server = HttpServer::spawn(|_req: &Request| {
            Response::status_with_retry_after(Status::TooManyRequests, Duration::from_millis(500))
        })
        .unwrap();
        let client = HttpClient::new();
        match client.get(server.addr(), "/apk/x") {
            Err(e @ NetError::Status { code: 429, .. }) => {
                assert_eq!(e.retry_after(), Some(Duration::from_millis(500)));
            }
            other => panic!("expected hinted 429, got {other:?}"),
        }
    }

    #[test]
    fn connect_failure_is_reported() {
        // Bind-then-drop gives us a port that refuses connections.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = HttpClient::builder()
            .config(
                ClientConfig::builder()
                    .retries(0)
                    .connect_timeout(Duration::from_millis(300))
                    .build(),
            )
            .build();
        assert!(client.get(addr, "/x").is_err());
    }

    #[test]
    fn shared_across_threads() {
        let hits = Arc::new(AtomicU64::new(0));
        let server_hits = Arc::clone(&hits);
        let server = HttpServer::spawn(move |_req: &Request| {
            server_hits.fetch_add(1, Ordering::SeqCst);
            Response::ok("text/plain", b"ok".to_vec())
        })
        .unwrap();
        let client = Arc::new(HttpClient::new());
        let addr = server.addr();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let client = Arc::clone(&client);
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        client.get(addr, "/x").unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 40);
        assert!(client.idle_connections() <= 4);
    }

    #[test]
    fn stale_pooled_connections_are_discarded_without_a_retry() {
        use crate::reactor::ReactorConfig;
        use crate::server::ServerMetrics;
        // A server whose keep-alive reaper closes idle connections fast.
        let server = HttpServer::spawn_configured(
            "127.0.0.1:0",
            |_req: &Request| Response::ok("text/plain", b"ok".to_vec()),
            ServerMetrics::standalone(),
            None,
            ReactorConfig {
                keep_alive: Duration::from_millis(80),
                ..ReactorConfig::default()
            },
        )
        .unwrap();
        let registry = Registry::new();
        let client = HttpClient::builder()
            .metrics(ClientMetrics::register(&registry, &[]))
            .build();
        client.get(server.addr(), "/x").unwrap();
        assert_eq!(client.idle_connections(), 1);
        // Let the server reap the pooled connection while it sits idle.
        std::thread::sleep(Duration::from_millis(300));
        // The freshness probe discards it up front: no keep-alive race,
        // no transparent retry — a clean reconnect.
        client.get(server.addr(), "/x").unwrap();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("marketscope_net_client_retries_total", &[]),
            Some(0),
            "stale pooled connection must not cost a retry"
        );
    }

    #[test]
    fn metrics_record_latency_and_errors_by_kind() {
        let registry = Registry::new();
        let server = HttpServer::spawn(|req: &Request| {
            if req.path == "/limited" {
                Response::status(Status::TooManyRequests)
            } else {
                Response::ok("text/plain", b"ok".to_vec())
            }
        })
        .unwrap();
        let client = HttpClient::builder()
            .metrics(ClientMetrics::register(&registry, &[]))
            .build();
        client.get(server.addr(), "/ok").unwrap();
        assert!(matches!(
            client.get(server.addr(), "/limited"),
            Err(NetError::Status { code: 429, .. })
        ));
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("marketscope_net_client_errors_total", &[("kind", "status")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_value("marketscope_net_client_retries_total", &[]),
            Some(0)
        );
        let hist = snap
            .histogram("marketscope_net_client_request_nanos", &[])
            .unwrap();
        assert_eq!(hist.count(), 2);
        assert!(hist.sum > 0, "latency must have been recorded");
    }

    #[test]
    fn pool_cap_is_respected() {
        let server =
            HttpServer::spawn(|_req: &Request| Response::ok("text/plain", b"ok".to_vec())).unwrap();
        let client = HttpClient::builder()
            .config(ClientConfig::builder().pool_per_host(1).build())
            .build();
        let addr = server.addr();
        // Two concurrent requests force two connections; only one returns
        // to the pool.
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| client.get(addr, "/x").unwrap());
            }
        });
        assert!(client.idle_connections() <= 1);
    }

    #[test]
    fn max_inflight_bounds_server_side_concurrency() {
        // Each handler invocation bumps a live counter; the peak it ever
        // reaches is the true concurrency the server saw.
        let live = Arc::new(AtomicU64::new(0));
        let peak = Arc::new(AtomicU64::new(0));
        let (h_live, h_peak) = (Arc::clone(&live), Arc::clone(&peak));
        let server = HttpServer::spawn(move |_req: &Request| {
            let now = h_live.fetch_add(1, Ordering::SeqCst) + 1;
            h_peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(5));
            h_live.fetch_sub(1, Ordering::SeqCst);
            Response::ok("text/plain", b"ok".to_vec())
        })
        .unwrap();
        let client = Arc::new(
            HttpClient::builder()
                .config(ClientConfig::builder().max_inflight(2).build())
                .build(),
        );
        let addr = server.addr();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let client = Arc::clone(&client);
                s.spawn(move || {
                    for _ in 0..3 {
                        client.get(addr, "/x").unwrap();
                    }
                });
            }
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "gate leaked: peak concurrency {}",
            peak.load(Ordering::SeqCst)
        );
        assert_eq!(server.request_count(), 24);
    }

    #[test]
    fn retry_policy_absorbs_hinted_503s() {
        // Every request 503s twice (with a cheap hint) before answering.
        let hits = Arc::new(AtomicU64::new(0));
        let server_hits = Arc::clone(&hits);
        let server = HttpServer::spawn(move |_req: &Request| {
            if server_hits.fetch_add(1, Ordering::SeqCst) % 3 < 2 {
                Response::status_with_retry_after(
                    Status::ServiceUnavailable,
                    Duration::from_millis(5),
                )
            } else {
                Response::ok("text/plain", b"ok".to_vec())
            }
        })
        .unwrap();
        let registry = Registry::new();
        let client = HttpClient::builder()
            .retry(RetryPolicy::default())
            .resilience_metrics(ResilienceMetrics::register(&registry, &[]))
            .build();
        for i in 0..5 {
            client.get(server.addr(), &format!("/item/{i}")).unwrap();
        }
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("marketscope_net_client_resilient_retries_total", &[]),
            Some(10),
            "two retries per request"
        );
        assert!(
            snap.counter_value("marketscope_net_client_backoff_nanos_total", &[])
                .unwrap()
                >= 10 * 5_000_000,
            "each retry paid at least its 5ms hint"
        );
    }

    #[test]
    fn budget_surfaces_unaffordable_hints() {
        // Google Play shape: a 429 whose hint exceeds the budget must
        // surface immediately, not stall the harvest loop.
        let server = HttpServer::spawn(|_req: &Request| {
            Response::status_with_retry_after(Status::TooManyRequests, Duration::from_millis(500))
        })
        .unwrap();
        let client = HttpClient::builder().retry(RetryPolicy::default()).build();
        let start = std::time::Instant::now();
        assert!(matches!(
            client.get(server.addr(), "/apk/x"),
            Err(NetError::Status { code: 429, .. })
        ));
        assert!(
            start.elapsed() < Duration::from_millis(400),
            "hinted 429 must surface without sleeping"
        );
    }

    #[test]
    fn breaker_fast_fails_a_dead_host_and_recovers() {
        let down = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let down_s = Arc::clone(&down);
        let server = HttpServer::spawn(move |_req: &Request| {
            if down_s.load(Ordering::SeqCst) {
                Response::status(Status::InternalError)
            } else {
                Response::ok("text/plain", b"ok".to_vec())
            }
        })
        .unwrap();
        let cfg = BreakerConfig {
            failure_threshold: 3,
            cooldown_rejections: 2,
            half_open_trials: 1,
        };
        let client = HttpClient::builder().breaker(cfg).build();
        let addr = server.addr();
        // Three terminal 500s trip the circuit.
        for _ in 0..3 {
            assert!(matches!(
                client.get(addr, "/x"),
                Err(NetError::Status { code: 500, .. })
            ));
        }
        assert_eq!(client.open_circuits(), 1);
        // Fast fails while open: no wire traffic.
        let served_before = server.request_count();
        for _ in 0..2 {
            assert!(matches!(client.get(addr, "/x"), Err(NetError::CircuitOpen)));
        }
        assert_eq!(server.request_count(), served_before);
        // Host recovers; the cooldown has elapsed, so the next request
        // probes and closes the circuit.
        down.store(false, Ordering::SeqCst);
        client.get(addr, "/x").unwrap();
        assert_eq!(client.open_circuits(), 0);
        client.get(addr, "/x").unwrap();
    }

    #[test]
    fn definitive_404s_never_trip_the_breaker() {
        let server =
            HttpServer::spawn(|_req: &Request| Response::status(Status::NotFound)).unwrap();
        let cfg = BreakerConfig {
            failure_threshold: 2,
            ..BreakerConfig::default()
        };
        let client = HttpClient::builder().breaker(cfg).build();
        for _ in 0..10 {
            assert!(matches!(
                client.get(server.addr(), "/nope"),
                Err(NetError::Status { code: 404, .. })
            ));
        }
        assert_eq!(client.open_circuits(), 0);
    }

    #[test]
    fn batched_gets_complete_in_spec_order() {
        let server = HttpServer::spawn(|req: &Request| {
            Response::ok("text/plain", req.path.as_bytes().to_vec())
        })
        .unwrap();
        let client = HttpClient::new();
        let specs: Vec<FetchSpec> = (0..32)
            .map(|i| FetchSpec::new(server.addr(), format!("/item/{i}")))
            .collect();
        let results = client.get_many(&specs);
        assert_eq!(results.len(), 32);
        for (i, r) in results.into_iter().enumerate() {
            assert_eq!(r.unwrap().body, format!("/item/{i}").into_bytes());
        }
    }

    #[test]
    fn lanes_serialize_same_key_submissions() {
        // The server logs arrival order; two lanes submitted interleaved
        // must each arrive in their own submission order.
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let seen_s = Arc::clone(&seen);
        let server = HttpServer::spawn(move |req: &Request| {
            seen_s.lock().push(req.path.clone());
            Response::ok("text/plain", b"ok".to_vec())
        })
        .unwrap();
        let client = HttpClient::new();
        let specs: Vec<FetchSpec> = (0..20)
            .map(|i| FetchSpec::new(server.addr(), format!("/lane{}/{}", i % 2, i / 2)).lane(i % 2))
            .collect();
        let results = client.get_many(&specs);
        assert!(results.into_iter().all(|r| r.is_ok()));
        let order = seen.lock().clone();
        for lane in 0..2u64 {
            let got: Vec<&String> = order
                .iter()
                .filter(|p| p.starts_with(&format!("/lane{lane}/")))
                .collect();
            let want: Vec<String> = (0..10).map(|i| format!("/lane{lane}/{i}")).collect();
            assert_eq!(got.len(), 10);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(**g, *w, "lane {lane} arrived out of submission order");
            }
        }
    }

    #[test]
    fn get_json_decode_failures_are_classified_and_counted() {
        // A 200 whose body is not JSON must surface as a protocol error
        // AND hit the error counters / breaker seam like any terminal
        // failure (the old client's parse path bypassed both).
        let registry = Registry::new();
        let server = HttpServer::spawn(|_req: &Request| {
            Response::ok("application/json", b"not json at all".to_vec())
        })
        .unwrap();
        let client = HttpClient::builder()
            .metrics(ClientMetrics::register(&registry, &[]))
            .breaker(BreakerConfig::default())
            .build();
        for _ in 0..3 {
            assert!(matches!(
                client.get_json(server.addr(), "/index"),
                Err(NetError::Protocol("response body not valid json"))
            ));
        }
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value(
                "marketscope_net_client_errors_total",
                &[("kind", "protocol")]
            ),
            Some(3),
            "decode failures must be counted"
        );
        // A decodable-but-malformed answer is a definitive reply, not
        // host distress: the breaker stays closed.
        assert_eq!(client.open_circuits(), 0);
    }
}
