//! The HTTP client: keep-alive connection pooling, timeouts, bounded
//! retries.

use crate::error::NetError;
use crate::http::{Request, Response, Status};
use marketscope_telemetry::{Counter, Histogram, Registry, TraceSpan, Tracer};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-socket read/write timeout.
    pub io_timeout: Duration,
    /// Connect timeout.
    pub connect_timeout: Duration,
    /// How many idle connections to keep per remote address.
    pub pool_per_host: usize,
    /// Transparent retries on connection-level failures (not on HTTP
    /// error statuses — those are the caller's business).
    pub retries: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            io_timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(5),
            pool_per_host: 8,
            retries: 2,
        }
    }
}

/// A pooled connection: reader/writer halves of one TCP stream.
struct PooledConn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// Error kinds the client counts separately (see [`NetError::kind`]).
const ERROR_KINDS: [&str; 5] = ["io", "protocol", "too_large", "status", "eof"];

/// Client-side instruments: request latency, transparent retries, and
/// errors broken down by kind.
#[derive(Debug)]
pub struct ClientMetrics {
    request_nanos: Arc<Histogram>,
    retries: Arc<Counter>,
    errors: Vec<(&'static str, Arc<Counter>)>,
}

impl ClientMetrics {
    /// Register the client instruments in `registry` under the given base
    /// labels. Metric names:
    ///
    /// * `marketscope_net_client_request_nanos`
    /// * `marketscope_net_client_retries_total`
    /// * `marketscope_net_client_errors_total{kind="..."}`
    pub fn register(registry: &Registry, labels: &[(&str, &str)]) -> ClientMetrics {
        let errors = ERROR_KINDS
            .iter()
            .map(|&kind| {
                let mut with_kind = labels.to_vec();
                with_kind.push(("kind", kind));
                (
                    kind,
                    registry.counter("marketscope_net_client_errors_total", &with_kind),
                )
            })
            .collect();
        ClientMetrics {
            request_nanos: registry.histogram("marketscope_net_client_request_nanos", labels),
            retries: registry.counter("marketscope_net_client_retries_total", labels),
            errors,
        }
    }

    fn note_error(&self, e: &NetError) {
        let kind = e.kind();
        if let Some((_, c)) = self.errors.iter().find(|(k, _)| *k == kind) {
            c.inc();
        }
    }
}

/// A blocking HTTP client with per-host keep-alive pooling.
///
/// Cloneable-by-reference via `Arc` at call sites; internally synchronized
/// so crawler worker threads can share one client.
pub struct HttpClient {
    config: ClientConfig,
    pool: Mutex<HashMap<SocketAddr, Vec<PooledConn>>>,
    metrics: Option<ClientMetrics>,
    tracer: Option<Arc<Tracer>>,
}

impl HttpClient {
    /// Client with default configuration.
    pub fn new() -> Self {
        Self::with_config(ClientConfig::default())
    }

    /// Client with explicit configuration.
    pub fn with_config(config: ClientConfig) -> Self {
        HttpClient {
            config,
            pool: Mutex::new(HashMap::new()),
            metrics: None,
            tracer: None,
        }
    }

    /// Client with configuration and registered instruments: every
    /// request records its latency; retries and errors are counted.
    pub fn with_metrics(config: ClientConfig, metrics: ClientMetrics) -> Self {
        HttpClient {
            config,
            pool: Mutex::new(HashMap::new()),
            metrics: Some(metrics),
            tracer: None,
        }
    }

    /// Client with metrics *and* a tracer. When a sampled span is active
    /// on the calling thread, each request opens a child span plus one
    /// span per connection attempt, and every attempt carries its own
    /// span context out in the `x-marketscope-trace` header so the
    /// server's handler spans link back to this exact attempt.
    pub fn with_telemetry(
        config: ClientConfig,
        metrics: Option<ClientMetrics>,
        tracer: Option<Arc<Tracer>>,
    ) -> Self {
        HttpClient {
            config,
            pool: Mutex::new(HashMap::new()),
            metrics,
            tracer,
        }
    }

    /// Issue a request and await the response. Pooled connections are
    /// reused; connection-level failures on a *reused* connection are
    /// retried on a fresh one (the server may have dropped an idle
    /// connection between requests — the classic keep-alive race).
    pub fn request(&self, addr: SocketAddr, req: &Request) -> Result<Response, NetError> {
        let span = self.metrics.as_ref().map(|m| m.request_nanos.start_span());
        // Child of whatever sampled span is active on this thread (the
        // crawler's fetch span); a no-op when tracing is off or the
        // caller wasn't sampled.
        let trace_span = match &self.tracer {
            Some(t) => t.span("client", &format!("{} {}", req.method.as_str(), req.path)),
            None => TraceSpan::noop(),
        };
        let result = self.request_inner(addr, req);
        if let Err(e) = &result {
            trace_span.event(&format!("error:{}", e.kind()));
        }
        trace_span.finish();
        drop(span); // record the latency, success or failure
        if let (Some(m), Err(e)) = (&self.metrics, &result) {
            m.note_error(e);
        }
        result
    }

    fn request_inner(&self, addr: SocketAddr, req: &Request) -> Result<Response, NetError> {
        let mut last_err: Option<NetError> = None;
        for attempt in 0..=self.config.retries {
            if attempt > 0 {
                if let Some(m) = &self.metrics {
                    m.retries.inc();
                }
            }
            // Sibling spans, one per attempt, under the request span
            // currently on top of this thread's stack. Each attempt
            // injects its *own* span id into the trace header, so the
            // server side links to the attempt that actually reached it.
            let attempt_span = match &self.tracer {
                Some(t) => t.span("client", &format!("attempt#{attempt}")),
                None => TraceSpan::noop(),
            };
            if attempt > 0 {
                attempt_span.event("retry");
            }
            let traced_req;
            let wire_req = match attempt_span.context() {
                Some(ctx) => {
                    traced_req = req.with_trace_context(ctx);
                    &traced_req
                }
                None => req,
            };
            let reused;
            let conn = match self.take_pooled(addr) {
                Some(c) => {
                    reused = true;
                    c
                }
                None => {
                    reused = false;
                    self.connect(addr)?
                }
            };
            match self.round_trip(conn, wire_req) {
                Ok((resp, conn)) => {
                    self.return_pooled(addr, conn);
                    return Ok(resp);
                }
                Err(e) => {
                    // A failure on a fresh connection after the first
                    // attempt is likely a real problem; on a reused one it
                    // is usually the keep-alive race. Retry both, bounded.
                    let _ = reused;
                    attempt_span.event(&format!("failed:{}", e.kind()));
                    last_err = Some(e);
                    if attempt == self.config.retries {
                        break;
                    }
                }
            }
        }
        Err(last_err.unwrap_or(NetError::Protocol("retries exhausted")))
    }

    /// Convenience: GET a path and require a 200.
    pub fn get(&self, addr: SocketAddr, path_and_query: &str) -> Result<Response, NetError> {
        let resp = self.request(addr, &Request::get(path_and_query))?;
        if resp.status != Status::Ok {
            let err = NetError::Status(resp.status.code());
            if let Some(m) = &self.metrics {
                m.note_error(&err);
            }
            return Err(err);
        }
        Ok(resp)
    }

    /// Convenience: GET a path, parse the body as JSON, require a 200.
    pub fn get_json(
        &self,
        addr: SocketAddr,
        path_and_query: &str,
    ) -> Result<marketscope_core::json::Json, NetError> {
        let resp = self.get(addr, path_and_query)?;
        let text = std::str::from_utf8(&resp.body)
            .map_err(|_| NetError::Protocol("response body not utf-8"))?;
        marketscope_core::json::Json::parse(text)
            .map_err(|_| NetError::Protocol("response body not valid json"))
    }

    /// Number of idle pooled connections (for tests/metrics).
    pub fn idle_connections(&self) -> usize {
        self.pool.lock().values().map(Vec::len).sum()
    }

    fn connect(&self, addr: SocketAddr) -> Result<PooledConn, NetError> {
        let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)?;
        stream.set_read_timeout(Some(self.config.io_timeout))?;
        stream.set_write_timeout(Some(self.config.io_timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(PooledConn { reader, writer })
    }

    fn take_pooled(&self, addr: SocketAddr) -> Option<PooledConn> {
        self.pool.lock().get_mut(&addr)?.pop()
    }

    fn return_pooled(&self, addr: SocketAddr, conn: PooledConn) {
        let mut pool = self.pool.lock();
        let conns = pool.entry(addr).or_default();
        if conns.len() < self.config.pool_per_host {
            conns.push(conn);
        }
    }

    fn round_trip(
        &self,
        mut conn: PooledConn,
        req: &Request,
    ) -> Result<(Response, PooledConn), NetError> {
        req.write_to(&mut conn.writer)?;
        let resp = Response::read_from(&mut conn.reader)?;
        Ok((resp, conn))
    }
}

impl Default for HttpClient {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::HttpServer;
    use marketscope_core::json::Json;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn get_round_trip_and_pooling() {
        let server = HttpServer::spawn(|req: &Request| {
            Response::ok("text/plain", req.path.as_bytes().to_vec())
        })
        .unwrap();
        let client = HttpClient::new();
        for i in 0..5 {
            let resp = client.get(server.addr(), &format!("/ping/{i}")).unwrap();
            assert_eq!(resp.body, format!("/ping/{i}").into_bytes());
        }
        // All five requests reused one pooled connection.
        assert_eq!(client.idle_connections(), 1);
        assert_eq!(server.live_connections(), 1);
    }

    #[test]
    fn get_json_parses() {
        let server = HttpServer::spawn(|_req: &Request| {
            Response::json(&Json::obj([("apps", Json::from(vec![1i64, 2, 3]))]))
        })
        .unwrap();
        let client = HttpClient::new();
        let doc = client.get_json(server.addr(), "/index").unwrap();
        assert_eq!(doc.get("apps").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn non_200_statuses_surface() {
        let server = HttpServer::spawn(|req: &Request| {
            if req.path == "/limited" {
                Response::status(Status::TooManyRequests)
            } else {
                Response::status(Status::NotFound)
            }
        })
        .unwrap();
        let client = HttpClient::new();
        match client.get(server.addr(), "/limited") {
            Err(NetError::Status(429)) => {}
            other => panic!("expected 429, got {other:?}"),
        }
        match client.get(server.addr(), "/nope") {
            Err(NetError::Status(404)) => {}
            other => panic!("expected 404, got {other:?}"),
        }
    }

    #[test]
    fn connect_failure_is_reported() {
        // Bind-then-drop gives us a port that refuses connections.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = HttpClient::with_config(ClientConfig {
            retries: 0,
            connect_timeout: Duration::from_millis(300),
            ..ClientConfig::default()
        });
        assert!(client.get(addr, "/x").is_err());
    }

    #[test]
    fn shared_across_threads() {
        let hits = Arc::new(AtomicU64::new(0));
        let server_hits = Arc::clone(&hits);
        let server = HttpServer::spawn(move |_req: &Request| {
            server_hits.fetch_add(1, Ordering::SeqCst);
            Response::ok("text/plain", b"ok".to_vec())
        })
        .unwrap();
        let client = Arc::new(HttpClient::new());
        let addr = server.addr();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let client = Arc::clone(&client);
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        client.get(addr, "/x").unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 40);
        assert!(client.idle_connections() <= 4);
    }

    #[test]
    fn metrics_record_latency_and_errors_by_kind() {
        let registry = Registry::new();
        let server = HttpServer::spawn(|req: &Request| {
            if req.path == "/limited" {
                Response::status(Status::TooManyRequests)
            } else {
                Response::ok("text/plain", b"ok".to_vec())
            }
        })
        .unwrap();
        let client = HttpClient::with_metrics(
            ClientConfig::default(),
            ClientMetrics::register(&registry, &[]),
        );
        client.get(server.addr(), "/ok").unwrap();
        assert!(matches!(
            client.get(server.addr(), "/limited"),
            Err(NetError::Status(429))
        ));
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("marketscope_net_client_errors_total", &[("kind", "status")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_value("marketscope_net_client_retries_total", &[]),
            Some(0)
        );
        let hist = snap
            .histogram("marketscope_net_client_request_nanos", &[])
            .unwrap();
        assert_eq!(hist.count(), 2);
        assert!(hist.sum > 0, "latency must have been recorded");
    }

    #[test]
    fn pool_cap_is_respected() {
        let server =
            HttpServer::spawn(|_req: &Request| Response::ok("text/plain", b"ok".to_vec())).unwrap();
        let client = HttpClient::with_config(ClientConfig {
            pool_per_host: 1,
            ..ClientConfig::default()
        });
        let addr = server.addr();
        // Two concurrent requests force two connections; only one returns
        // to the pool.
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| client.get(addr, "/x").unwrap());
            }
        });
        assert!(client.idle_connections() <= 1);
    }
}
