//! The HTTP client: keep-alive connection pooling, timeouts, classified
//! retries, and optional circuit breaking.

use crate::error::NetError;
use crate::http::{Request, Response, Status};
use crate::resilience::{BreakerConfig, BreakerSet, ResilienceMetrics, RetryPolicy};
use marketscope_core::hash::fnv1a64;
use marketscope_telemetry::{trace, Counter, Histogram, Registry, TraceSpan, Tracer};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-socket read/write timeout.
    pub io_timeout: Duration,
    /// Connect timeout.
    pub connect_timeout: Duration,
    /// How many idle connections to keep per remote address.
    pub pool_per_host: usize,
    /// Transparent same-request retries on *transient* connection-level
    /// failures (the keep-alive race, a reset socket). HTTP error
    /// statuses never retry here — that is [`RetryPolicy`]'s job.
    pub retries: u32,
    /// Cap on concurrently in-flight requests through this client.
    /// `None` (the default) means unbounded; the load generator sets it
    /// to hold *offered* concurrency constant while it sweeps worker
    /// counts, so achieved-vs-offered RPS is attributable to the server
    /// side rather than to client-side queueing.
    pub max_inflight: Option<usize>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            io_timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(5),
            pool_per_host: 8,
            retries: 2,
            max_inflight: None,
        }
    }
}

/// A counting semaphore bounding in-flight requests (parking_lot
/// `Mutex` + `Condvar`; uncontended acquire is one lock round trip).
struct InflightGate {
    limit: usize,
    inflight: Mutex<usize>,
    cond: parking_lot::Condvar,
}

impl InflightGate {
    fn new(limit: usize) -> InflightGate {
        InflightGate {
            limit: limit.max(1),
            inflight: Mutex::new(0),
            cond: parking_lot::Condvar::new(),
        }
    }

    /// Block until a slot frees, then hold it until the guard drops.
    fn acquire(&self) -> InflightPermit<'_> {
        let mut inflight = self.inflight.lock();
        while *inflight >= self.limit {
            self.cond.wait(&mut inflight);
        }
        *inflight += 1;
        InflightPermit { gate: self }
    }
}

struct InflightPermit<'a> {
    gate: &'a InflightGate,
}

impl Drop for InflightPermit<'_> {
    fn drop(&mut self) {
        let mut inflight = self.gate.inflight.lock();
        *inflight -= 1;
        self.gate.cond.notify_one();
    }
}

/// A pooled connection: reader/writer halves of one TCP stream.
struct PooledConn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl PooledConn {
    /// Whether this idle connection is still usable. An idle pooled
    /// socket must be silent; if a zero-timeout poll reports it readable
    /// the server closed it while it sat in the pool (the reactor's
    /// keep-alive reaper, a restart) or sent stray bytes — either way
    /// the next request would hit the keep-alive race and burn a
    /// transparent retry. Discarding it up front costs one syscall.
    fn is_fresh(&self) -> bool {
        use std::os::fd::AsRawFd;
        if !self.reader.buffer().is_empty() {
            return false; // leftover unparsed bytes: poisoned
        }
        match crate::reactor::sys::poll_one(
            self.reader.get_ref().as_raw_fd(),
            crate::reactor::sys::POLLIN,
            Some(Duration::ZERO),
        ) {
            Ok(revents) => revents == 0,
            Err(_) => false,
        }
    }
}

/// Error kinds the client counts separately (see [`NetError::kind`]).
const ERROR_KINDS: [&str; 6] = [
    "io",
    "protocol",
    "too_large",
    "status",
    "eof",
    "circuit_open",
];

/// Client-side instruments: request latency, transparent retries, and
/// errors broken down by kind.
#[derive(Debug)]
pub struct ClientMetrics {
    request_nanos: Arc<Histogram>,
    retries: Arc<Counter>,
    errors: Vec<(&'static str, Arc<Counter>)>,
}

impl ClientMetrics {
    /// Register the client instruments in `registry` under the given base
    /// labels. Metric names:
    ///
    /// * `marketscope_net_client_request_nanos`
    /// * `marketscope_net_client_retries_total`
    /// * `marketscope_net_client_errors_total{kind="..."}`
    pub fn register(registry: &Registry, labels: &[(&str, &str)]) -> ClientMetrics {
        let errors = ERROR_KINDS
            .iter()
            .map(|&kind| {
                let mut with_kind = labels.to_vec();
                with_kind.push(("kind", kind));
                (
                    kind,
                    registry.counter("marketscope_net_client_errors_total", &with_kind),
                )
            })
            .collect();
        ClientMetrics {
            request_nanos: registry.histogram("marketscope_net_client_request_nanos", labels),
            retries: registry.counter("marketscope_net_client_retries_total", labels),
            errors,
        }
    }

    fn note_error(&self, e: &NetError) {
        let kind = e.kind();
        if let Some((_, c)) = self.errors.iter().find(|(k, _)| *k == kind) {
            c.inc();
        }
    }
}

/// Configures and builds an [`HttpClient`]. Obtained from
/// [`HttpClient::builder`]; every knob is optional:
///
/// ```no_run
/// # use marketscope_net::client::{ClientConfig, HttpClient};
/// # use marketscope_net::resilience::{BreakerConfig, RetryPolicy};
/// let client = HttpClient::builder()
///     .config(ClientConfig { pool_per_host: 4, ..ClientConfig::default() })
///     .retry(RetryPolicy::default())
///     .breaker(BreakerConfig::default())
///     .build();
/// ```
#[derive(Default)]
pub struct HttpClientBuilder {
    config: Option<ClientConfig>,
    metrics: Option<ClientMetrics>,
    tracer: Option<Arc<Tracer>>,
    retry: Option<RetryPolicy>,
    breaker: Option<BreakerConfig>,
    resilience_metrics: Option<ResilienceMetrics>,
}

impl HttpClientBuilder {
    /// Socket-level configuration (timeouts, pool size, transparent
    /// connection retries).
    pub fn config(mut self, config: ClientConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Attach registered instruments: every request records its latency;
    /// retries and errors are counted by kind.
    pub fn metrics(mut self, metrics: ClientMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attach a tracer. When a sampled span is active on the calling
    /// thread, each request opens a child span plus one span per
    /// connection attempt, and every attempt carries its own span
    /// context out in the `x-marketscope-trace` header so the server's
    /// handler spans link back to this exact attempt.
    pub fn tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Attach a status-level retry policy: [`HttpClient::get`] retries
    /// [retryable](NetError::is_retryable) failures with deterministic
    /// backoff, honoring server `retry-after` hints within the policy's
    /// budget.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Attach per-host circuit breaking: after a run of terminal
    /// failures, requests to that host fast-fail with
    /// [`NetError::CircuitOpen`] until a half-open probe succeeds.
    pub fn breaker(mut self, config: BreakerConfig) -> Self {
        self.breaker = Some(config);
        self
    }

    /// Attach resilience instruments (retry counts, backoff time,
    /// fast-fails, breaker transitions and the open-circuit gauge).
    pub fn resilience_metrics(mut self, metrics: ResilienceMetrics) -> Self {
        self.resilience_metrics = Some(metrics);
        self
    }

    /// Build the client.
    pub fn build(self) -> HttpClient {
        let config = self.config.unwrap_or_default();
        HttpClient {
            inflight: config.max_inflight.map(InflightGate::new),
            config,
            pool: Mutex::new(HashMap::new()),
            metrics: self.metrics,
            tracer: self.tracer,
            retry: self.retry,
            breakers: self
                .breaker
                .map(|cfg| BreakerSet::new(cfg, self.resilience_metrics.clone())),
            resilience_metrics: self.resilience_metrics,
        }
    }
}

/// A blocking HTTP client with per-host keep-alive pooling.
///
/// Cloneable-by-reference via `Arc` at call sites; internally synchronized
/// so crawler worker threads can share one client.
pub struct HttpClient {
    config: ClientConfig,
    inflight: Option<InflightGate>,
    pool: Mutex<HashMap<SocketAddr, Vec<PooledConn>>>,
    metrics: Option<ClientMetrics>,
    tracer: Option<Arc<Tracer>>,
    retry: Option<RetryPolicy>,
    breakers: Option<BreakerSet>,
    resilience_metrics: Option<ResilienceMetrics>,
}

impl HttpClient {
    /// Client with default configuration, no telemetry, no resilience
    /// policy — the trivial case. Everything else goes through
    /// [`HttpClient::builder`].
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Start building a configured client.
    pub fn builder() -> HttpClientBuilder {
        HttpClientBuilder::default()
    }

    /// Issue a request and await the response. Pooled connections are
    /// reused; *transient* connection-level failures (a reset socket,
    /// mid-message EOF — the classic keep-alive race) are retried on a
    /// fresh connection, bounded by [`ClientConfig::retries`]. Error
    /// statuses and protocol violations surface immediately.
    pub fn request(&self, addr: SocketAddr, req: &Request) -> Result<Response, NetError> {
        // Queueing for a slot happens *outside* the latency span: the
        // histogram measures the wire, not the gate.
        let _permit = self.inflight.as_ref().map(InflightGate::acquire);
        let span = self.metrics.as_ref().map(|m| m.request_nanos.start_span());
        // Child of whatever sampled span is active on this thread (the
        // crawler's fetch span); a no-op when tracing is off or the
        // caller wasn't sampled.
        let trace_span = match &self.tracer {
            Some(t) => t.span("client", &format!("{} {}", req.method.as_str(), req.path)),
            None => TraceSpan::noop(),
        };
        let result = self.request_inner(addr, req);
        if let Err(e) = &result {
            trace_span.event(&format!("error:{}", e.kind()));
        }
        trace_span.finish();
        drop(span); // record the latency, success or failure
        if let (Some(m), Err(e)) = (&self.metrics, &result) {
            m.note_error(e);
        }
        result
    }

    fn request_inner(&self, addr: SocketAddr, req: &Request) -> Result<Response, NetError> {
        let mut last_err: Option<NetError> = None;
        for attempt in 0..=self.config.retries {
            if attempt > 0 {
                if let Some(m) = &self.metrics {
                    m.retries.inc();
                }
            }
            // Sibling spans, one per attempt, under the request span
            // currently on top of this thread's stack. Each attempt
            // injects its *own* span id into the trace header, so the
            // server side links to the attempt that actually reached it.
            let attempt_span = match &self.tracer {
                Some(t) => t.span("client", &format!("attempt#{attempt}")),
                None => TraceSpan::noop(),
            };
            if attempt > 0 {
                attempt_span.event("retry");
            }
            let traced_req;
            let wire_req = match attempt_span.context() {
                Some(ctx) => {
                    traced_req = req.with_trace_context(ctx);
                    &traced_req
                }
                None => req,
            };
            let conn = match self.take_pooled(addr) {
                Some(c) => c,
                None => self.connect(addr)?,
            };
            match self.round_trip(conn, wire_req) {
                Ok((resp, conn)) => {
                    self.return_pooled(addr, conn);
                    return Ok(resp);
                }
                Err(e) => {
                    attempt_span.event(&format!("failed:{}", e.kind()));
                    // Only transient failures earn a fresh connection;
                    // a protocol violation or size overflow would just
                    // repeat itself.
                    let transient = e.is_transient();
                    last_err = Some(e);
                    if !transient || attempt == self.config.retries {
                        break;
                    }
                }
            }
        }
        Err(last_err.unwrap_or(NetError::Protocol("retries exhausted")))
    }

    /// Convenience: GET a path and require a 200. Non-200 statuses
    /// surface as [`NetError::Status`] carrying any `retry-after` hint.
    ///
    /// This is where the resilience policy lives: with a
    /// [`RetryPolicy`] attached, retryable failures (connection faults,
    /// 429/500/503) are retried with deterministic backoff until the
    /// policy's budget runs out; with a [`BreakerConfig`] attached, a
    /// host whose requests keep failing terminally gets its circuit
    /// opened and subsequent calls fast-fail with
    /// [`NetError::CircuitOpen`] until a probe succeeds.
    pub fn get(&self, addr: SocketAddr, path_and_query: &str) -> Result<Response, NetError> {
        let req = Request::get(path_and_query);
        let breaker = self.breakers.as_ref().map(|b| b.for_host(addr));
        let key = fnv1a64(path_and_query.as_bytes());
        let mut slept = Duration::ZERO;
        let mut attempt = 0u32;
        loop {
            if let Some(b) = &breaker {
                if !b.admit() {
                    let err = NetError::CircuitOpen;
                    trace::current_event("circuit_open");
                    if let Some(m) = &self.metrics {
                        m.note_error(&err);
                    }
                    return Err(err);
                }
            }
            let result = self.request(addr, &req).and_then(|resp| {
                if resp.status == Status::Ok {
                    Ok(resp)
                } else {
                    Err(NetError::Status {
                        code: resp.status.code(),
                        retry_after: resp.retry_after(),
                    })
                }
            });
            let err = match result {
                Ok(resp) => {
                    if let Some(b) = &breaker {
                        b.on_success();
                    }
                    return Ok(resp);
                }
                Err(e) => e,
            };
            // Status errors are minted here, after request()'s metrics
            // pass — count them separately.
            if matches!(err, NetError::Status { .. }) {
                if let Some(m) = &self.metrics {
                    m.note_error(&err);
                }
            }
            let delay = self
                .retry
                .as_ref()
                .and_then(|p| p.delay_for(&err, attempt, key, slept));
            match delay {
                Some(wait) => {
                    // Still trying: the breaker only hears about
                    // *terminal* outcomes.
                    trace::current_event(&format!("resilient-retry:{}", err.kind()));
                    if let Some(rm) = &self.resilience_metrics {
                        rm.note_retry(wait);
                    }
                    std::thread::sleep(wait);
                    slept += wait;
                    attempt += 1;
                }
                None => {
                    if let Some(b) = &breaker {
                        // Only signs of host distress — dead connections
                        // and 5xx answers — push the circuit toward open.
                        // A 404 is a definitive answer and a 429 means
                        // the host is alive enough to throttle us; both
                        // leave the breaker closed.
                        let host_fault = err.is_transient()
                            || matches!(
                                err,
                                NetError::Status {
                                    code: 500..=599,
                                    ..
                                }
                            );
                        if host_fault {
                            b.on_failure();
                        } else {
                            b.on_success();
                        }
                    }
                    return Err(err);
                }
            }
        }
    }

    /// Convenience: GET a path, parse the body as JSON, require a 200.
    pub fn get_json(
        &self,
        addr: SocketAddr,
        path_and_query: &str,
    ) -> Result<marketscope_core::json::Json, NetError> {
        let resp = self.get(addr, path_and_query)?;
        let text = std::str::from_utf8(&resp.body)
            .map_err(|_| NetError::Protocol("response body not utf-8"))?;
        marketscope_core::json::Json::parse(text)
            .map_err(|_| NetError::Protocol("response body not valid json"))
    }

    /// Number of idle pooled connections (for tests/metrics).
    pub fn idle_connections(&self) -> usize {
        self.pool.lock().values().map(Vec::len).sum()
    }

    /// Number of per-host circuits currently not closed (zero without a
    /// breaker).
    pub fn open_circuits(&self) -> usize {
        self.breakers.as_ref().map_or(0, BreakerSet::open_count)
    }

    fn connect(&self, addr: SocketAddr) -> Result<PooledConn, NetError> {
        let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)?;
        stream.set_read_timeout(Some(self.config.io_timeout))?;
        stream.set_write_timeout(Some(self.config.io_timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(PooledConn { reader, writer })
    }

    fn take_pooled(&self, addr: SocketAddr) -> Option<PooledConn> {
        let mut pool = self.pool.lock();
        let conns = pool.get_mut(&addr)?;
        // Skip over connections that went stale while pooled; the caller
        // falls back to a fresh connect when none survive.
        while let Some(conn) = conns.pop() {
            if conn.is_fresh() {
                return Some(conn);
            }
        }
        None
    }

    fn return_pooled(&self, addr: SocketAddr, conn: PooledConn) {
        let mut pool = self.pool.lock();
        let conns = pool.entry(addr).or_default();
        if conns.len() < self.config.pool_per_host {
            conns.push(conn);
        }
    }

    fn round_trip(
        &self,
        mut conn: PooledConn,
        req: &Request,
    ) -> Result<(Response, PooledConn), NetError> {
        req.write_to(&mut conn.writer)?;
        let resp = Response::read_from(&mut conn.reader)?;
        Ok((resp, conn))
    }
}

impl Default for HttpClient {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::HttpServer;
    use marketscope_core::json::Json;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn get_round_trip_and_pooling() {
        let server = HttpServer::spawn(|req: &Request| {
            Response::ok("text/plain", req.path.as_bytes().to_vec())
        })
        .unwrap();
        let client = HttpClient::new();
        for i in 0..5 {
            let resp = client.get(server.addr(), &format!("/ping/{i}")).unwrap();
            assert_eq!(resp.body, format!("/ping/{i}").into_bytes());
        }
        // All five requests reused one pooled connection.
        assert_eq!(client.idle_connections(), 1);
        assert_eq!(server.live_connections(), 1);
    }

    #[test]
    fn get_json_parses() {
        let server = HttpServer::spawn(|_req: &Request| {
            Response::json(&Json::obj([("apps", Json::from(vec![1i64, 2, 3]))]))
        })
        .unwrap();
        let client = HttpClient::new();
        let doc = client.get_json(server.addr(), "/index").unwrap();
        assert_eq!(doc.get("apps").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn non_200_statuses_surface() {
        let server = HttpServer::spawn(|req: &Request| {
            if req.path == "/limited" {
                Response::status(Status::TooManyRequests)
            } else {
                Response::status(Status::NotFound)
            }
        })
        .unwrap();
        let client = HttpClient::new();
        match client.get(server.addr(), "/limited") {
            Err(NetError::Status { code: 429, .. }) => {}
            other => panic!("expected 429, got {other:?}"),
        }
        match client.get(server.addr(), "/nope") {
            Err(NetError::Status { code: 404, .. }) => {}
            other => panic!("expected 404, got {other:?}"),
        }
    }

    #[test]
    fn status_errors_carry_the_servers_retry_hint() {
        let server = HttpServer::spawn(|_req: &Request| {
            Response::status_with_retry_after(Status::TooManyRequests, Duration::from_millis(500))
        })
        .unwrap();
        let client = HttpClient::new();
        match client.get(server.addr(), "/apk/x") {
            Err(e @ NetError::Status { code: 429, .. }) => {
                assert_eq!(e.retry_after(), Some(Duration::from_millis(500)));
            }
            other => panic!("expected hinted 429, got {other:?}"),
        }
    }

    #[test]
    fn connect_failure_is_reported() {
        // Bind-then-drop gives us a port that refuses connections.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = HttpClient::builder()
            .config(ClientConfig {
                retries: 0,
                connect_timeout: Duration::from_millis(300),
                ..ClientConfig::default()
            })
            .build();
        assert!(client.get(addr, "/x").is_err());
    }

    #[test]
    fn shared_across_threads() {
        let hits = Arc::new(AtomicU64::new(0));
        let server_hits = Arc::clone(&hits);
        let server = HttpServer::spawn(move |_req: &Request| {
            server_hits.fetch_add(1, Ordering::SeqCst);
            Response::ok("text/plain", b"ok".to_vec())
        })
        .unwrap();
        let client = Arc::new(HttpClient::new());
        let addr = server.addr();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let client = Arc::clone(&client);
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        client.get(addr, "/x").unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 40);
        assert!(client.idle_connections() <= 4);
    }

    #[test]
    fn stale_pooled_connections_are_discarded_without_a_retry() {
        use crate::reactor::ReactorConfig;
        use crate::server::ServerMetrics;
        // A server whose keep-alive reaper closes idle connections fast.
        let server = HttpServer::spawn_configured(
            "127.0.0.1:0",
            |_req: &Request| Response::ok("text/plain", b"ok".to_vec()),
            ServerMetrics::standalone(),
            None,
            ReactorConfig {
                keep_alive: Duration::from_millis(80),
                ..ReactorConfig::default()
            },
        )
        .unwrap();
        let registry = Registry::new();
        let client = HttpClient::builder()
            .metrics(ClientMetrics::register(&registry, &[]))
            .build();
        client.get(server.addr(), "/x").unwrap();
        assert_eq!(client.idle_connections(), 1);
        // Let the server reap the pooled connection while it sits idle.
        std::thread::sleep(Duration::from_millis(300));
        // The freshness probe discards it up front: no keep-alive race,
        // no transparent retry — a clean reconnect.
        client.get(server.addr(), "/x").unwrap();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("marketscope_net_client_retries_total", &[]),
            Some(0),
            "stale pooled connection must not cost a retry"
        );
    }

    #[test]
    fn metrics_record_latency_and_errors_by_kind() {
        let registry = Registry::new();
        let server = HttpServer::spawn(|req: &Request| {
            if req.path == "/limited" {
                Response::status(Status::TooManyRequests)
            } else {
                Response::ok("text/plain", b"ok".to_vec())
            }
        })
        .unwrap();
        let client = HttpClient::builder()
            .metrics(ClientMetrics::register(&registry, &[]))
            .build();
        client.get(server.addr(), "/ok").unwrap();
        assert!(matches!(
            client.get(server.addr(), "/limited"),
            Err(NetError::Status { code: 429, .. })
        ));
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("marketscope_net_client_errors_total", &[("kind", "status")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_value("marketscope_net_client_retries_total", &[]),
            Some(0)
        );
        let hist = snap
            .histogram("marketscope_net_client_request_nanos", &[])
            .unwrap();
        assert_eq!(hist.count(), 2);
        assert!(hist.sum > 0, "latency must have been recorded");
    }

    #[test]
    fn pool_cap_is_respected() {
        let server =
            HttpServer::spawn(|_req: &Request| Response::ok("text/plain", b"ok".to_vec())).unwrap();
        let client = HttpClient::builder()
            .config(ClientConfig {
                pool_per_host: 1,
                ..ClientConfig::default()
            })
            .build();
        let addr = server.addr();
        // Two concurrent requests force two connections; only one returns
        // to the pool.
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| client.get(addr, "/x").unwrap());
            }
        });
        assert!(client.idle_connections() <= 1);
    }

    #[test]
    fn max_inflight_bounds_server_side_concurrency() {
        // Each handler invocation bumps a live counter; the peak it ever
        // reaches is the true concurrency the server saw.
        let live = Arc::new(AtomicU64::new(0));
        let peak = Arc::new(AtomicU64::new(0));
        let (h_live, h_peak) = (Arc::clone(&live), Arc::clone(&peak));
        let server = HttpServer::spawn(move |_req: &Request| {
            let now = h_live.fetch_add(1, Ordering::SeqCst) + 1;
            h_peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(5));
            h_live.fetch_sub(1, Ordering::SeqCst);
            Response::ok("text/plain", b"ok".to_vec())
        })
        .unwrap();
        let client = Arc::new(
            HttpClient::builder()
                .config(ClientConfig {
                    max_inflight: Some(2),
                    ..ClientConfig::default()
                })
                .build(),
        );
        let addr = server.addr();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let client = Arc::clone(&client);
                s.spawn(move || {
                    for _ in 0..3 {
                        client.get(addr, "/x").unwrap();
                    }
                });
            }
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "gate leaked: peak concurrency {}",
            peak.load(Ordering::SeqCst)
        );
        assert_eq!(server.request_count(), 24);
    }

    #[test]
    fn retry_policy_absorbs_hinted_503s() {
        // Every request 503s twice (with a cheap hint) before answering.
        let hits = Arc::new(AtomicU64::new(0));
        let server_hits = Arc::clone(&hits);
        let server = HttpServer::spawn(move |_req: &Request| {
            if server_hits.fetch_add(1, Ordering::SeqCst) % 3 < 2 {
                Response::status_with_retry_after(
                    Status::ServiceUnavailable,
                    Duration::from_millis(5),
                )
            } else {
                Response::ok("text/plain", b"ok".to_vec())
            }
        })
        .unwrap();
        let registry = Registry::new();
        let client = HttpClient::builder()
            .retry(RetryPolicy::default())
            .resilience_metrics(ResilienceMetrics::register(&registry, &[]))
            .build();
        for i in 0..5 {
            client.get(server.addr(), &format!("/item/{i}")).unwrap();
        }
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("marketscope_net_client_resilient_retries_total", &[]),
            Some(10),
            "two retries per request"
        );
        assert!(
            snap.counter_value("marketscope_net_client_backoff_nanos_total", &[])
                .unwrap()
                >= 10 * 5_000_000,
            "each retry paid at least its 5ms hint"
        );
    }

    #[test]
    fn budget_surfaces_unaffordable_hints() {
        // Google Play shape: a 429 whose hint exceeds the budget must
        // surface immediately, not stall the harvest loop.
        let server = HttpServer::spawn(|_req: &Request| {
            Response::status_with_retry_after(Status::TooManyRequests, Duration::from_millis(500))
        })
        .unwrap();
        let client = HttpClient::builder().retry(RetryPolicy::default()).build();
        let start = std::time::Instant::now();
        assert!(matches!(
            client.get(server.addr(), "/apk/x"),
            Err(NetError::Status { code: 429, .. })
        ));
        assert!(
            start.elapsed() < Duration::from_millis(400),
            "hinted 429 must surface without sleeping"
        );
    }

    #[test]
    fn breaker_fast_fails_a_dead_host_and_recovers() {
        let down = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let down_s = Arc::clone(&down);
        let server = HttpServer::spawn(move |_req: &Request| {
            if down_s.load(Ordering::SeqCst) {
                Response::status(Status::InternalError)
            } else {
                Response::ok("text/plain", b"ok".to_vec())
            }
        })
        .unwrap();
        let cfg = BreakerConfig {
            failure_threshold: 3,
            cooldown_rejections: 2,
            half_open_trials: 1,
        };
        let client = HttpClient::builder().breaker(cfg).build();
        let addr = server.addr();
        // Three terminal 500s trip the circuit.
        for _ in 0..3 {
            assert!(matches!(
                client.get(addr, "/x"),
                Err(NetError::Status { code: 500, .. })
            ));
        }
        assert_eq!(client.open_circuits(), 1);
        // Fast fails while open: no wire traffic.
        let served_before = server.request_count();
        for _ in 0..2 {
            assert!(matches!(client.get(addr, "/x"), Err(NetError::CircuitOpen)));
        }
        assert_eq!(server.request_count(), served_before);
        // Host recovers; the cooldown has elapsed, so the next request
        // probes and closes the circuit.
        down.store(false, Ordering::SeqCst);
        client.get(addr, "/x").unwrap();
        assert_eq!(client.open_circuits(), 0);
        client.get(addr, "/x").unwrap();
    }

    #[test]
    fn definitive_404s_never_trip_the_breaker() {
        let server =
            HttpServer::spawn(|_req: &Request| Response::status(Status::NotFound)).unwrap();
        let cfg = BreakerConfig {
            failure_threshold: 2,
            ..BreakerConfig::default()
        };
        let client = HttpClient::builder().breaker(cfg).build();
        for _ in 0..10 {
            assert!(matches!(
                client.get(server.addr(), "/nope"),
                Err(NetError::Status { code: 404, .. })
            ));
        }
        assert_eq!(client.open_circuits(), 0);
    }
}
