//! The HTTP server: an event-loop transport (see [`crate::reactor`])
//! behind the same blocking-`Handler` API — keep-alive, graceful
//! shutdown, fault seams, built-in telemetry.
//!
//! One accept thread feeds nonblocking connections to a fixed set of
//! `poll(2)` shards; handlers run on a bounded worker pool. Thread count
//! is a constant of [`ReactorConfig`], not of the connection count.

use crate::error::NetError;
use crate::fault::FaultInjector;
use crate::http::{Request, Response, Status};
use crate::reactor::{ReactorConfig, Transport};
use marketscope_telemetry::{Counter, EventLog, Gauge, Histogram, Registry, Tracer};
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A request handler. Handlers must be panic-free; a panicking handler
/// poisons only its own connection thread (the server keeps serving), but
/// the peer sees a dropped connection rather than a 500.
pub trait Handler: Send + Sync + 'static {
    /// Produce a response for one request.
    fn handle(&self, req: &Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, req: &Request) -> Response {
        self(req)
    }
}

/// Status codes the server distinguishes in its per-status counters (the
/// full set the HTTP subset can produce).
const TRACKED_STATUSES: [(u16, &str); 6] = [
    (200, "200"),
    (400, "400"),
    (404, "404"),
    (429, "429"),
    (500, "500"),
    (503, "503"),
];

/// The server-side instrument set: total requests, live connections,
/// handler latency, and per-status response counts.
///
/// Built either [standalone](ServerMetrics::standalone) (free-floating
/// instruments, still readable through [`ServerHandle`]) or
/// [registered](ServerMetrics::register) in a [`Registry`] so a scrape
/// endpoint sees them. Either way the record path is lock-free.
#[derive(Debug)]
pub struct ServerMetrics {
    pub(crate) requests: Arc<Counter>,
    pub(crate) live: Arc<Gauge>,
    pub(crate) handler_nanos: Arc<Histogram>,
    pub(crate) responses: Vec<(u16, Arc<Counter>)>,
    pub(crate) accept_errors: Arc<Counter>,
    pub(crate) shed: Arc<Counter>,
    pub(crate) wakeups: Arc<Counter>,
    pub(crate) tracer: Option<Arc<Tracer>>,
    pub(crate) log: Option<Arc<EventLog>>,
}

impl ServerMetrics {
    /// Register the server instruments in `registry` under the given base
    /// labels (e.g. `market="huawei"`). Metric names:
    ///
    /// * `marketscope_net_requests_total`
    /// * `marketscope_net_live_connections` (open-connections gauge)
    /// * `marketscope_net_handler_nanos`
    /// * `marketscope_net_responses_total{status="..."}`
    /// * `marketscope_net_accept_errors_total` (transient accept failures)
    /// * `marketscope_net_connections_shed_total` (503s above the ceiling)
    /// * `marketscope_net_eventloop_wakeups_total` (shard poll returns)
    pub fn register(registry: &Registry, labels: &[(&str, &str)]) -> ServerMetrics {
        let responses = TRACKED_STATUSES
            .iter()
            .map(|&(code, code_str)| {
                let mut with_status = labels.to_vec();
                with_status.push(("status", code_str));
                (
                    code,
                    registry.counter("marketscope_net_responses_total", &with_status),
                )
            })
            .collect();
        ServerMetrics {
            requests: registry.counter("marketscope_net_requests_total", labels),
            live: registry.gauge("marketscope_net_live_connections", labels),
            handler_nanos: registry.histogram("marketscope_net_handler_nanos", labels),
            responses,
            accept_errors: registry.counter("marketscope_net_accept_errors_total", labels),
            shed: registry.counter("marketscope_net_connections_shed_total", labels),
            wakeups: registry.counter("marketscope_net_eventloop_wakeups_total", labels),
            tracer: None,
            log: None,
        }
    }

    /// Attach a tracer: requests arriving with an `x-marketscope-trace`
    /// header open a server-side request span (a remote child of the
    /// client's attempt span) with `handler` and `write` child spans, so
    /// the caller's trace crosses the wire into this server. Requests
    /// without the header trace nothing.
    pub fn traced(mut self, tracer: Arc<Tracer>) -> ServerMetrics {
        self.tracer = Some(tracer);
        self
    }

    /// Attach a structured event log: operational incidents that today
    /// only bump counters (connection shed at the ceiling, accept
    /// errors) also record an event with context.
    pub fn logged(mut self, log: Arc<EventLog>) -> ServerMetrics {
        self.log = Some(log);
        self
    }

    /// Free-floating instruments, not attached to any registry. Used by
    /// [`HttpServer::spawn`] so every server counts requests and live
    /// connections even without a scrape endpoint.
    pub fn standalone() -> ServerMetrics {
        ServerMetrics {
            requests: Arc::new(Counter::new()),
            live: Arc::new(Gauge::new()),
            handler_nanos: Arc::new(Histogram::new()),
            responses: TRACKED_STATUSES
                .iter()
                .map(|&(code, _)| (code, Arc::new(Counter::new())))
                .collect(),
            accept_errors: Arc::new(Counter::new()),
            shed: Arc::new(Counter::new()),
            wakeups: Arc::new(Counter::new()),
            tracer: None,
            log: None,
        }
    }

    pub(crate) fn note_response(&self, status: Status, handler_time: Duration) {
        self.handler_nanos.record_duration(handler_time);
        self.requests.inc();
        let code = status.code();
        if let Some((_, c)) = self.responses.iter().find(|(c, _)| *c == code) {
            c.inc();
        }
    }
}

/// An HTTP server bound to a local address.
pub struct HttpServer;

impl HttpServer {
    /// Bind to `127.0.0.1:0` (ephemeral port) and start serving `handler`
    /// on a background accept thread. Returns a handle carrying the bound
    /// address and the shutdown switch.
    pub fn spawn(handler: impl Handler) -> Result<ServerHandle, NetError> {
        Self::spawn_on("127.0.0.1:0", handler)
    }

    /// Bind to an explicit address and start serving.
    pub fn spawn_on(addr: &str, handler: impl Handler) -> Result<ServerHandle, NetError> {
        Self::spawn_instrumented(addr, handler, ServerMetrics::standalone())
    }

    /// Bind and serve with an explicit instrument set — the way to share
    /// the server's counters with a scrapeable [`Registry`].
    pub fn spawn_instrumented(
        addr: &str,
        handler: impl Handler,
        metrics: ServerMetrics,
    ) -> Result<ServerHandle, NetError> {
        Self::spawn_inner(addr, handler, metrics, None)
    }

    /// Bind and serve behind a [`FaultInjector`]: every request is first
    /// offered to the injector, which may reset the connection, stall or
    /// truncate the response, or answer 503 before the handler runs.
    /// With a no-op plan the injector never fires and the fast path is a
    /// single branch.
    pub fn spawn_with_faults(
        addr: &str,
        handler: impl Handler,
        metrics: ServerMetrics,
        faults: FaultInjector,
    ) -> Result<ServerHandle, NetError> {
        Self::spawn_with_shared_faults(addr, handler, metrics, Arc::new(faults))
    }

    /// Like [`HttpServer::spawn_with_faults`], but the caller keeps a
    /// clone of the injector — the market `/__health` handler reports
    /// the chaos plan and fault counts of the server it runs inside.
    pub fn spawn_with_shared_faults(
        addr: &str,
        handler: impl Handler,
        metrics: ServerMetrics,
        faults: Arc<FaultInjector>,
    ) -> Result<ServerHandle, NetError> {
        Self::spawn_inner(addr, handler, metrics, Some(faults))
    }

    /// The fully general entry point: explicit instruments, optional
    /// fault injector, and an explicit [`ReactorConfig`] (shard count,
    /// handler pool size, connection ceiling, keep-alive). Every other
    /// `spawn_*` constructor delegates here with the default config.
    pub fn spawn_configured(
        addr: &str,
        handler: impl Handler,
        metrics: ServerMetrics,
        faults: Option<Arc<FaultInjector>>,
        config: ReactorConfig,
    ) -> Result<ServerHandle, NetError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(metrics);
        let transport = Transport::spawn(
            listener,
            Arc::new(handler),
            Arc::clone(&metrics),
            faults.clone(),
            config.clone(),
            Arc::clone(&shutdown),
        )?;
        Ok(ServerHandle {
            addr: local,
            shutdown,
            metrics,
            faults,
            config,
            transport: Mutex::new(Some(transport)),
        })
    }

    fn spawn_inner(
        addr: &str,
        handler: impl Handler,
        metrics: ServerMetrics,
        faults: Option<Arc<FaultInjector>>,
    ) -> Result<ServerHandle, NetError> {
        Self::spawn_configured(addr, handler, metrics, faults, ReactorConfig::default())
    }
}

/// Handle to a running server: address, telemetry, shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    faults: Option<Arc<FaultInjector>>,
    config: ReactorConfig,
    transport: Mutex<Option<Transport>>,
}

impl ServerHandle {
    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total requests served so far.
    pub fn request_count(&self) -> u64 {
        self.metrics.requests.get()
    }

    /// Connections currently open.
    pub fn live_connections(&self) -> u64 {
        self.metrics.live.get().max(0) as u64
    }

    /// The request counter itself — the single source of truth also
    /// visible through a registered [`ServerMetrics`].
    pub fn requests_counter(&self) -> &Arc<Counter> {
        &self.metrics.requests
    }

    /// The live-connection gauge itself.
    pub fn live_gauge(&self) -> &Arc<Gauge> {
        &self.metrics.live
    }

    /// Handler latency histogram (nanoseconds).
    pub fn handler_latency(&self) -> &Arc<Histogram> {
        &self.metrics.handler_nanos
    }

    /// The fault injector wrapping this server, when spawned with one.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// The transport configuration this server runs with (shards,
    /// handler pool size, connection ceiling, keep-alive).
    pub fn transport_config(&self) -> &ReactorConfig {
        &self.config
    }

    /// Transient accept-loop errors absorbed with backoff so far
    /// (`marketscope_net_accept_errors_total`).
    pub fn accept_errors(&self) -> u64 {
        self.metrics.accept_errors.get()
    }

    /// Connections shed with an immediate `503` because the server was
    /// at its ceiling (`marketscope_net_connections_shed_total`).
    pub fn shed_connections(&self) -> u64 {
        self.metrics.shed.get()
    }

    /// Stop accepting, then wake and join every transport thread (the
    /// acceptor, the event-loop shards, the handler pool). Open
    /// connections are dropped; the live gauge returns to balance.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.transport.lock().take() {
            t.stop(self.addr);
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpStream;

    fn echo_server() -> ServerHandle {
        HttpServer::spawn(|req: &Request| {
            Response::ok("text/plain", format!("path={}", req.path).into_bytes())
        })
        .unwrap()
    }

    fn raw_round_trip(addr: SocketAddr, wire: &[u8]) -> Vec<u8> {
        use std::io::Read;
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(wire).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_and_stops() {
        let server = echo_server();
        let out = raw_round_trip(
            server.addr(),
            b"GET /hello HTTP/1.1\r\nconnection: close\r\n\r\n",
        );
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.ends_with("path=/hello"), "{text}");
        assert_eq!(server.request_count(), 1);
        server.stop();
        // Stop is idempotent.
        server.stop();
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let server = echo_server();
        let wire = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nconnection: close\r\n\r\n";
        let out = raw_round_trip(server.addr(), wire);
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("path=/a"));
        assert!(text.contains("path=/b"));
        assert_eq!(server.request_count(), 2);
    }

    #[test]
    fn malformed_request_gets_400() {
        let server = echo_server();
        let out = raw_round_trip(server.addr(), b"NONSENSE\r\n\r\n");
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
    }

    #[test]
    fn concurrent_connections() {
        let server = Arc::new(echo_server());
        let mut threads = Vec::new();
        for i in 0..8 {
            let server = Arc::clone(&server);
            threads.push(std::thread::spawn(move || {
                let wire = format!("GET /t{i} HTTP/1.1\r\nconnection: close\r\n\r\n");
                let out = raw_round_trip(server.addr(), wire.as_bytes());
                assert!(String::from_utf8_lossy(&out).contains(&format!("path=/t{i}")));
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(server.request_count(), 8);
    }

    #[test]
    fn rejects_connections_after_stop() {
        let server = echo_server();
        let addr = server.addr();
        server.stop();
        // After stop, either connect fails or the connection is dropped
        // without a response.
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = s.write_all(b"GET / HTTP/1.1\r\nconnection: close\r\n\r\n");
            use std::io::Read;
            let mut out = Vec::new();
            let _ = s.read_to_end(&mut out);
            assert!(out.is_empty(), "stopped server must not answer");
        }
    }

    /// Poll until `cond` holds or a 5s deadline passes (cross-thread
    /// gauge updates land a wake-cycle after the wire event).
    fn wait_until(cond: impl Fn() -> bool) -> bool {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while std::time::Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        cond()
    }

    #[test]
    fn sheds_connections_above_ceiling_with_503() {
        let server = HttpServer::spawn_configured(
            "127.0.0.1:0",
            |_req: &Request| Response::ok("text/plain", b"ok".to_vec()),
            ServerMetrics::standalone(),
            None,
            ReactorConfig {
                max_connections: 2,
                ..ReactorConfig::default()
            },
        )
        .unwrap();
        // Park two keep-alive connections to fill the ceiling.
        let _a = TcpStream::connect(server.addr()).unwrap();
        let _b = TcpStream::connect(server.addr()).unwrap();
        assert!(
            wait_until(|| server.live_connections() == 2),
            "parked connections must register: {}",
            server.live_connections()
        );
        // The third is answered 503 + close instead of silently dropped.
        let mut c = TcpStream::connect(server.addr()).unwrap();
        use std::io::Read;
        let mut out = Vec::new();
        c.read_to_end(&mut out).unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("HTTP/1.1 503"), "{text}");
        assert!(text.contains("connection: close"), "{text}");
        assert_eq!(server.shed_connections(), 1);
        assert_eq!(
            server.request_count(),
            0,
            "shed connections never reach the handler"
        );
        assert_eq!(server.accept_errors(), 0);
    }

    #[test]
    fn idle_keep_alive_connections_are_reaped() {
        let server = HttpServer::spawn_configured(
            "127.0.0.1:0",
            |_req: &Request| Response::ok("text/plain", b"ok".to_vec()),
            ServerMetrics::standalone(),
            None,
            ReactorConfig {
                keep_alive: Duration::from_millis(100),
                ..ReactorConfig::default()
            },
        )
        .unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        assert!(wait_until(|| server.live_connections() == 1));
        // The reaper closes the idle connection and balances the gauge.
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        use std::io::Read;
        let mut out = Vec::new();
        let n = s.read_to_end(&mut out).unwrap();
        assert_eq!(n, 0, "reaped connection must close cleanly");
        assert!(
            wait_until(|| server.live_connections() == 0),
            "gauge must drain after the reap: {}",
            server.live_connections()
        );
    }

    #[test]
    fn registered_metrics_track_statuses_and_latency() {
        let registry = Registry::new();
        let metrics = ServerMetrics::register(&registry, &[("market", "test")]);
        let server = HttpServer::spawn_instrumented(
            "127.0.0.1:0",
            |req: &Request| {
                if req.path == "/missing" {
                    Response::status(Status::NotFound)
                } else {
                    Response::ok("text/plain", b"ok".to_vec())
                }
            },
            metrics,
        )
        .unwrap();
        raw_round_trip(
            server.addr(),
            b"GET /x HTTP/1.1\r\n\r\nGET /missing HTTP/1.1\r\nconnection: close\r\n\r\n",
        );
        let snap = registry.snapshot();
        let labels = [("market", "test")];
        assert_eq!(
            snap.counter_value("marketscope_net_requests_total", &labels),
            Some(2)
        );
        assert_eq!(
            snap.counter_value(
                "marketscope_net_responses_total",
                &[("market", "test"), ("status", "200")]
            ),
            Some(1)
        );
        assert_eq!(
            snap.counter_value(
                "marketscope_net_responses_total",
                &[("market", "test"), ("status", "404")]
            ),
            Some(1)
        );
        // Latency histogram count equals requests served — the invariant
        // the `/__metrics` acceptance check relies on.
        let hist = snap
            .histogram("marketscope_net_handler_nanos", &labels)
            .unwrap();
        assert_eq!(hist.count(), 2);
        // ServerHandle accessors read the same instruments.
        assert_eq!(server.request_count(), 2);
        assert!(Arc::ptr_eq(
            server.requests_counter(),
            &registry.counter("marketscope_net_requests_total", &labels)
        ));
    }
}
