//! The blocking HTTP server: one accept loop, one thread per connection,
//! keep-alive, graceful shutdown.

use crate::error::NetError;
use crate::http::{Request, Response, Status};
use parking_lot::Mutex;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A request handler. Handlers must be panic-free; a panicking handler
/// poisons only its own connection thread (the server keeps serving), but
/// the peer sees a dropped connection rather than a 500.
pub trait Handler: Send + Sync + 'static {
    /// Produce a response for one request.
    fn handle(&self, req: &Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, req: &Request) -> Response {
        self(req)
    }
}

/// An HTTP server bound to a local address.
pub struct HttpServer;

impl HttpServer {
    /// Bind to `127.0.0.1:0` (ephemeral port) and start serving `handler`
    /// on a background accept thread. Returns a handle carrying the bound
    /// address and the shutdown switch.
    pub fn spawn(handler: impl Handler) -> Result<ServerHandle, NetError> {
        Self::spawn_on("127.0.0.1:0", handler)
    }

    /// Bind to an explicit address and start serving.
    pub fn spawn_on(addr: &str, handler: impl Handler) -> Result<ServerHandle, NetError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let live = Arc::new(AtomicU64::new(0));
        let requests = Arc::new(AtomicU64::new(0));
        let handler: Arc<dyn Handler> = Arc::new(handler);

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_live = Arc::clone(&live);
        let accept_requests = Arc::clone(&requests);
        let accept_thread = std::thread::Builder::new()
            .name(format!("http-accept-{local}"))
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let handler = Arc::clone(&handler);
                    let live = Arc::clone(&accept_live);
                    let requests = Arc::clone(&accept_requests);
                    let conn_shutdown = Arc::clone(&accept_shutdown);
                    live.fetch_add(1, Ordering::SeqCst);
                    let _ = std::thread::Builder::new()
                        .name("http-conn".to_owned())
                        .spawn(move || {
                            let _ = serve_connection(
                                stream,
                                handler.as_ref(),
                                &requests,
                                &conn_shutdown,
                            );
                            live.fetch_sub(1, Ordering::SeqCst);
                        });
                }
            })
            .expect("spawn accept thread");

        Ok(ServerHandle {
            addr: local,
            shutdown,
            live,
            requests,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }
}

/// Serve requests on one connection until close, error, or shutdown.
fn serve_connection(
    stream: TcpStream,
    handler: &dyn Handler,
    requests: &AtomicU64,
    shutdown: &AtomicBool,
) -> Result<(), NetError> {
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let req = match Request::read_from(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()), // peer closed cleanly
            Err(NetError::Io(e)) => return Err(NetError::Io(e)),
            Err(NetError::UnexpectedEof) => return Ok(()),
            Err(_) => {
                // Malformed request: answer 400 and close.
                let _ = Response::status(Status::BadRequest).write_to(&mut writer);
                return Ok(());
            }
        };
        let close = req.wants_close();
        let resp = handler.handle(&req);
        requests.fetch_add(1, Ordering::Relaxed);
        resp.write_to(&mut writer)?;
        if close {
            return Ok(());
        }
    }
}

/// Handle to a running server: address, counters, shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    live: Arc<AtomicU64>,
    requests: Arc<AtomicU64>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl ServerHandle {
    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total requests served so far.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Connections currently open.
    pub fn live_connections(&self) -> u64 {
        self.live.load(Ordering::SeqCst)
    }

    /// Stop accepting, wake the accept loop, and join it. Connection
    /// threads drain on their own (their next request check sees the
    /// flag, and read timeouts bound their lifetime).
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn echo_server() -> ServerHandle {
        HttpServer::spawn(|req: &Request| {
            Response::ok("text/plain", format!("path={}", req.path).into_bytes())
        })
        .unwrap()
    }

    fn raw_round_trip(addr: SocketAddr, wire: &[u8]) -> Vec<u8> {
        use std::io::Read;
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(wire).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_and_stops() {
        let server = echo_server();
        let out = raw_round_trip(
            server.addr(),
            b"GET /hello HTTP/1.1\r\nconnection: close\r\n\r\n",
        );
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.ends_with("path=/hello"), "{text}");
        assert_eq!(server.request_count(), 1);
        server.stop();
        // Stop is idempotent.
        server.stop();
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let server = echo_server();
        let wire = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nconnection: close\r\n\r\n";
        let out = raw_round_trip(server.addr(), wire);
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("path=/a"));
        assert!(text.contains("path=/b"));
        assert_eq!(server.request_count(), 2);
    }

    #[test]
    fn malformed_request_gets_400() {
        let server = echo_server();
        let out = raw_round_trip(server.addr(), b"NONSENSE\r\n\r\n");
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
    }

    #[test]
    fn concurrent_connections() {
        let server = Arc::new(echo_server());
        let mut threads = Vec::new();
        for i in 0..8 {
            let server = Arc::clone(&server);
            threads.push(std::thread::spawn(move || {
                let wire = format!("GET /t{i} HTTP/1.1\r\nconnection: close\r\n\r\n");
                let out = raw_round_trip(server.addr(), wire.as_bytes());
                assert!(String::from_utf8_lossy(&out).contains(&format!("path=/t{i}")));
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(server.request_count(), 8);
    }

    #[test]
    fn rejects_connections_after_stop() {
        let server = echo_server();
        let addr = server.addr();
        server.stop();
        // After stop, either connect fails or the connection is dropped
        // without a response.
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = s.write_all(b"GET / HTTP/1.1\r\nconnection: close\r\n\r\n");
            use std::io::Read;
            let mut out = Vec::new();
            let _ = s.read_to_end(&mut out);
            assert!(out.is_empty(), "stopped server must not answer");
        }
    }
}
