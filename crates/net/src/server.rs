//! The blocking HTTP server: one accept loop, one thread per connection,
//! keep-alive, graceful shutdown, built-in telemetry.

use crate::error::NetError;
use crate::fault::{FaultAction, FaultInjector};
use crate::http::{Request, Response, Status};
use marketscope_telemetry::{Counter, Gauge, Histogram, Registry, TraceSpan, Tracer};
use parking_lot::Mutex;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A request handler. Handlers must be panic-free; a panicking handler
/// poisons only its own connection thread (the server keeps serving), but
/// the peer sees a dropped connection rather than a 500.
pub trait Handler: Send + Sync + 'static {
    /// Produce a response for one request.
    fn handle(&self, req: &Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, req: &Request) -> Response {
        self(req)
    }
}

/// Status codes the server distinguishes in its per-status counters (the
/// full set the HTTP subset can produce).
const TRACKED_STATUSES: [(u16, &str); 6] = [
    (200, "200"),
    (400, "400"),
    (404, "404"),
    (429, "429"),
    (500, "500"),
    (503, "503"),
];

/// The server-side instrument set: total requests, live connections,
/// handler latency, and per-status response counts.
///
/// Built either [standalone](ServerMetrics::standalone) (free-floating
/// instruments, still readable through [`ServerHandle`]) or
/// [registered](ServerMetrics::register) in a [`Registry`] so a scrape
/// endpoint sees them. Either way the record path is lock-free.
#[derive(Debug)]
pub struct ServerMetrics {
    requests: Arc<Counter>,
    live: Arc<Gauge>,
    handler_nanos: Arc<Histogram>,
    responses: Vec<(u16, Arc<Counter>)>,
    tracer: Option<Arc<Tracer>>,
}

impl ServerMetrics {
    /// Register the server instruments in `registry` under the given base
    /// labels (e.g. `market="huawei"`). Metric names:
    ///
    /// * `marketscope_net_requests_total`
    /// * `marketscope_net_live_connections`
    /// * `marketscope_net_handler_nanos`
    /// * `marketscope_net_responses_total{status="..."}`
    pub fn register(registry: &Registry, labels: &[(&str, &str)]) -> ServerMetrics {
        let responses = TRACKED_STATUSES
            .iter()
            .map(|&(code, code_str)| {
                let mut with_status = labels.to_vec();
                with_status.push(("status", code_str));
                (
                    code,
                    registry.counter("marketscope_net_responses_total", &with_status),
                )
            })
            .collect();
        ServerMetrics {
            requests: registry.counter("marketscope_net_requests_total", labels),
            live: registry.gauge("marketscope_net_live_connections", labels),
            handler_nanos: registry.histogram("marketscope_net_handler_nanos", labels),
            responses,
            tracer: None,
        }
    }

    /// Attach a tracer: requests arriving with an `x-marketscope-trace`
    /// header open a server-side request span (a remote child of the
    /// client's attempt span) with `handler` and `write` child spans, so
    /// the caller's trace crosses the wire into this server. Requests
    /// without the header trace nothing.
    pub fn traced(mut self, tracer: Arc<Tracer>) -> ServerMetrics {
        self.tracer = Some(tracer);
        self
    }

    /// Free-floating instruments, not attached to any registry. Used by
    /// [`HttpServer::spawn`] so every server counts requests and live
    /// connections even without a scrape endpoint.
    pub fn standalone() -> ServerMetrics {
        ServerMetrics {
            requests: Arc::new(Counter::new()),
            live: Arc::new(Gauge::new()),
            handler_nanos: Arc::new(Histogram::new()),
            responses: TRACKED_STATUSES
                .iter()
                .map(|&(code, _)| (code, Arc::new(Counter::new())))
                .collect(),
            tracer: None,
        }
    }

    fn note_response(&self, status: Status, handler_time: Duration) {
        self.handler_nanos.record_duration(handler_time);
        self.requests.inc();
        let code = status.code();
        if let Some((_, c)) = self.responses.iter().find(|(c, _)| *c == code) {
            c.inc();
        }
    }
}

/// An HTTP server bound to a local address.
pub struct HttpServer;

impl HttpServer {
    /// Bind to `127.0.0.1:0` (ephemeral port) and start serving `handler`
    /// on a background accept thread. Returns a handle carrying the bound
    /// address and the shutdown switch.
    pub fn spawn(handler: impl Handler) -> Result<ServerHandle, NetError> {
        Self::spawn_on("127.0.0.1:0", handler)
    }

    /// Bind to an explicit address and start serving.
    pub fn spawn_on(addr: &str, handler: impl Handler) -> Result<ServerHandle, NetError> {
        Self::spawn_instrumented(addr, handler, ServerMetrics::standalone())
    }

    /// Bind and serve with an explicit instrument set — the way to share
    /// the server's counters with a scrapeable [`Registry`].
    pub fn spawn_instrumented(
        addr: &str,
        handler: impl Handler,
        metrics: ServerMetrics,
    ) -> Result<ServerHandle, NetError> {
        Self::spawn_inner(addr, handler, metrics, None)
    }

    /// Bind and serve behind a [`FaultInjector`]: every request is first
    /// offered to the injector, which may reset the connection, stall or
    /// truncate the response, or answer 503 before the handler runs.
    /// With a no-op plan the injector never fires and the fast path is a
    /// single branch.
    pub fn spawn_with_faults(
        addr: &str,
        handler: impl Handler,
        metrics: ServerMetrics,
        faults: FaultInjector,
    ) -> Result<ServerHandle, NetError> {
        Self::spawn_with_shared_faults(addr, handler, metrics, Arc::new(faults))
    }

    /// Like [`HttpServer::spawn_with_faults`], but the caller keeps a
    /// clone of the injector — the market `/__health` handler reports
    /// the chaos plan and fault counts of the server it runs inside.
    pub fn spawn_with_shared_faults(
        addr: &str,
        handler: impl Handler,
        metrics: ServerMetrics,
        faults: Arc<FaultInjector>,
    ) -> Result<ServerHandle, NetError> {
        Self::spawn_inner(addr, handler, metrics, Some(faults))
    }

    fn spawn_inner(
        addr: &str,
        handler: impl Handler,
        metrics: ServerMetrics,
        faults: Option<Arc<FaultInjector>>,
    ) -> Result<ServerHandle, NetError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(metrics);
        let handler: Arc<dyn Handler> = Arc::new(handler);

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_metrics = Arc::clone(&metrics);
        let accept_faults = faults.clone();
        let accept_thread = std::thread::Builder::new()
            .name(format!("http-accept-{local}"))
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let handler = Arc::clone(&handler);
                    let metrics = Arc::clone(&accept_metrics);
                    let conn_shutdown = Arc::clone(&accept_shutdown);
                    let conn_faults = accept_faults.clone();
                    metrics.live.inc();
                    let _ = std::thread::Builder::new()
                        .name("http-conn".to_owned())
                        .spawn(move || {
                            let _ = serve_connection(
                                stream,
                                handler.as_ref(),
                                &metrics,
                                &conn_shutdown,
                                conn_faults.as_deref(),
                            );
                            metrics.live.dec();
                        });
                }
            })?;

        Ok(ServerHandle {
            addr: local,
            shutdown,
            metrics,
            faults,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }
}

/// Serve requests on one connection until close, error, or shutdown.
fn serve_connection(
    stream: TcpStream,
    handler: &dyn Handler,
    metrics: &ServerMetrics,
    shutdown: &AtomicBool,
    faults: Option<&FaultInjector>,
) -> Result<(), NetError> {
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let req = match Request::read_from(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()), // peer closed cleanly
            Err(NetError::Io(e)) => return Err(NetError::Io(e)),
            Err(NetError::UnexpectedEof) => return Ok(()),
            Err(_) => {
                // Malformed request: answer 400 and close.
                metrics.note_response(Status::BadRequest, Duration::ZERO);
                let _ = Response::status(Status::BadRequest).write_to(&mut writer);
                return Ok(());
            }
        };
        let close = req.wants_close();
        // The fault injector gets first refusal, before any span opens:
        // a reset market never answers, so it must not trace either.
        let fault = match faults {
            Some(f) => f.decide(&req.path),
            None => FaultAction::Serve,
        };
        match fault {
            FaultAction::Serve | FaultAction::Truncate => {}
            // Slam the door without a byte: the client sees a reset or
            // a mid-message EOF.
            FaultAction::Reset => return Ok(()),
            // Added latency, then serve normally.
            FaultAction::Stall(d) => std::thread::sleep(d),
            // Answer for the handler: the market is erroring, not slow.
            FaultAction::Error {
                status,
                retry_after,
            } => {
                let resp = match retry_after {
                    Some(d) => Response::status_with_retry_after(status, d),
                    None => Response::status(status),
                };
                metrics.note_response(status, Duration::ZERO);
                resp.write_to(&mut writer)?;
                if close {
                    return Ok(());
                }
                continue;
            }
        }
        // A propagated trace context makes this request a remote child
        // of the client-side attempt span; without one (or without a
        // tracer) every span below is a no-op.
        let req_span = match &metrics.tracer {
            Some(t) => t.child_of(
                req.trace_context(),
                "server",
                &format!("{} {}", req.method.as_str(), req.path),
            ),
            None => TraceSpan::noop(),
        };
        let start = Instant::now();
        let handler_span = match &metrics.tracer {
            Some(t) => t.span("server", "handler"),
            None => TraceSpan::noop(),
        };
        let resp = handler.handle(&req);
        handler_span.finish();
        // Count and time *after* the handler so a `/__metrics` scrape
        // renders a self-consistent exposition: for every market,
        // `requests_total == handler_nanos_count` and the in-flight
        // scrape itself is excluded from both.
        metrics.note_response(resp.status, start.elapsed());
        req_span.event(&format!("status:{}", resp.status.code()));
        let write_span = match &metrics.tracer {
            Some(t) => t.span("server", "write"),
            None => TraceSpan::noop(),
        };
        if fault == FaultAction::Truncate {
            // Cut the body mid-stream and close so the client sees an
            // unexpected EOF. An empty body can't be cut — drop the
            // connection instead (same observable failure).
            if !resp.body.is_empty() {
                resp.write_truncated_to(&mut writer, resp.body.len() / 2)?;
            }
            write_span.finish();
            req_span.finish();
            return Ok(());
        }
        resp.write_to(&mut writer)?;
        write_span.finish();
        req_span.finish();
        if close {
            return Ok(());
        }
    }
}

/// Handle to a running server: address, telemetry, shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    faults: Option<Arc<FaultInjector>>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl ServerHandle {
    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total requests served so far.
    pub fn request_count(&self) -> u64 {
        self.metrics.requests.get()
    }

    /// Connections currently open.
    pub fn live_connections(&self) -> u64 {
        self.metrics.live.get().max(0) as u64
    }

    /// The request counter itself — the single source of truth also
    /// visible through a registered [`ServerMetrics`].
    pub fn requests_counter(&self) -> &Arc<Counter> {
        &self.metrics.requests
    }

    /// The live-connection gauge itself.
    pub fn live_gauge(&self) -> &Arc<Gauge> {
        &self.metrics.live
    }

    /// Handler latency histogram (nanoseconds).
    pub fn handler_latency(&self) -> &Arc<Histogram> {
        &self.metrics.handler_nanos
    }

    /// The fault injector wrapping this server, when spawned with one.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// Stop accepting, wake the accept loop, and join it. Connection
    /// threads drain on their own (their next request check sees the
    /// flag, and read timeouts bound their lifetime).
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn echo_server() -> ServerHandle {
        HttpServer::spawn(|req: &Request| {
            Response::ok("text/plain", format!("path={}", req.path).into_bytes())
        })
        .unwrap()
    }

    fn raw_round_trip(addr: SocketAddr, wire: &[u8]) -> Vec<u8> {
        use std::io::Read;
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(wire).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_and_stops() {
        let server = echo_server();
        let out = raw_round_trip(
            server.addr(),
            b"GET /hello HTTP/1.1\r\nconnection: close\r\n\r\n",
        );
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.ends_with("path=/hello"), "{text}");
        assert_eq!(server.request_count(), 1);
        server.stop();
        // Stop is idempotent.
        server.stop();
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let server = echo_server();
        let wire = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nconnection: close\r\n\r\n";
        let out = raw_round_trip(server.addr(), wire);
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("path=/a"));
        assert!(text.contains("path=/b"));
        assert_eq!(server.request_count(), 2);
    }

    #[test]
    fn malformed_request_gets_400() {
        let server = echo_server();
        let out = raw_round_trip(server.addr(), b"NONSENSE\r\n\r\n");
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
    }

    #[test]
    fn concurrent_connections() {
        let server = Arc::new(echo_server());
        let mut threads = Vec::new();
        for i in 0..8 {
            let server = Arc::clone(&server);
            threads.push(std::thread::spawn(move || {
                let wire = format!("GET /t{i} HTTP/1.1\r\nconnection: close\r\n\r\n");
                let out = raw_round_trip(server.addr(), wire.as_bytes());
                assert!(String::from_utf8_lossy(&out).contains(&format!("path=/t{i}")));
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(server.request_count(), 8);
    }

    #[test]
    fn rejects_connections_after_stop() {
        let server = echo_server();
        let addr = server.addr();
        server.stop();
        // After stop, either connect fails or the connection is dropped
        // without a response.
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = s.write_all(b"GET / HTTP/1.1\r\nconnection: close\r\n\r\n");
            use std::io::Read;
            let mut out = Vec::new();
            let _ = s.read_to_end(&mut out);
            assert!(out.is_empty(), "stopped server must not answer");
        }
    }

    #[test]
    fn registered_metrics_track_statuses_and_latency() {
        let registry = Registry::new();
        let metrics = ServerMetrics::register(&registry, &[("market", "test")]);
        let server = HttpServer::spawn_instrumented(
            "127.0.0.1:0",
            |req: &Request| {
                if req.path == "/missing" {
                    Response::status(Status::NotFound)
                } else {
                    Response::ok("text/plain", b"ok".to_vec())
                }
            },
            metrics,
        )
        .unwrap();
        raw_round_trip(
            server.addr(),
            b"GET /x HTTP/1.1\r\n\r\nGET /missing HTTP/1.1\r\nconnection: close\r\n\r\n",
        );
        let snap = registry.snapshot();
        let labels = [("market", "test")];
        assert_eq!(
            snap.counter_value("marketscope_net_requests_total", &labels),
            Some(2)
        );
        assert_eq!(
            snap.counter_value(
                "marketscope_net_responses_total",
                &[("market", "test"), ("status", "200")]
            ),
            Some(1)
        );
        assert_eq!(
            snap.counter_value(
                "marketscope_net_responses_total",
                &[("market", "test"), ("status", "404")]
            ),
            Some(1)
        );
        // Latency histogram count equals requests served — the invariant
        // the `/__metrics` acceptance check relies on.
        let hist = snap
            .histogram("marketscope_net_handler_nanos", &labels)
            .unwrap();
        assert_eq!(hist.count(), 2);
        // ServerHandle accessors read the same instruments.
        assert_eq!(server.request_count(), 2);
        assert!(Arc::ptr_eq(
            server.requests_counter(),
            &registry.counter("marketscope_net_requests_total", &labels)
        ));
    }
}
