//! Client-side resilience: a retry policy with deterministic backoff,
//! and per-host circuit breaking.
//!
//! The paper's crawlers ran for two weeks against markets that throttle,
//! reset and flap (§2); surviving that needs two complementary shapes:
//!
//! * [`RetryPolicy`] — bounded retries with exponential backoff and
//!   *deterministic* jitter (a splitmix64 draw keyed on the request, not
//!   a global RNG, so replays sleep the same schedule). The server's
//!   `retry-after` hint is honored when present, but every sleep counts
//!   against a hard [`backoff_budget`](RetryPolicy::backoff_budget): a
//!   hint the budget can't afford surfaces the error to the caller
//!   instead. That is what keeps Google Play's ~0.5 s 429 hints flowing
//!   straight to the crawler's repository-backfill path (the paper only
//!   fetched ~14% of Play APKs directly) while ~20 ms chaos 503s are
//!   absorbed invisibly.
//! * [`CircuitBreaker`] — per-host closed → open → half-open. A run of
//!   consecutive terminal failures opens the circuit; while open,
//!   requests fast-fail locally with [`NetError::CircuitOpen`] instead
//!   of burning sockets on a dead host. The cooldown is measured in
//!   *rejections*, not wall time — wall-clock cooldowns make replays
//!   diverge — after which a bounded number of half-open probes decide
//!   between recovery and re-tripping.
//!
//! Definitive answers (404s and other non-retryable statuses) count as
//! breaker *successes*: the host answered. Only
//! [retryable](NetError::is_retryable) terminal failures push a circuit
//! toward open.

use crate::error::NetError;
use crate::fault::{splitmix64, unit};
use marketscope_telemetry::{trace, Counter, EventLog, Gauge, LogLevel, Registry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Status-level retry policy: how many times, how long to wait, and
/// when to give up instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum retries per logical request (on top of the first try).
    pub max_retries: u32,
    /// First backoff; doubles per retry.
    pub base_backoff: Duration,
    /// Cap on a single computed backoff (not on `retry-after` hints —
    /// the budget gates those).
    pub max_backoff: Duration,
    /// Hard cap on *total* sleep per logical request. A wait that would
    /// exceed it — including a server `retry-after` hint — surfaces the
    /// error instead.
    pub backoff_budget: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(160),
            backoff_budget: Duration::from_millis(250),
            jitter_seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// The computed backoff before retry number `attempt` (0-based) of
    /// the request identified by `key` (callers hash the path):
    /// exponential with a deterministic jitter factor in `[0.5, 1.0]`.
    pub fn backoff(&self, attempt: u32, key: u64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff);
        let draw = splitmix64(
            self.jitter_seed ^ key ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        exp.mul_f64(0.5 + 0.5 * unit(draw))
    }

    /// How long to sleep before retrying `err`, or `None` to surface it:
    /// not retryable, retries exhausted, or the wait (server hint or
    /// computed backoff) would blow the remaining budget.
    pub fn delay_for(
        &self,
        err: &NetError,
        attempt: u32,
        key: u64,
        already_slept: Duration,
    ) -> Option<Duration> {
        if !err.is_retryable() || attempt >= self.max_retries {
            return None;
        }
        let wait = match err.retry_after() {
            Some(hint) => hint,
            None => self.backoff(attempt, key),
        };
        (already_slept + wait <= self.backoff_budget).then_some(wait)
    }
}

/// Circuit-breaker thresholds. Cooldown is counted in rejected requests
/// rather than elapsed time so that replays of a deterministic workload
/// trip and recover at the same points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive terminal failures that open the circuit.
    pub failure_threshold: u32,
    /// Fast-failed requests to absorb while open before probing.
    pub cooldown_rejections: u32,
    /// Concurrent probe requests allowed while half-open.
    pub half_open_trials: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 5,
            cooldown_rejections: 8,
            half_open_trials: 2,
        }
    }
}

/// Observable breaker state, for tests and the ops summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; failures are being counted.
    Closed,
    /// Fast-failing everything until the cooldown elapses.
    Open,
    /// Letting a bounded number of probes through.
    HalfOpen,
}

enum State {
    Closed { failures: u32 },
    Open { rejections: u32 },
    HalfOpen { probes_left: u32 },
}

/// Resilience instruments, shared by the retry loop and every breaker
/// of one client:
///
/// * `marketscope_net_client_resilient_retries_total`
/// * `marketscope_net_client_backoff_nanos_total`
/// * `marketscope_net_client_fast_fails_total`
/// * `marketscope_net_client_breaker_transitions_total{to="..."}`
/// * `marketscope_net_client_open_circuits` (gauge; counts non-closed)
#[derive(Clone)]
pub struct ResilienceMetrics {
    retries: Arc<Counter>,
    backoff_nanos: Arc<Counter>,
    fast_fails: Arc<Counter>,
    to_open: Arc<Counter>,
    to_half_open: Arc<Counter>,
    to_closed: Arc<Counter>,
    open_circuits: Arc<Gauge>,
    log: Option<Arc<EventLog>>,
}

impl ResilienceMetrics {
    /// Create the resilience instruments in `registry` under `labels`.
    pub fn register(registry: &Registry, labels: &[(&str, &str)]) -> ResilienceMetrics {
        let transition = |to: &str| {
            let mut all = vec![("to", to)];
            all.extend_from_slice(labels);
            registry.counter("marketscope_net_client_breaker_transitions_total", &all)
        };
        ResilienceMetrics {
            retries: registry.counter("marketscope_net_client_resilient_retries_total", labels),
            backoff_nanos: registry.counter("marketscope_net_client_backoff_nanos_total", labels),
            fast_fails: registry.counter("marketscope_net_client_fast_fails_total", labels),
            to_open: transition("open"),
            to_half_open: transition("half_open"),
            to_closed: transition("closed"),
            open_circuits: registry.gauge("marketscope_net_client_open_circuits", labels),
            log: None,
        }
    }

    /// Record breaker transitions to `log` as structured events (in
    /// addition to the transition counters).
    pub fn with_log(mut self, log: Arc<EventLog>) -> ResilienceMetrics {
        self.log = Some(log);
        self
    }

    /// Count one policy retry and the backoff it paid.
    pub(crate) fn note_retry(&self, slept: Duration) {
        self.retries.inc();
        self.backoff_nanos.add(slept.as_nanos() as u64);
    }
}

/// One host's circuit. Shared by reference between all requests the
/// client sends to that host.
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: Mutex<State>,
    metrics: Option<ResilienceMetrics>,
    /// Host tag stamped on transition log events (set by
    /// [`BreakerSet::for_host`]).
    scope: Option<String>,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: Mutex::new(State::Closed { failures: 0 }),
            metrics: None,
            scope: None,
        }
    }

    /// Current state, for tests and reporting.
    pub fn state(&self) -> BreakerState {
        match *self.state.lock() {
            State::Closed { .. } => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Whether a request may proceed. `false` means fast-fail with
    /// [`NetError::CircuitOpen`] without touching the wire. Open
    /// circuits transition to half-open (admitting this request as the
    /// first probe) once enough rejections have accumulated.
    pub fn admit(&self) -> bool {
        let mut st = self.state.lock();
        let admitted = match &mut *st {
            State::Closed { .. } => true,
            State::Open { rejections } => {
                if *rejections >= self.config.cooldown_rejections {
                    *st = State::HalfOpen {
                        probes_left: self.config.half_open_trials.saturating_sub(1),
                    };
                    drop(st);
                    self.note_transition(BreakerState::HalfOpen);
                    trace::current_event("breaker:half_open");
                    return true;
                }
                *rejections += 1;
                false
            }
            State::HalfOpen { probes_left } => {
                if *probes_left > 0 {
                    *probes_left -= 1;
                    true
                } else {
                    false
                }
            }
        };
        drop(st);
        if !admitted {
            if let Some(m) = &self.metrics {
                m.fast_fails.inc();
            }
        }
        admitted
    }

    /// The host answered definitively (2xx, or a non-retryable status
    /// like 404). Resets the failure run; a half-open probe success
    /// closes the circuit.
    pub fn on_success(&self) {
        let mut st = self.state.lock();
        match &mut *st {
            State::Closed { failures } => *failures = 0,
            State::HalfOpen { .. } => {
                *st = State::Closed { failures: 0 };
                drop(st);
                self.note_transition(BreakerState::Closed);
                trace::current_event("breaker:closed");
            }
            // A straggler succeeding while open: leave the cooldown to
            // the probes.
            State::Open { .. } => {}
        }
    }

    /// A terminal [retryable](NetError::is_retryable) failure. Enough of
    /// these in a row opens the circuit; any half-open probe failure
    /// re-opens it.
    pub fn on_failure(&self) {
        let mut st = self.state.lock();
        match &mut *st {
            State::Closed { failures } => {
                *failures += 1;
                if *failures >= self.config.failure_threshold {
                    *st = State::Open { rejections: 0 };
                    drop(st);
                    if let Some(m) = &self.metrics {
                        m.open_circuits.inc();
                    }
                    self.note_transition(BreakerState::Open);
                    trace::current_event("breaker:open");
                }
            }
            State::HalfOpen { .. } => {
                *st = State::Open { rejections: 0 };
                drop(st);
                // Already counted in the gauge: half-open is non-closed.
                self.note_transition(BreakerState::Open);
                trace::current_event("breaker:open");
            }
            State::Open { .. } => {}
        }
    }

    fn note_transition(&self, to: BreakerState) {
        if let Some(m) = &self.metrics {
            match to {
                BreakerState::Open => m.to_open.inc(),
                BreakerState::HalfOpen => m.to_half_open.inc(),
                BreakerState::Closed => {
                    m.to_closed.inc();
                    m.open_circuits.dec();
                }
            }
            if let Some(log) = &m.log {
                let (level, message) = match to {
                    BreakerState::Open => (LogLevel::Warn, "circuit opened"),
                    BreakerState::HalfOpen => (LogLevel::Info, "circuit half-open, probing"),
                    BreakerState::Closed => (LogLevel::Info, "circuit closed"),
                };
                let host = self.scope.as_deref().unwrap_or("?");
                log.record(level, "net.breaker", message, &[("host", host)]);
            }
        }
    }
}

/// The client's per-host breaker map: one lazily-created
/// [`CircuitBreaker`] per remote address, all sharing one config and
/// one set of (aggregate) instruments.
pub struct BreakerSet {
    config: BreakerConfig,
    metrics: Option<ResilienceMetrics>,
    by_host: Mutex<HashMap<SocketAddr, Arc<CircuitBreaker>>>,
}

impl BreakerSet {
    /// A breaker set with the given thresholds.
    pub fn new(config: BreakerConfig, metrics: Option<ResilienceMetrics>) -> BreakerSet {
        BreakerSet {
            config,
            metrics,
            by_host: Mutex::new(HashMap::new()),
        }
    }

    /// The breaker guarding `addr`, created closed on first use.
    pub fn for_host(&self, addr: SocketAddr) -> Arc<CircuitBreaker> {
        Arc::clone(self.by_host.lock().entry(addr).or_insert_with(|| {
            Arc::new(CircuitBreaker {
                metrics: self.metrics.clone(),
                scope: Some(addr.to_string()),
                ..CircuitBreaker::new(self.config)
            })
        }))
    }

    /// Number of circuits currently not closed.
    pub fn open_count(&self) -> usize {
        self.by_host
            .lock()
            .values()
            .filter(|b| b.state() != BreakerState::Closed)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;

    #[test]
    fn backoff_is_exponential_capped_and_deterministic() {
        let p = RetryPolicy::default();
        for attempt in 0..4 {
            let exp = p
                .base_backoff
                .saturating_mul(1 << attempt)
                .min(p.max_backoff);
            let b = p.backoff(attempt, 42);
            assert!(
                b >= exp.mul_f64(0.5) && b <= exp,
                "attempt {attempt}: {b:?}"
            );
            assert_eq!(b, p.backoff(attempt, 42), "same inputs, same sleep");
        }
        // Huge attempt numbers must not overflow.
        assert!(p.backoff(40, 1) <= p.max_backoff);
        // Different keys jitter differently (with overwhelming probability).
        assert_ne!(p.backoff(0, 1), p.backoff(0, 2));
    }

    #[test]
    fn delay_honors_hints_within_budget_only() {
        let p = RetryPolicy::default();
        let hinted = |ms: u64| NetError::Status {
            code: 503,
            retry_after: Some(Duration::from_millis(ms)),
        };
        // A cheap hint is honored verbatim.
        assert_eq!(
            p.delay_for(&hinted(20), 0, 1, Duration::ZERO),
            Some(Duration::from_millis(20))
        );
        // Google Play's ~500ms hint blows the 250ms budget: surface it.
        assert_eq!(p.delay_for(&hinted(500), 0, 1, Duration::ZERO), None);
        // Budget is cumulative across the request's retries.
        assert_eq!(
            p.delay_for(&hinted(100), 1, 1, Duration::from_millis(200)),
            None
        );
        // Exhausted retries and non-retryable errors surface.
        assert_eq!(
            p.delay_for(&hinted(1), p.max_retries, 1, Duration::ZERO),
            None
        );
        assert_eq!(
            p.delay_for(&NetError::status(404), 0, 1, Duration::ZERO),
            None
        );
        assert_eq!(
            p.delay_for(&NetError::Protocol("junk"), 0, 1, Duration::ZERO),
            None
        );
        // Transient errors retry with computed backoff.
        let io_err = NetError::from(io::Error::other("reset"));
        assert_eq!(
            p.delay_for(&io_err, 0, 7, Duration::ZERO),
            Some(p.backoff(0, 7))
        );
    }

    #[test]
    fn breaker_walks_closed_open_half_open_closed() {
        let cfg = BreakerConfig {
            failure_threshold: 3,
            cooldown_rejections: 2,
            half_open_trials: 1,
        };
        let b = CircuitBreaker::new(cfg);
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..2 {
            assert!(b.admit());
            b.on_failure();
        }
        // A success resets the run.
        b.on_success();
        for _ in 0..3 {
            assert!(b.admit());
            b.on_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown: exactly two rejections, then the next request probes.
        assert!(!b.admit());
        assert!(!b.admit());
        assert!(b.admit(), "cooldown elapsed: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit());
    }

    #[test]
    fn failed_probe_reopens() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            cooldown_rejections: 1,
            half_open_trials: 1,
        };
        let b = CircuitBreaker::new(cfg);
        assert!(b.admit());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit(), "the single cooldown rejection");
        assert!(b.admit(), "then the next request converts to a probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        // While half-open with no probes left, extra requests fast-fail.
        assert!(!b.admit());
        assert!(b.admit());
        {
            let mut st = b.state.lock();
            *st = State::HalfOpen { probes_left: 0 };
        }
        assert!(!b.admit());
    }

    #[test]
    fn metrics_and_gauge_track_transitions_without_double_count() {
        let registry = Registry::new();
        let metrics = ResilienceMetrics::register(&registry, &[]);
        let set = BreakerSet::new(
            BreakerConfig {
                failure_threshold: 1,
                cooldown_rejections: 1,
                half_open_trials: 1,
            },
            Some(metrics),
        );
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let b = set.for_host(addr);
        assert!(Arc::ptr_eq(&b, &set.for_host(addr)), "one breaker per host");

        b.on_failure(); // closed -> open
        assert!(!b.admit()); // fast fail (also completes cooldown count? no: 1st rejection -> half-open next)
        assert!(b.admit()); // probe
        b.on_failure(); // half-open -> open (gauge must NOT double count)
        assert_eq!(set.open_count(), 1);
        assert!(!b.admit());
        assert!(b.admit()); // probe again
        b.on_success(); // -> closed
        assert_eq!(set.open_count(), 0);

        let snap = registry.snapshot();
        let count = |to: &str| {
            snap.counter_value(
                "marketscope_net_client_breaker_transitions_total",
                &[("to", to)],
            )
            .unwrap()
        };
        assert_eq!(count("open"), 2);
        assert_eq!(count("half_open"), 2);
        assert_eq!(count("closed"), 1);
        assert_eq!(
            snap.gauge_value("marketscope_net_client_open_circuits", &[]),
            Some(0)
        );
        assert_eq!(
            snap.counter_value("marketscope_net_client_fast_fails_total", &[]),
            Some(2)
        );
    }
}
