//! Deterministic, seeded fault injection for the server side of the
//! stack.
//!
//! The paper's crawl ran against 16 real Chinese markets with
//! anti-crawling defenses, flaky CDNs and throttling (§2); our
//! in-process fleet is far too polite. A [`FaultPlan`] describes the
//! failure modes a market exhibits — connection resets, response
//! stalls, truncated bodies, 5xx bursts, and flapping whole-market
//! downtime windows — and a [`FaultInjector`] turns the plan into a
//! per-request [`FaultAction`] drawn from a splitmix64 stream, so the
//! same seed replays the exact same fault sequence.
//!
//! ## Determinism under concurrency
//!
//! Probabilistic faults are keyed on `(seed, fnv1a64(path), n)` where
//! `n` is the per-path occurrence count: the decision for the Nth
//! request to a given path is a pure function of the seed, regardless
//! of how requests to *different* paths interleave across connection
//! threads. Downtime windows instead ride a global request index —
//! flapping is a property of the whole market, not of one path — which
//! is deterministic in our harness because one crawler thread drives
//! each market per phase.
//!
//! Paths starting with `/__` (health, ops, exposition endpoints) are
//! exempt: chaos must never blind the observer.

use crate::http::Status;
use marketscope_core::hash::fnv1a64;
use marketscope_telemetry::{Counter, EventLog, LogLevel, Registry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// splitmix64 finalizer — the same mixer the tracer uses for span ids.
/// Shared with [`crate::resilience`] for deterministic retry jitter.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a 64-bit draw onto the unit interval with 53 bits of precision.
pub(crate) fn unit(draw: u64) -> f64 {
    (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Per-market fault mix: independent probabilities for each failure
/// mode, plus a periodic downtime window. All probabilities are in
/// `[0, 1]` and are evaluated in a fixed order (reset, stall, truncate,
/// 5xx) against a single draw, so they partition the unit interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability the connection is reset before any response bytes.
    pub reset: f64,
    /// Probability the response is delayed by [`stall_for`](Self::stall_for).
    pub stall: f64,
    /// Added latency when a stall fires.
    pub stall_for: Duration,
    /// Probability the response body is cut mid-stream (the head
    /// declares the full length; the connection closes early).
    pub truncate: f64,
    /// Probability the request is answered with `503`.
    pub error_5xx: f64,
    /// `retry-after` hint attached to injected 503s, if any.
    pub error_retry_after: Option<Duration>,
    /// Every `downtime_every` requests the market goes dark for
    /// [`downtime_len`](Self::downtime_len) requests (0 = never down).
    pub downtime_every: u64,
    /// Length of each downtime window, in requests.
    pub downtime_len: u64,
}

impl FaultPlan {
    /// A plan that injects nothing — the default for healthy markets.
    pub fn none() -> FaultPlan {
        FaultPlan {
            reset: 0.0,
            stall: 0.0,
            stall_for: Duration::ZERO,
            truncate: 0.0,
            error_5xx: 0.0,
            error_retry_after: None,
            downtime_every: 0,
            downtime_len: 0,
        }
    }

    /// Whether this plan can never fire.
    pub fn is_noop(&self) -> bool {
        self.reset == 0.0
            && self.stall == 0.0
            && self.truncate == 0.0
            && self.error_5xx == 0.0
            && (self.downtime_every == 0 || self.downtime_len == 0)
    }

    /// This plan with every probability multiplied by `factor` (clamped
    /// to 1.0) and downtime windows stretched by the same factor — how
    /// a "light" profile becomes a "heavy" one.
    pub fn scaled(self, factor: f64) -> FaultPlan {
        let p = |v: f64| (v * factor).clamp(0.0, 1.0);
        FaultPlan {
            reset: p(self.reset),
            stall: p(self.stall),
            truncate: p(self.truncate),
            error_5xx: p(self.error_5xx),
            downtime_len: if self.downtime_len == 0 {
                0
            } else {
                ((self.downtime_len as f64 * factor).round() as u64).max(1)
            },
            ..self
        }
    }
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

/// What the server should do with one request, decided before the
/// handler runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault: handle normally.
    Serve,
    /// Drop the connection without writing a byte.
    Reset,
    /// Sleep for the given duration, then handle normally.
    Stall(Duration),
    /// Handle normally but cut the response body mid-stream and close.
    Truncate,
    /// Skip the handler; answer with the given status (and optional
    /// `retry-after`).
    Error {
        /// The injected status (503 for fault bursts).
        status: Status,
        /// `retry-after` hint to attach, if any.
        retry_after: Option<Duration>,
    },
}

/// Telemetry for injected faults:
/// `marketscope_net_faults_injected_total{fault=...}` plus any extra
/// labels (the fleet adds `market`).
#[derive(Clone)]
pub struct FaultMetrics {
    reset: Arc<Counter>,
    stall: Arc<Counter>,
    truncate: Arc<Counter>,
    error: Arc<Counter>,
    downtime: Arc<Counter>,
}

impl FaultMetrics {
    /// Create the fault counters in `registry`, tagged with `labels`.
    pub fn register(registry: &Registry, labels: &[(&str, &str)]) -> FaultMetrics {
        let counter = |fault: &str| {
            let mut all = vec![("fault", fault)];
            all.extend_from_slice(labels);
            registry.counter("marketscope_net_faults_injected_total", &all)
        };
        FaultMetrics {
            reset: counter("reset"),
            stall: counter("stall"),
            truncate: counter("truncate"),
            error: counter("error"),
            downtime: counter("downtime"),
        }
    }

    fn note(&self, action: FaultAction, in_downtime: bool) {
        match action {
            FaultAction::Serve => {}
            FaultAction::Reset if in_downtime => self.downtime.inc(),
            FaultAction::Reset => self.reset.inc(),
            FaultAction::Stall(_) => self.stall.inc(),
            FaultAction::Truncate => self.truncate.inc(),
            FaultAction::Error { .. } => self.error.inc(),
        }
    }
}

/// Draws per-request [`FaultAction`]s from a [`FaultPlan`] and a seed.
/// Shared by all connection threads of one server.
pub struct FaultInjector {
    seed: u64,
    plan: FaultPlan,
    /// Per-path occurrence counts, keyed by `fnv1a64(path)`. Off the
    /// hot path's critical section: one short lock per request.
    counts: Mutex<HashMap<u64, u64>>,
    /// Global request index driving downtime windows.
    index: AtomicU64,
    /// Total faults injected (all kinds).
    injected: AtomicU64,
    metrics: Option<FaultMetrics>,
    /// Structured event log plus the scope tag (`market` label) stamped
    /// on every injection event.
    log: Option<(Arc<EventLog>, String)>,
}

impl FaultInjector {
    /// An injector with no telemetry.
    pub fn new(seed: u64, plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            seed,
            plan,
            counts: Mutex::new(HashMap::new()),
            index: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            metrics: None,
            log: None,
        }
    }

    /// Record every injected fault to `log`, tagged with `scope` as the
    /// `market` field (events are exempt paths' only blind spot: `/__`
    /// requests never fault, so they never log).
    pub fn with_log(mut self, log: Arc<EventLog>, scope: &str) -> FaultInjector {
        self.log = Some((log, scope.to_owned()));
        self
    }

    /// An injector that counts what it injects into `registry`.
    pub fn instrumented(
        seed: u64,
        plan: FaultPlan,
        registry: &Registry,
        labels: &[(&str, &str)],
    ) -> FaultInjector {
        FaultInjector {
            metrics: Some(FaultMetrics::register(registry, labels)),
            ..FaultInjector::new(seed, plan)
        }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total faults injected so far (all kinds).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Decide the fate of one request. Ops/health paths (`/__` prefix)
    /// are always served and consume neither randomness nor the
    /// downtime index.
    pub fn decide(&self, path: &str) -> FaultAction {
        if self.plan.is_noop() || path.starts_with("/__") {
            return FaultAction::Serve;
        }
        // Downtime windows: a property of the whole market.
        let mut in_downtime = false;
        if self.plan.downtime_every > 0 && self.plan.downtime_len > 0 {
            let i = self.index.fetch_add(1, Ordering::Relaxed);
            in_downtime = i % self.plan.downtime_every < self.plan.downtime_len;
        }
        let action = if in_downtime {
            FaultAction::Reset
        } else {
            self.draw(path)
        };
        if action != FaultAction::Serve {
            self.injected.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.note(action, in_downtime);
            }
            if let Some((log, scope)) = &self.log {
                let kind = match action {
                    FaultAction::Serve => "serve",
                    FaultAction::Reset if in_downtime => "downtime",
                    FaultAction::Reset => "reset",
                    FaultAction::Stall(_) => "stall",
                    FaultAction::Truncate => "truncate",
                    FaultAction::Error { .. } => "error",
                };
                log.record(
                    LogLevel::Warn,
                    "net.fault",
                    "fault injected",
                    &[("market", scope), ("fault", kind), ("path", path)],
                );
            }
        }
        action
    }

    /// Probabilistic fault for the Nth request to `path`: a pure
    /// function of `(seed, path, N)`.
    fn draw(&self, path: &str) -> FaultAction {
        let path_hash = fnv1a64(path.as_bytes());
        let n = {
            let mut counts = self.counts.lock();
            let slot = counts.entry(path_hash).or_insert(0);
            let n = *slot;
            *slot += 1;
            n
        };
        let draw = unit(splitmix64(
            self.seed ^ path_hash ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ));
        let p = &self.plan;
        let mut edge = p.reset;
        if draw < edge {
            return FaultAction::Reset;
        }
        edge += p.stall;
        if draw < edge {
            return FaultAction::Stall(p.stall_for);
        }
        edge += p.truncate;
        if draw < edge {
            return FaultAction::Truncate;
        }
        edge += p.error_5xx;
        if draw < edge {
            return FaultAction::Error {
                status: Status::ServiceUnavailable,
                retry_after: p.error_retry_after,
            };
        }
        FaultAction::Serve
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_plan() -> FaultPlan {
        FaultPlan {
            reset: 0.1,
            stall: 0.1,
            stall_for: Duration::from_millis(5),
            truncate: 0.1,
            error_5xx: 0.1,
            error_retry_after: Some(Duration::from_millis(20)),
            downtime_every: 0,
            downtime_len: 0,
        }
    }

    #[test]
    fn per_path_streams_replay_regardless_of_interleaving() {
        let a = FaultInjector::new(7, mixed_plan());
        let b = FaultInjector::new(7, mixed_plan());
        // Injector `a` sees /x and /y interleaved; `b` sees all of /x
        // then all of /y. Per-path decision sequences must agree.
        let mut ax = Vec::new();
        let mut ay = Vec::new();
        for _ in 0..64 {
            ax.push(a.decide("/x"));
            ay.push(a.decide("/y"));
        }
        let bx: Vec<_> = (0..64).map(|_| b.decide("/x")).collect();
        let by: Vec<_> = (0..64).map(|_| b.decide("/y")).collect();
        assert_eq!(ax, bx);
        assert_eq!(ay, by);
        // Distinct paths and distinct seeds see distinct streams.
        assert_ne!(ax, ay);
        let c = FaultInjector::new(8, mixed_plan());
        let cx: Vec<_> = (0..64).map(|_| c.decide("/x")).collect();
        assert_ne!(ax, cx);
        // With p = 0.4 total over 128 draws, some fault fired.
        assert!(a.injected() > 0);
    }

    #[test]
    fn downtime_windows_have_the_declared_shape() {
        let plan = FaultPlan {
            downtime_every: 10,
            downtime_len: 3,
            ..FaultPlan::none()
        };
        let inj = FaultInjector::new(1, plan);
        for cycle in 0..3 {
            for i in 0..10 {
                let action = inj.decide("/anything");
                if i < 3 {
                    assert_eq!(action, FaultAction::Reset, "cycle {cycle} req {i}");
                } else {
                    assert_eq!(action, FaultAction::Serve, "cycle {cycle} req {i}");
                }
            }
        }
        assert_eq!(inj.injected(), 9);
    }

    #[test]
    fn ops_paths_are_exempt_and_consume_no_state() {
        let plan = FaultPlan {
            reset: 1.0,
            downtime_every: 2,
            downtime_len: 2,
            ..FaultPlan::none()
        };
        let inj = FaultInjector::new(3, plan);
        for _ in 0..32 {
            assert_eq!(inj.decide("/__health"), FaultAction::Serve);
        }
        assert_eq!(inj.injected(), 0);
        assert_eq!(inj.index.load(Ordering::Relaxed), 0);
        // Real traffic still faults.
        assert_eq!(inj.decide("/app/x"), FaultAction::Reset);
    }

    #[test]
    fn certain_probabilities_always_fire_in_partition_order() {
        let only_error = FaultPlan {
            error_5xx: 1.0,
            error_retry_after: Some(Duration::from_millis(25)),
            ..FaultPlan::none()
        };
        let inj = FaultInjector::new(9, only_error);
        for _ in 0..16 {
            assert_eq!(
                inj.decide("/a"),
                FaultAction::Error {
                    status: Status::ServiceUnavailable,
                    retry_after: Some(Duration::from_millis(25)),
                }
            );
        }
        // reset=1.0 shadows everything later in the partition.
        let reset_wins = FaultPlan {
            reset: 1.0,
            error_5xx: 1.0,
            ..FaultPlan::none()
        };
        let inj = FaultInjector::new(9, reset_wins);
        assert_eq!(inj.decide("/a"), FaultAction::Reset);
    }

    #[test]
    fn noop_and_scaling() {
        assert!(FaultPlan::none().is_noop());
        assert!(FaultPlan {
            downtime_every: 5,
            downtime_len: 0,
            ..FaultPlan::none()
        }
        .is_noop());
        let scaled = mixed_plan().scaled(3.0);
        assert!((scaled.reset - 0.3).abs() < 1e-9);
        assert!((scaled.error_5xx - 0.3).abs() < 1e-9);
        let capped = mixed_plan().scaled(100.0);
        assert_eq!(capped.reset, 1.0);
        // Downtime windows stretch but never vanish under scaling.
        let flappy = FaultPlan {
            downtime_every: 40,
            downtime_len: 8,
            ..FaultPlan::none()
        };
        assert_eq!(flappy.scaled(0.5).downtime_len, 4);
        assert_eq!(flappy.scaled(0.01).downtime_len, 1);
        assert_eq!(FaultPlan::none().scaled(2.0).downtime_len, 0);
    }

    #[test]
    fn metrics_count_by_kind() {
        let registry = Registry::new();
        let plan = FaultPlan {
            error_5xx: 1.0,
            ..FaultPlan::none()
        };
        let inj = FaultInjector::instrumented(1, plan, &registry, &[("market", "t")]);
        inj.decide("/a");
        inj.decide("/a");
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value(
                "marketscope_net_faults_injected_total",
                &[("fault", "error"), ("market", "t")]
            ),
            Some(2)
        );
        // Downtime resets are counted under their own kind.
        let down = FaultPlan {
            downtime_every: 1,
            downtime_len: 1,
            ..FaultPlan::none()
        };
        let inj = FaultInjector::instrumented(1, down, &registry, &[("market", "d")]);
        inj.decide("/a");
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value(
                "marketscope_net_faults_injected_total",
                &[("fault", "downtime"), ("market", "d")]
            ),
            Some(1)
        );
    }
}
