//! Token-bucket rate limiting.
//!
//! Used on both sides of the simulation: Google Play's endpoint throttles
//! crawlers (the reason the paper could only fetch a 287,110-APK random
//! sample directly) and the crawler's politeness policy throttles itself
//! per market. The bucket takes an explicit clock so tests and the
//! deterministic pipeline never sleep.

use marketscope_telemetry::{Counter, Histogram, Registry};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rate-limiter instruments: grants, rejections, and (for politeness
/// buckets) how long callers actually waited for a token.
#[derive(Debug)]
pub struct RateLimitMetrics {
    grants: Arc<Counter>,
    rejections: Arc<Counter>,
    wait_nanos: Arc<Histogram>,
}

impl RateLimitMetrics {
    /// Register the rate-limit instruments in `registry` under the given
    /// base labels. Metric names:
    ///
    /// * `marketscope_net_ratelimit_grants_total`
    /// * `marketscope_net_ratelimit_rejections_total`
    /// * `marketscope_net_ratelimit_wait_nanos`
    pub fn register(registry: &Registry, labels: &[(&str, &str)]) -> RateLimitMetrics {
        RateLimitMetrics {
            grants: registry.counter("marketscope_net_ratelimit_grants_total", labels),
            rejections: registry.counter("marketscope_net_ratelimit_rejections_total", labels),
            wait_nanos: registry.histogram("marketscope_net_ratelimit_wait_nanos", labels),
        }
    }
}

/// A thread-safe token bucket.
///
/// `capacity` tokens maximum, refilled continuously at `rate_per_sec`.
/// Callers either [`TokenBucket::try_acquire`] (non-blocking, returns
/// whether a token was granted) or ask for the [`TokenBucket::wait_hint`]
/// to back off.
#[derive(Debug)]
pub struct TokenBucket {
    inner: Mutex<BucketState>,
    capacity: f64,
    rate_per_sec: f64,
    metrics: Option<RateLimitMetrics>,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// A bucket holding up to `capacity` tokens, refilling at
    /// `rate_per_sec`. Starts full.
    pub fn new(capacity: u32, rate_per_sec: f64) -> Self {
        assert!(capacity > 0, "zero-capacity bucket");
        assert!(rate_per_sec > 0.0, "non-positive refill rate");
        TokenBucket {
            inner: Mutex::new(BucketState {
                tokens: capacity as f64,
                last_refill: Instant::now(),
            }),
            capacity: capacity as f64,
            rate_per_sec,
            metrics: None,
        }
    }

    /// A bucket whose grants, rejections and caller waits are counted in
    /// a telemetry registry.
    pub fn instrumented(capacity: u32, rate_per_sec: f64, metrics: RateLimitMetrics) -> Self {
        let mut bucket = TokenBucket::new(capacity, rate_per_sec);
        bucket.metrics = Some(metrics);
        bucket
    }

    /// Try to take one token now.
    pub fn try_acquire(&self) -> bool {
        self.try_acquire_at(Instant::now())
    }

    /// Try to take one token at an explicit instant (testable clock).
    pub fn try_acquire_at(&self, now: Instant) -> bool {
        let granted = {
            let mut st = self.inner.lock();
            self.refill(&mut st, now);
            if st.tokens >= 1.0 {
                st.tokens -= 1.0;
                true
            } else {
                false
            }
        };
        if let Some(m) = &self.metrics {
            if granted {
                m.grants.inc();
            } else {
                m.rejections.inc();
            }
        }
        granted
    }

    /// Record how long a caller actually blocked waiting for a token
    /// (no-op on uninstrumented buckets). The bucket itself never sleeps,
    /// so the polite-waiting caller reports its measured wait here.
    pub fn note_wait(&self, waited: Duration) {
        if let Some(m) = &self.metrics {
            m.wait_nanos.record_duration(waited);
        }
    }

    /// How long until one token will be available (zero if one is ready).
    pub fn wait_hint(&self) -> Duration {
        self.wait_hint_at(Instant::now())
    }

    /// [`TokenBucket::wait_hint`] with an explicit clock.
    pub fn wait_hint_at(&self, now: Instant) -> Duration {
        let mut st = self.inner.lock();
        self.refill(&mut st, now);
        if st.tokens >= 1.0 {
            Duration::ZERO
        } else {
            let missing = 1.0 - st.tokens;
            Duration::from_secs_f64(missing / self.rate_per_sec)
        }
    }

    fn refill(&self, st: &mut BucketState, now: Instant) {
        let elapsed = now.saturating_duration_since(st.last_refill);
        st.last_refill = now;
        st.tokens = (st.tokens + elapsed.as_secs_f64() * self.rate_per_sec).min(self.capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_up_to_capacity_then_deny() {
        let b = TokenBucket::new(3, 1.0);
        let t0 = Instant::now();
        assert!(b.try_acquire_at(t0));
        assert!(b.try_acquire_at(t0));
        assert!(b.try_acquire_at(t0));
        assert!(!b.try_acquire_at(t0));
    }

    #[test]
    fn refills_over_time() {
        let b = TokenBucket::new(1, 10.0); // one token per 100ms
        let t0 = Instant::now();
        assert!(b.try_acquire_at(t0));
        assert!(!b.try_acquire_at(t0));
        assert!(b.try_acquire_at(t0 + Duration::from_millis(150)));
    }

    #[test]
    fn refill_caps_at_capacity() {
        let b = TokenBucket::new(2, 100.0);
        let t0 = Instant::now();
        assert!(b.try_acquire_at(t0));
        let later = t0 + Duration::from_secs(60);
        assert!(b.try_acquire_at(later));
        assert!(b.try_acquire_at(later));
        assert!(!b.try_acquire_at(later), "must not exceed capacity");
    }

    #[test]
    fn wait_hint_matches_refill_rate() {
        let b = TokenBucket::new(1, 2.0); // 500ms per token
        let t0 = Instant::now();
        assert!(b.try_acquire_at(t0));
        let hint = b.wait_hint_at(t0);
        assert!(hint > Duration::from_millis(400) && hint <= Duration::from_millis(510));
        assert_eq!(b.wait_hint_at(t0 + Duration::from_secs(1)), Duration::ZERO);
    }

    #[test]
    fn time_going_backwards_is_tolerated() {
        let b = TokenBucket::new(1, 1.0);
        let t0 = Instant::now();
        assert!(b.try_acquire_at(t0 + Duration::from_secs(5)));
        // An earlier instant after a later one must not panic or mint tokens.
        assert!(!b.try_acquire_at(t0));
    }

    #[test]
    fn instrumented_bucket_counts_grants_rejections_and_waits() {
        use marketscope_telemetry::Registry;
        let registry = Registry::new();
        let b = TokenBucket::instrumented(
            2,
            1.0,
            RateLimitMetrics::register(&registry, &[("market", "gp")]),
        );
        let t0 = Instant::now();
        assert!(b.try_acquire_at(t0));
        assert!(b.try_acquire_at(t0));
        assert!(!b.try_acquire_at(t0));
        b.note_wait(Duration::from_millis(40));
        let snap = registry.snapshot();
        let labels = [("market", "gp")];
        assert_eq!(
            snap.counter_value("marketscope_net_ratelimit_grants_total", &labels),
            Some(2)
        );
        assert_eq!(
            snap.counter_value("marketscope_net_ratelimit_rejections_total", &labels),
            Some(1)
        );
        let waits = snap
            .histogram("marketscope_net_ratelimit_wait_nanos", &labels)
            .unwrap();
        assert_eq!(waits.count(), 1);
        assert_eq!(waits.sum, 40_000_000);
    }

    #[test]
    fn concurrent_acquisition_never_overgrants() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let b = Arc::new(TokenBucket::new(100, 0.000_001));
        let granted = Arc::new(AtomicU32::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let b = Arc::clone(&b);
                let granted = Arc::clone(&granted);
                s.spawn(move || {
                    for _ in 0..50 {
                        if b.try_acquire() {
                            granted.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(granted.load(Ordering::SeqCst), 100);
    }
}
