//! Path routing with named parameters.
//!
//! Market servers register patterns like `/app/{pkg}` or
//! `/apk/{pkg}/{version}`; the router matches a request path, binds the
//! parameters, and dispatches to the registered handler. Longest-literal
//! patterns win ties, so `/index/all` beats `/index/{page}`.

use crate::http::{Request, Response, Status};
use crate::server::Handler;
use std::collections::BTreeMap;

/// The parameters bound by a pattern match.
pub type Params = BTreeMap<String, String>;

/// A routed handler.
type RouteFn = Box<dyn Fn(&Request, &Params) -> Response + Send + Sync>;

struct Route {
    method: crate::http::Method,
    segments: Vec<Segment>,
    handler: RouteFn,
}

enum Segment {
    Literal(String),
    Param(String),
}

/// A method+pattern router implementing [`Handler`].
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl Router {
    /// Empty router (answers 404 to everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a GET route. Pattern segments wrapped in `{}` bind
    /// parameters; all others match literally.
    pub fn get(
        mut self,
        pattern: &str,
        f: impl Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.routes.push(Route {
            method: crate::http::Method::Get,
            segments: parse_pattern(pattern),
            handler: Box::new(f),
        });
        self
    }

    /// Register a POST route.
    pub fn post(
        mut self,
        pattern: &str,
        f: impl Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.routes.push(Route {
            method: crate::http::Method::Post,
            segments: parse_pattern(pattern),
            handler: Box::new(f),
        });
        self
    }

    /// Match a path against the routing table.
    fn resolve(&self, method: crate::http::Method, path: &str) -> Option<(&Route, Params)> {
        let segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        let mut best: Option<(&Route, Params, usize)> = None;
        for route in &self.routes {
            if route.method != method || route.segments.len() != segs.len() {
                continue;
            }
            let mut params = Params::new();
            let mut literals = 0usize;
            let mut ok = true;
            for (pat, seg) in route.segments.iter().zip(&segs) {
                match pat {
                    Segment::Literal(l) => {
                        if l != seg {
                            ok = false;
                            break;
                        }
                        literals += 1;
                    }
                    Segment::Param(name) => {
                        params.insert(name.clone(), crate::http::url_decode(seg));
                    }
                }
            }
            let beats_best = match &best {
                Some((_, _, l)) => literals > *l,
                None => true,
            };
            if ok && beats_best {
                best = Some((route, params, literals));
            }
        }
        best.map(|(r, p, _)| (r, p))
    }
}

fn parse_pattern(pattern: &str) -> Vec<Segment> {
    pattern
        .split('/')
        .filter(|s| !s.is_empty())
        .map(|s| {
            if let Some(name) = s.strip_prefix('{').and_then(|s| s.strip_suffix('}')) {
                Segment::Param(name.to_owned())
            } else {
                Segment::Literal(s.to_owned())
            }
        })
        .collect()
}

impl Handler for Router {
    fn handle(&self, req: &Request) -> Response {
        match self.resolve(req.method, &req.path) {
            Some((route, params)) => (route.handler)(req, &params),
            None => Response::status(Status::NotFound),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Method, Request};

    fn req(path: &str) -> Request {
        Request::get(path)
    }

    fn body(r: Response) -> String {
        String::from_utf8(r.body).unwrap()
    }

    fn router() -> Router {
        Router::new()
            .get("/index", |_, _| {
                Response::ok("text/plain", b"index".to_vec())
            })
            .get("/app/{pkg}", |_, p| {
                Response::ok("text/plain", format!("app:{}", p["pkg"]).into_bytes())
            })
            .get("/apk/{pkg}/{version}", |_, p| {
                Response::ok(
                    "text/plain",
                    format!("apk:{}:{}", p["pkg"], p["version"]).into_bytes(),
                )
            })
            .get("/app/featured", |_, _| {
                Response::ok("text/plain", b"featured".to_vec())
            })
            .post("/upload", |r, _| {
                Response::ok(
                    "text/plain",
                    format!("got {} bytes", r.body.len()).into_bytes(),
                )
            })
    }

    #[test]
    fn literal_and_param_matching() {
        let r = router();
        assert_eq!(body(r.handle(&req("/index"))), "index");
        assert_eq!(body(r.handle(&req("/app/com.foo.bar"))), "app:com.foo.bar");
        assert_eq!(body(r.handle(&req("/apk/com.x.y/12"))), "apk:com.x.y:12");
    }

    #[test]
    fn literal_beats_param() {
        let r = router();
        assert_eq!(body(r.handle(&req("/app/featured"))), "featured");
    }

    #[test]
    fn unmatched_is_404() {
        let r = router();
        assert_eq!(r.handle(&req("/nope")).status, Status::NotFound);
        assert_eq!(r.handle(&req("/app")).status, Status::NotFound);
        assert_eq!(r.handle(&req("/apk/only.one")).status, Status::NotFound);
    }

    #[test]
    fn method_mismatch_is_404() {
        let r = router();
        let mut post = req("/index");
        post.method = Method::Post;
        assert_eq!(r.handle(&post).status, Status::NotFound);
        let mut upload = req("/upload");
        upload.method = Method::Post;
        upload.body = vec![0; 5];
        assert_eq!(body(r.handle(&upload)), "got 5 bytes");
    }

    #[test]
    fn params_are_url_decoded() {
        let r = router();
        assert_eq!(body(r.handle(&req("/app/com%2Efoo"))), "app:com.foo");
    }

    #[test]
    fn trailing_slash_is_tolerated() {
        let r = router();
        assert_eq!(body(r.handle(&req("/index/"))), "index");
    }
}
