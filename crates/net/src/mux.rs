//! The multiplexed nonblocking client engine: one driver thread, one
//! `poll(2)` readiness loop, hundreds of outstanding requests.
//!
//! The blocking [`HttpClient`](crate::client::HttpClient) spends one OS
//! thread per in-flight request, so crawl fan-out is capped by the
//! thread budget rather than the hardware — the client-side mirror of
//! the problem the server-side [`reactor`](crate::reactor) solved. This
//! module is the client-side answer: a submit/complete surface where
//! callers enqueue requests ([`MuxClient::submit`]) and later block on
//! the outcome ([`MuxClient::wait`]), while a single driver thread owns
//! every connection as a nonblocking state machine (`Connecting →
//! Sending → Receiving`, keep-alive reuse via the same per-host pool
//! semantics the blocking client had) and multiplexes them over the
//! [`reactor::sys`](crate::reactor::sys) poll shim.
//!
//! Two submission flavors exist:
//!
//! * **Raw** — one wire request with the blocking client's transparent
//!   connect-level retry semantics. `HttpClient::request` is a thin
//!   submit-then-wait wrapper over this, byte-for-byte equivalent to
//!   the old thread-per-request implementation (same attempt spans,
//!   same metrics, same error classification).
//! * **Managed** — the full `HttpClient::get` policy executed inside
//!   the driver: circuit-breaker admission at (re)activation, status
//!   decoding through the shared [`decode_response`] seam, retry
//!   backoff as *timed resubmission* (the submission parks on a timer
//!   instead of a thread sleeping), and terminal breaker accounting.
//!   Batch surfaces (`HttpClient::get_many`/`get_json_many`, the
//!   crawler's `fetch_many`, the loadgen `fanout` profile) ride this.
//!
//! Ordering: a submission may carry a *lane* key. The driver runs at
//! most one submission per lane at a time, FIFO — so a per-market batch
//! reaches that market's server in exactly the order a sequential
//! blocking loop would have produced, which keeps seeded fault windows
//! (driven by per-server request indices) bit-identical while
//! concurrency comes from *across* lanes.

use crate::client::{ClientConfig, ClientMetrics};
use crate::error::NetError;
use crate::http::{Request, Response, Status};
use crate::reactor::sys;
use crate::resilience::{BreakerSet, ResilienceMetrics, RetryPolicy};
use marketscope_core::hash::fnv1a64;
use marketscope_core::json::Json;
use marketscope_telemetry::{trace, SpanContext, TraceSpan, Tracer};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Read chunk size while draining a readable socket.
const READ_CHUNK: usize = 16 * 1024;

/// How a managed submission's 200 body is decoded before completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeMode {
    /// Hand the response back as-is.
    Response,
    /// Parse the body as JSON (`HttpClient::get_json` semantics).
    Json,
}

/// A completed submission's payload, matching its [`DecodeMode`].
#[derive(Debug)]
pub enum Payload {
    /// An undecoded response.
    Resp(Response),
    /// A decoded JSON document.
    Doc(Json),
}

/// Decode a 200 response per `mode` — the one response-decode seam both
/// the blocking `get`/`get_json` wrappers and the driver's managed path
/// share, so breaker accounting cannot diverge between them.
pub(crate) fn decode_response(resp: Response, mode: DecodeMode) -> Result<Payload, NetError> {
    match mode {
        DecodeMode::Response => Ok(Payload::Resp(resp)),
        DecodeMode::Json => {
            let text = std::str::from_utf8(&resp.body)
                .map_err(|_| NetError::Protocol("response body not utf-8"))?;
            let doc = Json::parse(text)
                .map_err(|_| NetError::Protocol("response body not valid json"))?;
            Ok(Payload::Doc(doc))
        }
    }
}

/// One-shot completion cell shared between a [`Ticket`] and the driver.
struct TicketCell {
    slot: Mutex<Option<Result<Payload, NetError>>>,
    ready: Condvar,
}

impl TicketCell {
    fn new() -> Arc<TicketCell> {
        Arc::new(TicketCell {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn complete(&self, result: Result<Payload, NetError>) {
        let mut slot = self.slot.lock();
        if slot.is_none() {
            *slot = Some(result);
        }
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Payload, NetError> {
        let mut slot = self.slot.lock();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            self.ready.wait(&mut slot);
        }
    }
}

/// Handle to one outstanding submission. Redeem it with
/// [`MuxClient::wait`] (or internally, [`MuxClient::wait_payload`]).
pub struct Ticket {
    cell: Arc<TicketCell>,
}

/// The policy a submission runs under inside the driver.
enum Policy {
    /// One wire request, transparent connect-level retries only.
    Raw,
    /// Full `get` semantics: breaker admission, status/decode seam,
    /// retry policy as timed resubmission, terminal breaker accounting.
    Managed {
        /// Deterministic backoff jitter key (`fnv1a64` of the path).
        key: u64,
        decode: DecodeMode,
    },
}

/// One queued unit of work.
struct Submission {
    addr: SocketAddr,
    req: Request,
    parent: Option<SpanContext>,
    lane: Option<u64>,
    policy: Policy,
    cell: Arc<TicketCell>,
}

/// A submission waiting for a driver slot, carrying its resilient-retry
/// progress (zero for fresh submissions, advanced for unparked ones).
struct PendingItem {
    sub: Submission,
    cycles: u32,
    slept: Duration,
    /// Whether this item already holds its lane (an unparked retry or a
    /// lane-queue promotion) and must not be re-gated on it.
    owns_lane: bool,
}

/// An idle pooled connection. `residue` holds bytes read past the last
/// response; a nonempty residue poisons the connection exactly like a
/// nonempty `BufReader` buffer did in the blocking client.
struct IdleConn {
    stream: TcpStream,
    residue: Vec<u8>,
}

/// Per-connection nonblocking state machine.
enum CState {
    /// `connect(2)` returned `EINPROGRESS`; waiting for `POLLOUT`.
    /// Carries the serialized request to send once established.
    Connecting { buf: Vec<u8> },
    /// Writing the serialized request.
    Sending { buf: Vec<u8>, off: usize },
    /// Accumulating response bytes until `Response::parse_partial`
    /// yields a full message.
    Receiving { buf: Vec<u8> },
}

struct Conn {
    stream: TcpStream,
    state: CState,
    deadline: Instant,
}

/// A submission actively on the wire.
struct Active {
    sub: Submission,
    /// Transparent connect-level attempt counter (the blocking client's
    /// `ClientConfig::retries` loop).
    attempt: u32,
    /// Managed resilient-retry cycle counter (the blocking `get` loop).
    cycles: u32,
    /// Managed cumulative backoff already paid.
    slept: Duration,
    /// Wire-cycle start, for the request-latency histogram.
    started: Instant,
    request_span: TraceSpan,
    attempt_span: TraceSpan,
    conn: Option<Conn>,
}

/// A managed submission waiting out a retry backoff on the driver's
/// timer instead of a sleeping thread.
struct Parked {
    sub: Submission,
    cycles: u32,
    slept: Duration,
    until: Instant,
}

struct Lane {
    queue: VecDeque<PendingItem>,
    busy: bool,
}

/// State shared between the caller-facing handle and the driver thread.
struct Shared {
    config: ClientConfig,
    tracer: Option<Arc<Tracer>>,
    metrics: Option<ClientMetrics>,
    retry: Option<RetryPolicy>,
    breakers: Option<Arc<BreakerSet>>,
    resilience: Option<ResilienceMetrics>,
    queue: Mutex<Vec<Submission>>,
    pool: Mutex<HashMap<SocketAddr, Vec<IdleConn>>>,
    shutdown: AtomicBool,
    /// Write end of the driver's wake pipe, present once the driver has
    /// been (lazily) spawned.
    wake: Mutex<Option<UnixStream>>,
}

impl Shared {
    fn wake_driver(&self) {
        if let Some(tx) = &*self.wake.lock() {
            // A full pipe means the driver is already due to wake.
            let _ = (&*tx).write(&[1]);
        }
    }
}

/// The multiplexed client: a submit/complete API over one driver thread.
///
/// Construction goes through [`MuxClient::new`] (or, for most users,
/// [`HttpClient::builder`](crate::client::HttpClient::builder), which
/// owns one of these internally). The driver thread is spawned lazily on
/// the first submission and joined on drop; outstanding tickets at
/// shutdown complete with an I/O error rather than hanging.
pub struct MuxClient {
    shared: Arc<Shared>,
    driver: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl MuxClient {
    /// A mux engine with the given socket configuration and (optional)
    /// telemetry and resilience stack. The resilience pieces are only
    /// consulted by *managed* submissions; raw submissions carry the
    /// blocking `request` semantics (transparent connect retries only).
    pub fn new(
        config: ClientConfig,
        tracer: Option<Arc<Tracer>>,
        metrics: Option<ClientMetrics>,
        retry: Option<RetryPolicy>,
        breakers: Option<Arc<BreakerSet>>,
        resilience: Option<ResilienceMetrics>,
    ) -> MuxClient {
        MuxClient {
            shared: Arc::new(Shared {
                config,
                tracer,
                metrics,
                retry,
                breakers,
                resilience,
                queue: Mutex::new(Vec::new()),
                pool: Mutex::new(HashMap::new()),
                shutdown: AtomicBool::new(false),
                wake: Mutex::new(None),
            }),
            driver: Mutex::new(None),
        }
    }

    /// Enqueue one raw request and return its ticket. The request is
    /// parented under whatever sampled span is active on *this* thread,
    /// exactly as a blocking `HttpClient::request` call would be.
    pub fn submit(&self, addr: SocketAddr, req: Request) -> Ticket {
        self.submit_spec(Submission {
            addr,
            req,
            parent: trace::current(),
            lane: None,
            policy: Policy::Raw,
            cell: TicketCell::new(),
        })
    }

    /// Enqueue a batch of raw requests, returning one ticket per entry.
    pub fn submit_all(
        &self,
        batch: impl IntoIterator<Item = (SocketAddr, Request)>,
    ) -> Vec<Ticket> {
        batch
            .into_iter()
            .map(|(addr, req)| self.submit(addr, req))
            .collect()
    }

    /// Enqueue one managed GET: full retry/breaker/trace policy executed
    /// driver-side, body decoded per `mode`. `parent` is the span the
    /// request spans hang under (pass [`trace::current()`] for the
    /// calling thread's context); `lane` serializes submissions sharing
    /// a key so a batch reaches its host in submission order.
    pub(crate) fn submit_managed(
        &self,
        addr: SocketAddr,
        path_and_query: &str,
        mode: DecodeMode,
        parent: Option<SpanContext>,
        lane: Option<u64>,
    ) -> Ticket {
        self.submit_spec(Submission {
            addr,
            req: Request::get(path_and_query),
            parent,
            lane,
            policy: Policy::Managed {
                key: fnv1a64(path_and_query.as_bytes()),
                decode: mode,
            },
            cell: TicketCell::new(),
        })
    }

    /// Block until the submission completes and return its response.
    pub fn wait(&self, ticket: Ticket) -> Result<Response, NetError> {
        match ticket.cell.wait() {
            Ok(Payload::Resp(resp)) => Ok(resp),
            Ok(Payload::Doc(_)) => Err(NetError::Protocol("ticket decoded to json")),
            Err(e) => Err(e),
        }
    }

    /// Block on every ticket in order and collect the outcomes.
    pub fn drain(&self, tickets: Vec<Ticket>) -> Vec<Result<Response, NetError>> {
        tickets.into_iter().map(|t| self.wait(t)).collect()
    }

    /// Block until the submission completes and return its raw payload
    /// (managed tickets may carry decoded JSON).
    pub(crate) fn wait_payload(&self, ticket: Ticket) -> Result<Payload, NetError> {
        ticket.cell.wait()
    }

    /// Number of idle pooled connections (for tests/metrics).
    pub fn idle_connections(&self) -> usize {
        self.shared.pool.lock().values().map(Vec::len).sum()
    }

    fn submit_spec(&self, sub: Submission) -> Ticket {
        let ticket = Ticket {
            cell: Arc::clone(&sub.cell),
        };
        if let Err(e) = self.ensure_driver() {
            sub.cell.complete(Err(NetError::Io(e)));
            return ticket;
        }
        self.shared.queue.lock().push(sub);
        self.shared.wake_driver();
        ticket
    }

    /// Spawn the driver thread on first use. Lazy so that clients which
    /// never issue a request (and tests that meter process thread
    /// counts around other components) cost no thread.
    fn ensure_driver(&self) -> io::Result<()> {
        let mut driver = self.driver.lock();
        if driver.is_some() {
            return Ok(());
        }
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        *self.shared.wake.lock() = Some(tx);
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name("mux-driver".to_owned())
            .spawn(move || Driver::new(shared, rx).run())?;
        *driver = Some(handle);
        Ok(())
    }
}

impl Drop for MuxClient {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake_driver();
        if let Some(handle) = self.driver.lock().take() {
            let _ = handle.join();
        }
    }
}

/// The driver: owns every connection and runs the readiness loop.
struct Driver {
    shared: Arc<Shared>,
    wake: UnixStream,
    pending: VecDeque<PendingItem>,
    lanes: HashMap<u64, Lane>,
    active: Vec<Active>,
    parked: Vec<Parked>,
}

impl Driver {
    fn new(shared: Arc<Shared>, wake: UnixStream) -> Driver {
        Driver {
            shared,
            wake,
            pending: VecDeque::new(),
            lanes: HashMap::new(),
            active: Vec::new(),
            parked: Vec::new(),
        }
    }

    fn run(mut self) {
        loop {
            self.drain_queue();
            self.unpark_expired();
            self.admit();
            if self.shared.shutdown.load(Ordering::SeqCst) {
                self.abort_outstanding();
                return;
            }
            let timeout = self.poll_timeout();

            // Rebuild the poll set each round: entry 0 is the wake pipe,
            // the rest map 1:1 onto active connections.
            let mut fds = vec![sys::PollFd::new(self.wake.as_raw_fd(), sys::POLLIN)];
            for act in &self.active {
                if let Some(conn) = &act.conn {
                    let events = match conn.state {
                        CState::Connecting { .. } | CState::Sending { .. } => sys::POLLOUT,
                        CState::Receiving { .. } => sys::POLLIN,
                    };
                    fds.push(sys::PollFd::new(conn.stream.as_raw_fd(), events));
                }
            }
            if sys::poll_fds(&mut fds, timeout).is_err() {
                // EINTR is retried inside poll_fds; anything else here is
                // unrecoverable for the whole loop — fail everything out
                // rather than spin.
                self.shared.shutdown.store(true, Ordering::SeqCst);
                continue;
            }
            if fds[0].readable() {
                let mut sink = [0u8; 64];
                while matches!((&self.wake).read(&mut sink), Ok(n) if n > 0) {}
            }

            let now = Instant::now();
            let ready: Vec<bool> = fds[1..].iter().map(|fd| fd.revents() != 0).collect();
            let actives = std::mem::take(&mut self.active);
            for (i, act) in actives.into_iter().enumerate() {
                if ready.get(i).copied().unwrap_or(false) {
                    self.drive(act);
                } else if act.conn.as_ref().is_some_and(|c| now >= c.deadline) {
                    self.expire(act);
                } else {
                    self.active.push(act);
                }
            }
        }
    }

    /// Move freshly submitted work into the lane/pending structure.
    fn drain_queue(&mut self) {
        let subs = std::mem::take(&mut *self.shared.queue.lock());
        for sub in subs {
            let item = PendingItem {
                sub,
                cycles: 0,
                slept: Duration::ZERO,
                owns_lane: false,
            };
            self.enqueue(item);
        }
    }

    fn enqueue(&mut self, mut item: PendingItem) {
        if let (Some(lane_key), false) = (item.sub.lane, item.owns_lane) {
            let lane = self.lanes.entry(lane_key).or_insert_with(|| Lane {
                queue: VecDeque::new(),
                busy: false,
            });
            if lane.busy {
                lane.queue.push_back(item);
                return;
            }
            lane.busy = true;
            item.owns_lane = true;
        }
        self.pending.push_back(item);
    }

    /// Release `lane_key` and promote the next queued submission, which
    /// inherits the lane without re-gating.
    fn release_lane(&mut self, lane_key: u64) {
        if let Some(lane) = self.lanes.get_mut(&lane_key) {
            if let Some(mut next) = lane.queue.pop_front() {
                next.owns_lane = true;
                self.pending.push_back(next);
            } else {
                lane.busy = false;
            }
        }
    }

    /// Expired backoffs re-enter admission (where the breaker gets its
    /// per-cycle say, exactly like the blocking `get` loop's top).
    fn unpark_expired(&mut self) {
        let now = Instant::now();
        let parked = std::mem::take(&mut self.parked);
        for p in parked {
            if p.until <= now {
                self.pending.push_back(PendingItem {
                    sub: p.sub,
                    cycles: p.cycles,
                    slept: p.slept,
                    owns_lane: true,
                });
            } else {
                self.parked.push(p);
            }
        }
    }

    /// Start pending submissions while the in-flight cap allows. The cap
    /// bounds *wire-active* submissions only — parked backoffs hold no
    /// slot, matching the blocking client where the inflight permit is
    /// released during a backoff sleep.
    fn admit(&mut self) {
        let cap = self.shared.config.max_inflight.unwrap_or(usize::MAX).max(1);
        while self.active.len() < cap {
            let Some(item) = self.pending.pop_front() else {
                return;
            };
            self.admit_one(item);
        }
    }

    fn admit_one(&mut self, item: PendingItem) {
        if matches!(item.sub.policy, Policy::Managed { .. }) {
            let admitted = self
                .shared
                .breakers
                .as_ref()
                .map_or(true, |b| b.for_host(item.sub.addr).admit());
            if !admitted {
                let err = NetError::CircuitOpen;
                if let Some(m) = &self.shared.metrics {
                    m.note_error(&err);
                }
                self.complete_sub(item.sub, Err(err));
                return;
            }
        }
        let name = format!("{} {}", item.sub.req.method.as_str(), item.sub.req.path);
        let request_span = match &self.shared.tracer {
            Some(t) => t.child_of(item.sub.parent, "client", &name),
            None => TraceSpan::noop(),
        };
        let mut act = Active {
            sub: item.sub,
            attempt: 0,
            cycles: item.cycles,
            slept: item.slept,
            started: Instant::now(),
            request_span,
            attempt_span: TraceSpan::noop(),
            conn: None,
        };
        match self.start_attempt(&mut act) {
            Ok(()) => self.active.push(act),
            Err(e) => self.fail_attempt(act, e, true),
        }
    }

    /// Open the attempt span, serialize the request with this attempt's
    /// trace context, and acquire a connection (pooled first, else a
    /// nonblocking connect). An `Err` is a connect-phase failure: the
    /// cycle is over (the blocking client propagates connect errors
    /// without burning transparent retries).
    fn start_attempt(&mut self, act: &mut Active) -> Result<(), NetError> {
        let attempt_span = match &self.shared.tracer {
            Some(t) => t.child_of(
                act.request_span.context(),
                "client",
                &format!("attempt#{}", act.attempt),
            ),
            None => TraceSpan::noop(),
        };
        if act.attempt > 0 {
            attempt_span.event("retry");
        }
        act.attempt_span = attempt_span;
        let wire_req = match act.attempt_span.context() {
            Some(ctx) => act.sub.req.with_trace_context(ctx),
            None => act.sub.req.clone(),
        };
        let mut buf = Vec::new();
        wire_req.write_to(&mut buf)?;
        let io_timeout = self.shared.config.io_timeout;
        if let Some(idle) = self.take_pooled(act.sub.addr) {
            act.conn = Some(Conn {
                stream: idle.stream,
                state: CState::Sending { buf, off: 0 },
                deadline: Instant::now() + io_timeout,
            });
            return Ok(());
        }
        let (stream, established) = sys::connect_nonblocking(&act.sub.addr)?;
        stream.set_nodelay(true)?;
        act.conn = Some(if established {
            Conn {
                stream,
                state: CState::Sending { buf, off: 0 },
                deadline: Instant::now() + io_timeout,
            }
        } else {
            Conn {
                stream,
                state: CState::Connecting { buf },
                deadline: Instant::now() + self.shared.config.connect_timeout,
            }
        });
        Ok(())
    }

    /// Take a live idle connection for `addr`, discarding stale ones:
    /// leftover unparsed bytes poison a connection, and an idle pooled
    /// socket must be silent (a zero-timeout readable poll means the
    /// server closed or corrupted it while pooled) — the blocking
    /// client's freshness probe, verbatim.
    fn take_pooled(&mut self, addr: SocketAddr) -> Option<IdleConn> {
        let mut pool = self.shared.pool.lock();
        let conns = pool.get_mut(&addr)?;
        while let Some(idle) = conns.pop() {
            if !idle.residue.is_empty() {
                continue;
            }
            let probe = sys::poll_one(idle.stream.as_raw_fd(), sys::POLLIN, Some(Duration::ZERO));
            if matches!(probe, Ok(0)) {
                return Some(idle);
            }
        }
        None
    }

    fn return_pooled(&mut self, addr: SocketAddr, idle: IdleConn) {
        let mut pool = self.shared.pool.lock();
        let conns = pool.entry(addr).or_default();
        if conns.len() < self.shared.config.pool_per_host {
            conns.push(idle);
        }
    }

    /// Advance one ready connection's state machine.
    fn drive(&mut self, mut act: Active) {
        let Some(conn) = act.conn.as_mut() else {
            return; // unreachable: active submissions always hold a conn
        };
        match &mut conn.state {
            CState::Connecting { buf } => match sys::take_socket_error(conn.stream.as_raw_fd()) {
                Ok(()) => {
                    conn.state = CState::Sending {
                        buf: std::mem::take(buf),
                        off: 0,
                    };
                    conn.deadline = Instant::now() + self.shared.config.io_timeout;
                    self.active.push(act);
                }
                Err(e) => self.fail_attempt(act, NetError::Io(e), true),
            },
            CState::Sending { buf, off } => loop {
                if *off >= buf.len() {
                    conn.state = CState::Receiving { buf: Vec::new() };
                    conn.deadline = Instant::now() + self.shared.config.io_timeout;
                    self.active.push(act);
                    return;
                }
                match (&conn.stream).write(&buf[*off..]) {
                    Ok(0) => {
                        let e =
                            io::Error::new(io::ErrorKind::WriteZero, "socket accepted zero bytes");
                        self.fail_attempt(act, NetError::Io(e), false);
                        return;
                    }
                    Ok(n) => {
                        *off += n;
                        conn.deadline = Instant::now() + self.shared.config.io_timeout;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        self.active.push(act);
                        return;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        self.fail_attempt(act, NetError::Io(e), false);
                        return;
                    }
                }
            },
            CState::Receiving { buf } => {
                let mut eof = false;
                let mut chunk = [0u8; READ_CHUNK];
                loop {
                    match (&conn.stream).read(&mut chunk) {
                        Ok(0) => {
                            eof = true;
                            break;
                        }
                        Ok(n) => {
                            buf.extend_from_slice(&chunk[..n]);
                            conn.deadline = Instant::now() + self.shared.config.io_timeout;
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => {
                            self.fail_attempt(act, NetError::Io(e), false);
                            return;
                        }
                    }
                }
                match Response::parse_partial(buf) {
                    Ok(Some((resp, used))) => {
                        let residue = buf.split_off(used);
                        let Some(conn) = act.conn.take() else { return };
                        // Pool *before* completing the ticket so a caller
                        // observing `idle_connections` right after `wait`
                        // returns sees the connection back, exactly like
                        // the blocking client's return-then-return order.
                        self.return_pooled(
                            act.sub.addr,
                            IdleConn {
                                stream: conn.stream,
                                residue,
                            },
                        );
                        self.finish_wire(act, Ok(resp));
                    }
                    Ok(None) if eof => self.fail_attempt(act, NetError::UnexpectedEof, false),
                    Ok(None) => self.active.push(act),
                    Err(e) => self.fail_attempt(act, e, false),
                }
            }
        }
    }

    /// A connection deadline passed: connect-phase timeouts are terminal
    /// for the cycle (the blocking connect propagates its timeout), I/O
    /// timeouts are transient like a blocking socket timeout.
    fn expire(&mut self, mut act: Active) {
        let connect_phase = matches!(
            act.conn.as_ref().map(|c| &c.state),
            Some(CState::Connecting { .. })
        );
        act.conn = None;
        let e = io::Error::new(io::ErrorKind::TimedOut, "mux i/o deadline elapsed");
        self.fail_attempt(act, NetError::Io(e), connect_phase);
    }

    /// One attempt failed. Transient wire failures burn a transparent
    /// retry on a fresh connection; connect-phase failures and terminal
    /// errors end the wire cycle.
    fn fail_attempt(&mut self, mut act: Active, err: NetError, connect_phase: bool) {
        if !connect_phase {
            act.attempt_span.event(&format!("failed:{}", err.kind()));
        }
        std::mem::replace(&mut act.attempt_span, TraceSpan::noop()).finish();
        act.conn = None;
        if !connect_phase && err.is_transient() && act.attempt < self.shared.config.retries {
            act.attempt += 1;
            if let Some(m) = &self.shared.metrics {
                m.note_transparent_retry();
            }
            match self.start_attempt(&mut act) {
                Ok(()) => self.active.push(act),
                Err(e) => self.fail_attempt(act, e, true),
            }
            return;
        }
        self.finish_wire(act, Err(err));
    }

    /// One wire cycle is over: close out spans and metrics, then either
    /// complete the ticket (raw) or run the managed resilience policy.
    fn finish_wire(&mut self, mut act: Active, wire: Result<Response, NetError>) {
        std::mem::replace(&mut act.attempt_span, TraceSpan::noop()).finish();
        if let Err(e) = &wire {
            act.request_span.event(&format!("error:{}", e.kind()));
        }
        if let Some(m) = &self.shared.metrics {
            m.record_request(act.started.elapsed());
        }
        let (key, decode) = match act.sub.policy {
            Policy::Raw => {
                if let (Some(m), Err(e)) = (&self.shared.metrics, &wire) {
                    m.note_error(e);
                }
                std::mem::replace(&mut act.request_span, TraceSpan::noop()).finish();
                self.complete_sub(act.sub, wire.map(Payload::Resp));
                return;
            }
            Policy::Managed { key, decode } => (key, decode),
        };
        // The status/decode seam, identical to the blocking `get` path.
        let result = wire
            .and_then(|resp| {
                if resp.status == Status::Ok {
                    Ok(resp)
                } else {
                    Err(NetError::Status {
                        code: resp.status.code(),
                        retry_after: resp.retry_after(),
                    })
                }
            })
            .and_then(|resp| decode_response(resp, decode));
        let breaker = self
            .shared
            .breakers
            .as_ref()
            .map(|b| b.for_host(act.sub.addr));
        let err = match result {
            Ok(payload) => {
                std::mem::replace(&mut act.request_span, TraceSpan::noop()).finish();
                if let Some(b) = &breaker {
                    b.on_success();
                }
                self.complete_sub(act.sub, Ok(payload));
                return;
            }
            Err(e) => e,
        };
        // Wire errors mirror request()'s error accounting, minted status
        // and decode errors mirror get()'s — all land here exactly once.
        if let Some(m) = &self.shared.metrics {
            m.note_error(&err);
        }
        let delay = self
            .shared
            .retry
            .as_ref()
            .and_then(|p| p.delay_for(&err, act.cycles, key, act.slept));
        match delay {
            Some(wait) => {
                // Still trying: the breaker only hears about *terminal*
                // outcomes. The blocking path pins this event on the
                // caller's enclosing span; driver-side it rides the
                // finishing request span (journal-placement drift only).
                act.request_span
                    .event(&format!("resilient-retry:{}", err.kind()));
                std::mem::replace(&mut act.request_span, TraceSpan::noop()).finish();
                if let Some(rm) = &self.shared.resilience {
                    rm.note_retry(wait);
                }
                self.parked.push(Parked {
                    until: Instant::now() + wait,
                    cycles: act.cycles + 1,
                    slept: act.slept + wait,
                    sub: act.sub,
                });
            }
            None => {
                std::mem::replace(&mut act.request_span, TraceSpan::noop()).finish();
                if let Some(b) = &breaker {
                    // Only signs of host distress — dead connections and
                    // 5xx answers — push the circuit toward open; 404s
                    // and 429s leave it closed (same rule as `get`).
                    let host_fault = err.is_transient()
                        || matches!(
                            err,
                            NetError::Status {
                                code: 500..=599,
                                ..
                            }
                        );
                    if host_fault {
                        b.on_failure();
                    } else {
                        b.on_success();
                    }
                }
                self.complete_sub(act.sub, Err(err));
            }
        }
    }

    /// Fill the ticket and release the submission's lane.
    fn complete_sub(&mut self, sub: Submission, result: Result<Payload, NetError>) {
        if let Some(lane_key) = sub.lane {
            self.release_lane(lane_key);
        }
        sub.cell.complete(result);
    }

    /// The next instant the loop must act even without readiness: the
    /// earliest connection deadline or backoff expiry.
    fn poll_timeout(&self) -> Option<Duration> {
        let mut next: Option<Instant> = None;
        let mut fold = |at: Instant| {
            next = Some(match next {
                Some(cur) if cur <= at => cur,
                _ => at,
            });
        };
        for act in &self.active {
            if let Some(conn) = &act.conn {
                fold(conn.deadline);
            }
        }
        for p in &self.parked {
            fold(p.until);
        }
        next.map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Shutdown: every outstanding ticket completes with an error so no
    /// waiter hangs on a joined driver.
    fn abort_outstanding(&mut self) {
        let gone = || {
            NetError::Io(io::Error::new(
                io::ErrorKind::Interrupted,
                "mux client shut down",
            ))
        };
        for act in std::mem::take(&mut self.active) {
            act.sub.cell.complete(Err(gone()));
        }
        for p in std::mem::take(&mut self.parked) {
            p.sub.cell.complete(Err(gone()));
        }
        for item in std::mem::take(&mut self.pending) {
            item.sub.cell.complete(Err(gone()));
        }
        for (_, lane) in std::mem::take(&mut self.lanes) {
            for item in lane.queue {
                item.sub.cell.complete(Err(gone()));
            }
        }
        for sub in std::mem::take(&mut *self.shared.queue.lock()) {
            sub.cell.complete(Err(gone()));
        }
    }
}
