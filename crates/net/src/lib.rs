//! # marketscope-net
//!
//! The networking substrate: a deliberately small, blocking HTTP/1.1
//! subset over `std::net::TcpStream`, plus a path router and a token-bucket
//! rate limiter.
//!
//! The paper's crawl is loopback-scale for us (simulated market servers on
//! `127.0.0.1`), but fleet monitoring at market scale is bounded by how
//! many connections the infrastructure can hold open. The server side is
//! therefore an event loop ([`reactor`]): nonblocking sockets multiplexed
//! by `poll(2)` across a fixed set of shard threads, with the blocking
//! [`Handler`](server::Handler) trait running on a bounded worker pool —
//! C10k-scale concurrency at a constant thread count, with no async
//! runtime (per the networking guides' advice, a readiness loop over
//! `std::net` is all a loopback fleet needs). The client side mirrors
//! it: a multiplexed submit/complete engine ([`mux`]) where one driver
//! thread owns every connection as a nonblocking state machine and the
//! blocking [`HttpClient`] surface is a thin submit-then-wait wrapper,
//! so crawl fan-out is bounded by sockets, not threads.
//!
//! Protocol subset: `GET`/`POST`, `Content-Length` bodies (no chunked
//! encoding), `Connection: keep-alive`/`close`, status codes the market
//! simulation needs (200, 400, 404, 429, 500, 503). The parser is total
//! and size-capped so a misbehaving peer cannot wedge or balloon a
//! worker.
//!
//! Robustness is first-class: servers can wrap their connection handling
//! in a seeded [`FaultPlan`] (resets, stalls, truncated bodies, 5xx
//! bursts, downtime windows — see [`fault`]), and clients counter with a
//! [`RetryPolicy`] plus per-host circuit breaking (see [`resilience`]),
//! both deterministic so chaos campaigns replay exactly.
//!
//! Every component is instrumented with `marketscope-telemetry`: servers
//! count requests per status and time handlers ([`ServerMetrics`]),
//! clients record request latency, retries and errors by kind
//! ([`ClientMetrics`]), and token buckets count grants, rejections and
//! caller waits ([`RateLimitMetrics`]). Recording is lock-free; attaching
//! instruments to a shared [`Registry`](marketscope_telemetry::Registry)
//! makes them scrapeable.

// Unsafe is denied everywhere except the one scoped `poll(2)` syscall
// shim in `reactor::sys`, which opts back in explicitly.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod fault;
pub mod http;
pub mod mux;
pub mod ratelimit;
pub mod reactor;
pub mod resilience;
pub mod router;
pub mod server;

pub use client::{
    ClientConfig, ClientConfigBuilder, ClientMetrics, FetchSpec, HttpClient, HttpClientBuilder,
};
pub use error::NetError;
pub use fault::{FaultAction, FaultInjector, FaultMetrics, FaultPlan};
pub use http::{Method, Request, Response, Status};
pub use mux::{MuxClient, Ticket};
pub use ratelimit::{RateLimitMetrics, TokenBucket};
pub use reactor::ReactorConfig;
pub use resilience::{
    BreakerConfig, BreakerSet, BreakerState, CircuitBreaker, ResilienceMetrics, RetryPolicy,
};
pub use router::Router;
pub use server::{HttpServer, ServerHandle, ServerMetrics};
