//! Error type for the HTTP subset.

use std::fmt;
use std::io;
use std::time::Duration;

/// Errors produced by the HTTP client, server and parser.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket I/O failed.
    Io(io::Error),
    /// The peer sent bytes that are not valid for the HTTP subset.
    Protocol(&'static str),
    /// A header or body exceeded the configured size caps.
    TooLarge {
        /// What overflowed ("header", "body", ...).
        what: &'static str,
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The server answered with a non-success status the caller did not
    /// expect. Carries the code so callers can branch on 429 vs 404, and
    /// the server's `retry-after` hint (if it sent one) so retry policies
    /// can honor it instead of guessing a backoff.
    Status {
        /// The HTTP status code (404, 429, 503, ...).
        code: u16,
        /// Parsed `retry-after` response header, if present.
        retry_after: Option<Duration>,
    },
    /// The connection closed before a complete message was read.
    UnexpectedEof,
    /// The per-host circuit breaker is open: the request was rejected
    /// locally, without touching the wire (see
    /// [`crate::resilience::BreakerConfig`]).
    CircuitOpen,
}

impl NetError {
    /// A [`NetError::Status`] with no retry hint — the common construction
    /// at call sites that only know the code.
    pub fn status(code: u16) -> NetError {
        NetError::Status {
            code,
            retry_after: None,
        }
    }

    /// Short stable label for the error's kind, used as the `kind` label
    /// on telemetry counters (`io`, `protocol`, `too_large`, `status`,
    /// `eof`, `circuit_open`).
    pub fn kind(&self) -> &'static str {
        match self {
            NetError::Io(_) => "io",
            NetError::Protocol(_) => "protocol",
            NetError::TooLarge { .. } => "too_large",
            NetError::Status { .. } => "status",
            NetError::UnexpectedEof => "eof",
            NetError::CircuitOpen => "circuit_open",
        }
    }

    /// Whether a fresh attempt on a new connection may plausibly succeed:
    /// connection-level failures (socket I/O, mid-message EOF from a reset
    /// or truncated response). Protocol violations and size-cap overflows
    /// are deterministic peer bugs — retrying them is blind.
    pub fn is_transient(&self) -> bool {
        matches!(self, NetError::Io(_) | NetError::UnexpectedEof)
    }

    /// Whether a retry policy should consider retrying this error:
    /// [transient](NetError::is_transient) failures plus the retryable
    /// status codes (429 throttles, 500/503 server faults). 4xx lookup
    /// misses are definitive answers, not failures.
    pub fn is_retryable(&self) -> bool {
        self.is_transient()
            || matches!(
                self,
                NetError::Status {
                    code: 429 | 500 | 503,
                    ..
                }
            )
    }

    /// The server's `retry-after` hint, when this is a status error that
    /// carried one.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            NetError::Status { retry_after, .. } => *retry_after,
            _ => None,
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Protocol(m) => write!(f, "protocol: {m}"),
            NetError::TooLarge { what, limit } => {
                write!(f, "{what} exceeds limit of {limit} bytes")
            }
            NetError::Status { code, retry_after } => {
                write!(f, "unexpected status {code}")?;
                if let Some(d) = retry_after {
                    write!(f, " (retry after {:?})", d)?;
                }
                Ok(())
            }
            NetError::UnexpectedEof => write!(f, "connection closed mid-message"),
            NetError::CircuitOpen => write!(f, "circuit breaker open for host"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NetError::from(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(NetError::status(429).to_string().contains("429"));
        assert!(NetError::TooLarge {
            what: "body",
            limit: 10
        }
        .to_string()
        .contains("body"));
        assert!(std::error::Error::source(&NetError::UnexpectedEof).is_none());
        assert!(NetError::CircuitOpen.to_string().contains("breaker"));
    }

    #[test]
    fn kinds_are_stable_labels() {
        assert_eq!(NetError::status(404).kind(), "status");
        assert_eq!(NetError::UnexpectedEof.kind(), "eof");
        assert_eq!(NetError::Protocol("x").kind(), "protocol");
        assert_eq!(NetError::from(io::Error::other("boom")).kind(), "io");
        assert_eq!(NetError::CircuitOpen.kind(), "circuit_open");
        assert_eq!(
            NetError::TooLarge {
                what: "body",
                limit: 1
            }
            .kind(),
            "too_large"
        );
    }

    #[test]
    fn transience_is_connection_level_only() {
        assert!(NetError::from(io::Error::other("reset")).is_transient());
        assert!(NetError::UnexpectedEof.is_transient());
        assert!(!NetError::Protocol("junk").is_transient());
        assert!(!NetError::status(503).is_transient());
        assert!(!NetError::CircuitOpen.is_transient());
    }

    #[test]
    fn retryability_branches_on_the_error_not_magic_literals() {
        for code in [429, 500, 503] {
            assert!(NetError::status(code).is_retryable(), "{code}");
        }
        for code in [400, 404] {
            assert!(!NetError::status(code).is_retryable(), "{code}");
        }
        assert!(NetError::UnexpectedEof.is_retryable());
        assert!(!NetError::CircuitOpen.is_retryable());
        assert_eq!(
            NetError::Status {
                code: 503,
                retry_after: Some(Duration::from_millis(250)),
            }
            .retry_after(),
            Some(Duration::from_millis(250))
        );
        assert_eq!(NetError::status(503).retry_after(), None);
    }
}
