//! Error type for the HTTP subset.

use std::fmt;
use std::io;

/// Errors produced by the HTTP client, server and parser.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket I/O failed.
    Io(io::Error),
    /// The peer sent bytes that are not valid for the HTTP subset.
    Protocol(&'static str),
    /// A header or body exceeded the configured size caps.
    TooLarge {
        /// What overflowed ("header", "body", ...).
        what: &'static str,
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The server answered with a non-success status the caller did not
    /// expect (carried so callers can branch on 429 vs 404).
    Status(u16),
    /// The connection closed before a complete message was read.
    UnexpectedEof,
}

impl NetError {
    /// Short stable label for the error's kind, used as the `kind` label
    /// on telemetry counters (`io`, `protocol`, `too_large`, `status`,
    /// `eof`).
    pub fn kind(&self) -> &'static str {
        match self {
            NetError::Io(_) => "io",
            NetError::Protocol(_) => "protocol",
            NetError::TooLarge { .. } => "too_large",
            NetError::Status(_) => "status",
            NetError::UnexpectedEof => "eof",
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Protocol(m) => write!(f, "protocol: {m}"),
            NetError::TooLarge { what, limit } => {
                write!(f, "{what} exceeds limit of {limit} bytes")
            }
            NetError::Status(code) => write!(f, "unexpected status {code}"),
            NetError::UnexpectedEof => write!(f, "connection closed mid-message"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NetError::from(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(NetError::Status(429).to_string().contains("429"));
        assert!(NetError::TooLarge {
            what: "body",
            limit: 10
        }
        .to_string()
        .contains("body"));
        assert!(std::error::Error::source(&NetError::UnexpectedEof).is_none());
    }

    #[test]
    fn kinds_are_stable_labels() {
        assert_eq!(NetError::Status(404).kind(), "status");
        assert_eq!(NetError::UnexpectedEof.kind(), "eof");
        assert_eq!(NetError::Protocol("x").kind(), "protocol");
        assert_eq!(NetError::from(io::Error::other("boom")).kind(), "io");
        assert_eq!(
            NetError::TooLarge {
                what: "body",
                limit: 1
            }
            .kind(),
            "too_large"
        );
    }
}
