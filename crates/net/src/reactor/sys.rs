//! The one `unsafe`-scoped syscall shim in the workspace: thin wrappers
//! over `poll(2)` and the nonblocking-connect trio.
//!
//! The event loops need exactly two primitives the standard library does
//! not expose — "block until any of these descriptors is ready" and
//! "start a TCP connect without blocking, harvest its outcome later".
//! Rather than grow an async runtime (or even a `libc` dependency) for a
//! handful of syscalls, we declare the symbols ourselves: `poll`,
//! `socket`, `connect`, and `getsockopt` are part of the C library every
//! `std` binary already links against. Everything else the reactors need
//! (nonblocking mode, socketpair wake pipes) comes from safe `std` APIs,
//! so `unsafe` stays confined to this module.

#![allow(unsafe_code)]

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::fd::{FromRawFd, RawFd};
use std::time::Duration;

/// Readable data (or a peer close, together with [`POLLHUP`]).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always polled, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always polled, never requested).
pub const POLLHUP: i16 = 0x010;
/// Invalid descriptor (always polled, never requested).
pub const POLLNVAL: i16 = 0x020;

/// One entry in a `poll(2)` set, ABI-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events` (a mask of [`POLLIN`] /
    /// [`POLLOUT`]).
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The returned readiness mask from the last poll.
    pub fn revents(&self) -> i16 {
        self.revents
    }

    /// Whether the descriptor has data to read — or an error / hangup,
    /// which a reader must also consume to observe (EOF, ECONNRESET).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

extern "C" {
    // `nfds_t` is `unsigned long` and `int` is 32-bit on every Unix
    // target this workspace builds for (linux/macos, 64-bit).
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
    fn connect(fd: i32, addr: *const u8, len: u32) -> i32;
    fn getsockopt(fd: i32, level: i32, name: i32, value: *mut u8, len: *mut u32) -> i32;
}

const SOCK_STREAM: i32 = 1;
const AF_INET: i32 = 2;
#[cfg(target_os = "linux")]
const AF_INET6: i32 = 10;
#[cfg(target_os = "macos")]
const AF_INET6: i32 = 30;
#[cfg(target_os = "linux")]
const SOL_SOCKET: i32 = 1;
#[cfg(target_os = "macos")]
const SOL_SOCKET: i32 = 0xffff;
#[cfg(target_os = "linux")]
const SO_ERROR: i32 = 4;
#[cfg(target_os = "macos")]
const SO_ERROR: i32 = 0x1007;
#[cfg(target_os = "linux")]
const EINPROGRESS: i32 = 115;
#[cfg(target_os = "macos")]
const EINPROGRESS: i32 = 36;

/// ABI-compatible `struct sockaddr_in` (BSD variants carry a length
/// prefix byte; Linux packs the family into the first two bytes).
#[repr(C)]
struct SockAddrIn {
    #[cfg(target_os = "macos")]
    sin_len: u8,
    #[cfg(target_os = "macos")]
    sin_family: u8,
    #[cfg(target_os = "linux")]
    sin_family: u16,
    /// Network byte order.
    sin_port: u16,
    /// Network byte order.
    sin_addr: u32,
    sin_zero: [u8; 8],
}

/// ABI-compatible `struct sockaddr_in6`.
#[repr(C)]
struct SockAddrIn6 {
    #[cfg(target_os = "macos")]
    sin6_len: u8,
    #[cfg(target_os = "macos")]
    sin6_family: u8,
    #[cfg(target_os = "linux")]
    sin6_family: u16,
    /// Network byte order.
    sin6_port: u16,
    sin6_flowinfo: u32,
    sin6_addr: [u8; 16],
    sin6_scope_id: u32,
}

/// Begin a TCP connect without blocking the caller.
///
/// Returns the nonblocking stream plus `true` if the handshake already
/// completed (loopback connects sometimes finish inside the syscall).
/// When it returns `false` the socket is mid-handshake: poll it for
/// [`POLLOUT`], then call [`take_socket_error`] to learn whether the
/// connect succeeded or why it failed. Any error other than
/// `EINPROGRESS` is reported immediately.
pub fn connect_nonblocking(addr: &SocketAddr) -> io::Result<(TcpStream, bool)> {
    let domain = match addr {
        SocketAddr::V4(_) => AF_INET,
        SocketAddr::V6(_) => AF_INET6,
    };
    // SAFETY: plain syscall; a negative return is checked before use.
    let fd = unsafe { socket(domain, SOCK_STREAM, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // Wrap immediately so the descriptor is closed on every early return,
    // and flip to nonblocking through the safe std accessor.
    // SAFETY: `fd` is a fresh descriptor we exclusively own.
    let stream = unsafe { TcpStream::from_raw_fd(fd) };
    stream.set_nonblocking(true)?;
    let rc = match addr {
        SocketAddr::V4(v4) => {
            let sa = SockAddrIn {
                #[cfg(target_os = "macos")]
                sin_len: std::mem::size_of::<SockAddrIn>() as u8,
                #[cfg(target_os = "macos")]
                sin_family: AF_INET as u8,
                #[cfg(target_os = "linux")]
                sin_family: AF_INET as u16,
                sin_port: v4.port().to_be(),
                sin_addr: u32::from_ne_bytes(v4.ip().octets()),
                sin_zero: [0; 8],
            };
            // SAFETY: `sa` is a live `#[repr(C)]` sockaddr_in and the
            // length passed matches its size exactly.
            unsafe {
                connect(
                    fd,
                    (&sa as *const SockAddrIn).cast(),
                    std::mem::size_of::<SockAddrIn>() as u32,
                )
            }
        }
        SocketAddr::V6(v6) => {
            let sa = SockAddrIn6 {
                #[cfg(target_os = "macos")]
                sin6_len: std::mem::size_of::<SockAddrIn6>() as u8,
                #[cfg(target_os = "macos")]
                sin6_family: AF_INET6 as u8,
                #[cfg(target_os = "linux")]
                sin6_family: AF_INET6 as u16,
                sin6_port: v6.port().to_be(),
                sin6_flowinfo: v6.flowinfo().to_be(),
                sin6_addr: v6.ip().octets(),
                sin6_scope_id: v6.scope_id(),
            };
            // SAFETY: `sa` is a live `#[repr(C)]` sockaddr_in6 and the
            // length passed matches its size exactly.
            unsafe {
                connect(
                    fd,
                    (&sa as *const SockAddrIn6).cast(),
                    std::mem::size_of::<SockAddrIn6>() as u32,
                )
            }
        }
    };
    if rc == 0 {
        return Ok((stream, true));
    }
    let err = io::Error::last_os_error();
    if err.raw_os_error() == Some(EINPROGRESS) {
        Ok((stream, false))
    } else {
        Err(err)
    }
}

/// Harvest the outcome of a nonblocking connect after the socket polled
/// writable: `Ok(())` if the handshake succeeded, otherwise the pending
/// socket error (e.g. `ECONNREFUSED`) converted to an [`io::Error`].
pub fn take_socket_error(fd: RawFd) -> io::Result<()> {
    let mut pending: i32 = 0;
    let mut len = std::mem::size_of::<i32>() as u32;
    // SAFETY: `pending`/`len` are live stack slots sized for the `int`
    // the kernel writes back for SO_ERROR.
    let rc = unsafe {
        getsockopt(
            fd,
            SOL_SOCKET,
            SO_ERROR,
            (&mut pending as *mut i32).cast(),
            &mut len,
        )
    };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    if pending == 0 {
        Ok(())
    } else {
        Err(io::Error::from_raw_os_error(pending))
    }
}

/// Wait until at least one entry is ready, the timeout elapses (`Ok(0)`),
/// or an error occurs. `None` blocks indefinitely; `Some(ZERO)` is a
/// nonblocking readiness probe. `EINTR` is retried internally.
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms: i32 = match timeout {
        None => -1,
        // Round sub-millisecond timeouts *up* so a caller sweeping
        // deadlines cannot spin on a zero-duration poll.
        Some(d) => {
            let ms = d.as_millis().min(i32::MAX as u128) as i32;
            if ms == 0 && !d.is_zero() {
                1
            } else {
                ms
            }
        }
    };
    loop {
        // SAFETY: `fds` is an exclusively borrowed slice of `#[repr(C)]`
        // structs matching the `pollfd` ABI; the kernel reads `fd` and
        // `events` and writes only `revents`, all within `fds.len()`
        // entries.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Poll a single descriptor and return its readiness mask (`0` if the
/// timeout elapsed first).
pub fn poll_one(fd: RawFd, events: i16, timeout: Option<Duration>) -> io::Result<i16> {
    let mut fds = [PollFd::new(fd, events)];
    let n = poll_fds(&mut fds, timeout)?;
    Ok(if n == 0 { 0 } else { fds[0].revents })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn zero_timeout_probe_reports_idle_then_ready() {
        let (a, b) = UnixStream::pair().unwrap();
        let ready = poll_one(a.as_raw_fd(), POLLIN, Some(Duration::ZERO)).unwrap();
        assert_eq!(ready, 0, "idle socket must not report readiness");
        (&b).write_all(&[1]).unwrap();
        let ready = poll_one(a.as_raw_fd(), POLLIN, Some(Duration::from_secs(1))).unwrap();
        assert!(ready & POLLIN != 0, "written socket must be readable");
    }

    #[test]
    fn hangup_is_readable() {
        let (a, b) = UnixStream::pair().unwrap();
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(1))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable(), "peer close must wake a reader");
    }

    #[test]
    fn timeout_expires_without_events() {
        let (a, _b) = UnixStream::pair().unwrap();
        let start = std::time::Instant::now();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn nonblocking_connect_completes_against_listener() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (stream, done) = connect_nonblocking(&addr).unwrap();
        if !done {
            let ready =
                poll_one(stream.as_raw_fd(), POLLOUT, Some(Duration::from_secs(5))).unwrap();
            assert!(ready != 0, "connect never became ready");
        }
        take_socket_error(stream.as_raw_fd()).unwrap();
        // The connected socket really works: round-trip one byte.
        let (mut peer, _) = listener.accept().unwrap();
        peer.write_all(&[7]).unwrap();
        poll_one(stream.as_raw_fd(), POLLIN, Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 1];
        use std::io::Read;
        (&stream).read_exact(&mut buf).unwrap();
        assert_eq!(buf, [7]);
    }

    #[test]
    fn nonblocking_connect_to_dead_port_surfaces_refusal() {
        // Bind-then-drop: the port was just free, so the connect is
        // refused rather than timing out.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let (stream, done) = connect_nonblocking(&addr).unwrap();
        if !done {
            poll_one(stream.as_raw_fd(), POLLOUT, Some(Duration::from_secs(5))).unwrap();
        }
        let err =
            take_socket_error(stream.as_raw_fd()).expect_err("connect to a closed port must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn nonblocking_connect_speaks_ipv6() {
        // Environments without a loopback v6 stack skip rather than fail.
        let Ok(listener) = std::net::TcpListener::bind("[::1]:0") else {
            return;
        };
        let addr = listener.local_addr().unwrap();
        let (stream, done) = connect_nonblocking(&addr).unwrap();
        if !done {
            poll_one(stream.as_raw_fd(), POLLOUT, Some(Duration::from_secs(5))).unwrap();
        }
        take_socket_error(stream.as_raw_fd()).unwrap();
        listener.accept().unwrap();
    }
}
