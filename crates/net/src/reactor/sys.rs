//! The one `unsafe`-scoped syscall shim in the workspace: a thin wrapper
//! over `poll(2)`.
//!
//! The event loop needs exactly one primitive the standard library does
//! not expose — "block until any of these descriptors is ready". Rather
//! than grow an async runtime (or even a `libc` dependency) for one
//! syscall, we declare the symbol ourselves: `poll` is part of the C
//! library every `std` binary already links against. Everything else the
//! reactor needs (nonblocking mode, socketpair wake pipes) comes from
//! safe `std` APIs, so `unsafe` stays confined to this module.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Readable data (or a peer close, together with [`POLLHUP`]).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always polled, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always polled, never requested).
pub const POLLHUP: i16 = 0x010;
/// Invalid descriptor (always polled, never requested).
pub const POLLNVAL: i16 = 0x020;

/// One entry in a `poll(2)` set, ABI-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events` (a mask of [`POLLIN`] /
    /// [`POLLOUT`]).
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The returned readiness mask from the last poll.
    pub fn revents(&self) -> i16 {
        self.revents
    }

    /// Whether the descriptor has data to read — or an error / hangup,
    /// which a reader must also consume to observe (EOF, ECONNRESET).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

extern "C" {
    // `nfds_t` is `unsigned long` and `int` is 32-bit on every Unix
    // target this workspace builds for (linux/macos, 64-bit).
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

/// Wait until at least one entry is ready, the timeout elapses (`Ok(0)`),
/// or an error occurs. `None` blocks indefinitely; `Some(ZERO)` is a
/// nonblocking readiness probe. `EINTR` is retried internally.
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms: i32 = match timeout {
        None => -1,
        // Round sub-millisecond timeouts *up* so a caller sweeping
        // deadlines cannot spin on a zero-duration poll.
        Some(d) => {
            let ms = d.as_millis().min(i32::MAX as u128) as i32;
            if ms == 0 && !d.is_zero() {
                1
            } else {
                ms
            }
        }
    };
    loop {
        // SAFETY: `fds` is an exclusively borrowed slice of `#[repr(C)]`
        // structs matching the `pollfd` ABI; the kernel reads `fd` and
        // `events` and writes only `revents`, all within `fds.len()`
        // entries.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Poll a single descriptor and return its readiness mask (`0` if the
/// timeout elapsed first).
pub fn poll_one(fd: RawFd, events: i16, timeout: Option<Duration>) -> io::Result<i16> {
    let mut fds = [PollFd::new(fd, events)];
    let n = poll_fds(&mut fds, timeout)?;
    Ok(if n == 0 { 0 } else { fds[0].revents })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn zero_timeout_probe_reports_idle_then_ready() {
        let (a, b) = UnixStream::pair().unwrap();
        let ready = poll_one(a.as_raw_fd(), POLLIN, Some(Duration::ZERO)).unwrap();
        assert_eq!(ready, 0, "idle socket must not report readiness");
        (&b).write_all(&[1]).unwrap();
        let ready = poll_one(a.as_raw_fd(), POLLIN, Some(Duration::from_secs(1))).unwrap();
        assert!(ready & POLLIN != 0, "written socket must be readable");
    }

    #[test]
    fn hangup_is_readable() {
        let (a, b) = UnixStream::pair().unwrap();
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(1))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable(), "peer close must wake a reader");
    }

    #[test]
    fn timeout_expires_without_events() {
        let (a, _b) = UnixStream::pair().unwrap();
        let start = std::time::Instant::now();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() >= Duration::from_millis(15));
    }
}
