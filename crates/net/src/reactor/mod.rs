//! The event-loop transport: nonblocking sockets multiplexed by
//! `poll(2)`.
//!
//! This is the C10k-scale engine behind [`crate::server::HttpServer`].
//! The public server API is unchanged — what changed is what a
//! connection costs. The thread-per-connection transport paid one OS
//! thread (stack, scheduler slot) per open socket, capping a market at a
//! few hundred concurrent clients; here a connection is a slab slot (a
//! socket, two byte buffers, a state tag) and the thread count is fixed:
//!
//! * **one acceptor** — blocking `accept`, with bounded backoff on
//!   transient errors (EMFILE must not busy-loop) and load shedding
//!   above [`ReactorConfig::max_connections`] (an immediate `503` +
//!   `connection: close`, never a silent drop);
//! * **N event-loop shards** ([`ReactorConfig::shards`]) — each owns a
//!   set of connections outright (no cross-shard locking on the hot
//!   path) and runs `poll` → read → parse → dispatch → write;
//! * **M handler-pool workers** ([`ReactorConfig::handler_threads`]) —
//!   the [`Handler`](crate::server::Handler) trait is blocking by
//!   contract, so handlers run on a bounded pool, never on a shard.
//!
//! # Connection state machine
//!
//! ```text
//!            adopt                    parse_partial
//!   accept ────────▶ Reading ──(complete request)──▶ Handling
//!                    ▲   │                              │
//!     residual bytes │   │ EOF / parse error /          │ handler pool:
//!     re-parsed      │   │ idle keep-alive              │ faults, spans,
//!                    │   ▼                              │ handler.handle
//!                    │  close ◀──(close_after | reset)  ▼
//!                    └────────────(keep-alive)─────── Writing
//! ```
//!
//! A connection in `Handling` has **no poll interest**: one request is
//! in flight per connection at a time, which preserves HTTP/1.1 response
//! ordering and keeps the fault injector's per-path occurrence counting
//! identical to the thread-per-connection transport.
//!
//! # Why the fault and trace seams survive
//!
//! The chaos-replay and trace-propagation suites pin *logical seam
//! order*, not threads. A pool worker replays exactly the sequence the
//! old per-connection thread ran: `FaultInjector::decide` first (before
//! any span opens — a reset market must not trace), then the server
//! request span as a remote child of the propagated context, then the
//! `handler` and `write` child spans, with `note_response` between
//! handler and write. Because the whole sequence runs on one worker
//! thread, the tracer's thread-local implicit parenting links the spans
//! exactly as before.

pub(crate) mod sys;

use crate::fault::{FaultAction, FaultInjector};
use crate::http::{Request, Response, Status};
use crate::server::{Handler, ServerMetrics};
use marketscope_telemetry::LogLevel;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for the event-loop transport. The defaults suit a fleet
/// of loopback market servers: thread cost per server stays fixed at
/// `1 + shards + handler_threads` regardless of how many thousands of
/// connections are open.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Event-loop shard threads. Connections are distributed round-robin
    /// at accept time and never migrate.
    pub shards: usize,
    /// Handler-pool worker threads running the blocking
    /// [`Handler`](crate::server::Handler) trait (and fault stalls).
    pub handler_threads: usize,
    /// Open-connection ceiling. Beyond it the acceptor sheds new
    /// connections with `503` + `connection: close` and counts them in
    /// `marketscope_net_connections_shed_total`.
    pub max_connections: usize,
    /// Idle keep-alive connections are reaped after this long (the
    /// blocking transport's 30s read timeout, made explicit).
    pub keep_alive: Duration,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            shards: 2,
            handler_threads: 4,
            max_connections: 8192,
            keep_alive: Duration::from_secs(30),
        }
    }
}

/// Accept-error backoff bounds: EMFILE/ENFILE are transient (a peer will
/// close eventually) but must not spin the acceptor at 100% CPU.
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(1);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(100);

/// The canned shed answer — a full, honest response, unlike a silent
/// drop the peer would misread as a network fault.
const SHED_RESPONSE: &[u8] =
    b"HTTP/1.1 503 Service Unavailable\r\nconnection: close\r\ncontent-length: 0\r\n\r\n";

/// Read chunk size for the nonblocking read loop.
const READ_CHUNK: usize = 16 * 1024;

/// What a finished handler tells the owning shard to do with the
/// connection.
enum Directive {
    /// Write these serialized bytes, then keep alive or close.
    Respond { bytes: Vec<u8>, close: bool },
    /// Drop the connection without further bytes: fault resets,
    /// truncation of empty bodies, handler panics.
    Close,
}

/// One parsed request in flight to the handler pool, addressed back to
/// its connection by shard id + generation token.
struct Job {
    shard: usize,
    token: u64,
    req: Request,
}

/// Blocking MPMC job queue for the handler pool. A mutex-guarded deque
/// is plenty: queue operations are nanoseconds next to handler work.
struct JobQueue {
    inner: Mutex<JobQueueInner>,
    ready: Condvar,
}

struct JobQueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn new() -> JobQueue {
        JobQueue {
            inner: Mutex::new(JobQueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        let mut inner = self.inner.lock();
        if inner.closed {
            return;
        }
        inner.jobs.push_back(job);
        self.ready.notify_one();
    }

    /// Blocks for work; `None` once closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            self.ready.wait(&mut inner);
        }
    }

    fn close(&self) {
        self.inner.lock().closed = true;
        self.ready.notify_all();
    }
}

/// Cross-thread mailbox for one shard: sockets from the acceptor,
/// directives from the pool, and the wake pipe that interrupts its
/// `poll`.
struct ShardMailbox {
    inject: Mutex<Vec<TcpStream>>,
    done: Mutex<Vec<(u64, Directive)>>,
    wake_tx: UnixStream,
}

impl ShardMailbox {
    fn wake(&self) {
        // WouldBlock (pipe full) already guarantees a pending wake;
        // a write error means the shard exited — both safe to ignore.
        let _ = (&self.wake_tx).write(&[1]);
    }
}

/// State shared by the acceptor, every shard, and every pool worker.
struct Shared {
    handler: Arc<dyn Handler>,
    metrics: Arc<ServerMetrics>,
    faults: Option<Arc<FaultInjector>>,
    shutdown: Arc<AtomicBool>,
    cfg: ReactorConfig,
    jobs: JobQueue,
    shards: Vec<Arc<ShardMailbox>>,
}

/// Per-connection state tag (see the module-level diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Waiting for (more of) a request; poll interest `POLLIN`.
    Reading,
    /// A request is with the handler pool; no poll interest.
    Handling,
    /// Flushing a response; poll interest `POLLOUT`.
    Writing {
        /// Close instead of re-entering keep-alive once flushed.
        close_after: bool,
    },
}

/// One connection in a shard's slab.
struct Conn {
    stream: TcpStream,
    state: ConnState,
    /// Unparsed inbound bytes (may span pipelined requests).
    buf: Vec<u8>,
    /// Serialized outbound response and write cursor.
    out: Vec<u8>,
    out_pos: usize,
    /// Peer half-closed its write side; serve what's buffered, then close.
    eof: bool,
    last_activity: Instant,
    /// Generation tag guarding against slot reuse between a dispatch and
    /// its completion (the ABA problem on tokens).
    gen: u32,
}

fn token(idx: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | idx as u64
}

/// One event-loop shard: a slab of connections it owns exclusively.
struct ShardState {
    id: usize,
    shared: Arc<Shared>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u32,
}

/// Outcome of trying to advance the parser on buffered bytes.
enum ParseOutcome {
    /// A full request was cut; dispatch it to the pool.
    Dispatch(u64, Box<Request>),
    /// Incomplete and the peer already half-closed — nothing more comes.
    CloseNow,
    /// Protocol violation: answer 400 and close.
    Reject,
    /// Incomplete; wait for more bytes.
    Wait,
}

impl ShardState {
    fn new(id: usize, shared: Arc<Shared>) -> ShardState {
        ShardState {
            id,
            shared,
            conns: Vec::new(),
            free: Vec::new(),
            next_gen: 0,
        }
    }

    fn run(mut self, wake_rx: UnixStream) {
        let mut pollfds: Vec<sys::PollFd> = Vec::new();
        // `owners[i]` maps `pollfds[i]` back to (slab index, generation);
        // entry 0 is the wake pipe.
        let mut owners: Vec<(usize, u32)> = Vec::new();
        loop {
            pollfds.clear();
            owners.clear();
            pollfds.push(sys::PollFd::new(wake_rx.as_raw_fd(), sys::POLLIN));
            owners.push((usize::MAX, 0));
            for (idx, slot) in self.conns.iter().enumerate() {
                let Some(conn) = slot else { continue };
                let interest = match conn.state {
                    ConnState::Reading if !conn.eof => sys::POLLIN,
                    ConnState::Writing { .. } => sys::POLLOUT,
                    _ => continue,
                };
                pollfds.push(sys::PollFd::new(conn.stream.as_raw_fd(), interest));
                owners.push((idx, conn.gen));
            }
            let _ = sys::poll_fds(&mut pollfds, self.poll_timeout());
            self.shared.metrics.wakeups.inc();
            if pollfds[0].readable() {
                drain_wake(&wake_rx);
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            // Completions before injections: finished responses free
            // slots that new connections can then reuse.
            let done = {
                let mut mb = self.shared.shards[self.id].done.lock();
                std::mem::take(&mut *mb)
            };
            for (tok, directive) in done {
                self.apply(tok, directive);
            }
            let injected = {
                let mut mb = self.shared.shards[self.id].inject.lock();
                std::mem::take(&mut *mb)
            };
            for stream in injected {
                self.adopt(stream);
            }
            for (i, pfd) in pollfds.iter().enumerate().skip(1) {
                if pfd.revents() == 0 {
                    continue;
                }
                let (idx, gen) = owners[i];
                // A completion above may have closed or repurposed the
                // slot; the generation tag catches stale readiness.
                let Some(conn) = self.conns.get(idx).and_then(Option::as_ref) else {
                    continue;
                };
                if conn.gen != gen {
                    continue;
                }
                match conn.state {
                    ConnState::Reading => self.drive_read(idx),
                    ConnState::Writing { .. } => self.drive_write(idx),
                    ConnState::Handling => {}
                }
            }
            self.sweep_idle();
        }
        // Teardown: every still-open connection leaves the gauge exactly
        // balanced (the acceptor counted it on the way in).
        for idx in 0..self.conns.len() {
            self.close(idx);
        }
    }

    /// Next keep-alive deadline across parked connections, as a poll
    /// timeout. `None` (block forever) when the shard is empty or only
    /// handling — the wake pipe covers every other event source.
    fn poll_timeout(&self) -> Option<Duration> {
        let ka = self.shared.cfg.keep_alive;
        let now = Instant::now();
        self.conns
            .iter()
            .flatten()
            .filter(|c| c.state != ConnState::Handling)
            .map(|c| (c.last_activity + ka).saturating_duration_since(now))
            .min()
    }

    fn sweep_idle(&mut self) {
        let ka = self.shared.cfg.keep_alive;
        let now = Instant::now();
        for idx in 0..self.conns.len() {
            let expired = matches!(
                &self.conns[idx],
                Some(c) if c.state != ConnState::Handling
                    && now.duration_since(c.last_activity) > ka
            );
            if expired {
                self.close(idx);
            }
        }
    }

    /// Take ownership of a freshly accepted socket.
    fn adopt(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            // The acceptor already counted it; balance the gauge.
            self.shared.metrics.live.dec();
            return;
        }
        let _ = stream.set_nodelay(true);
        self.next_gen = self.next_gen.wrapping_add(1);
        let conn = Conn {
            stream,
            state: ConnState::Reading,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            eof: false,
            last_activity: Instant::now(),
            gen: self.next_gen,
        };
        match self.free.pop() {
            Some(idx) => self.conns[idx] = Some(conn),
            None => self.conns.push(Some(conn)),
        }
    }

    fn close(&mut self, idx: usize) {
        if self.conns[idx].take().is_some() {
            self.free.push(idx);
            self.shared.metrics.live.dec();
        }
    }

    /// Nonblocking read until the socket drains, then try to cut a
    /// request out of the buffer.
    fn drive_read(&mut self, idx: usize) {
        let mut dead = false;
        {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            let mut chunk = [0u8; READ_CHUNK];
            loop {
                match conn.stream.read(&mut chunk) {
                    // EOF is *deferred*: the buffer may still hold a full
                    // request the peer half-closed behind (shutdown-write
                    // clients); serve it before closing.
                    Ok(0) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.buf.extend_from_slice(&chunk[..n]);
                        if n < chunk.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            conn.last_activity = Instant::now();
        }
        if dead {
            self.close(idx);
            return;
        }
        self.advance_parse(idx);
    }

    /// Try to cut one request from the connection's buffer and dispatch
    /// it. Called after every read and after every keep-alive write
    /// completion (pipelined requests are already buffered — no further
    /// readiness event will announce them).
    fn advance_parse(&mut self, idx: usize) {
        let outcome = {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            if conn.state != ConnState::Reading {
                return;
            }
            match Request::parse_partial(&conn.buf) {
                Ok(Some((req, used))) => {
                    conn.buf.drain(..used);
                    conn.state = ConnState::Handling;
                    ParseOutcome::Dispatch(token(idx, conn.gen), Box::new(req))
                }
                Ok(None) if conn.eof => ParseOutcome::CloseNow,
                Ok(None) => ParseOutcome::Wait,
                Err(_) => ParseOutcome::Reject,
            }
        };
        match outcome {
            ParseOutcome::Dispatch(tok, req) => self.shared.jobs.push(Job {
                shard: self.id,
                token: tok,
                req: *req,
            }),
            ParseOutcome::CloseNow => self.close(idx),
            ParseOutcome::Reject => {
                // Same wire behavior as the blocking transport: answer
                // 400, count it, close.
                self.shared
                    .metrics
                    .note_response(Status::BadRequest, Duration::ZERO);
                let mut bytes = Vec::new();
                let _ = Response::status(Status::BadRequest).write_to(&mut bytes);
                self.start_write(idx, bytes, true);
            }
            ParseOutcome::Wait => {}
        }
    }

    fn start_write(&mut self, idx: usize, bytes: Vec<u8>, close_after: bool) {
        {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            conn.out = bytes;
            conn.out_pos = 0;
            conn.state = ConnState::Writing { close_after };
            conn.last_activity = Instant::now();
        }
        // Opportunistic flush: most responses fit the socket buffer and
        // complete without another poll round trip.
        self.drive_write(idx);
    }

    /// Nonblocking write until flushed or the socket pushes back.
    fn drive_write(&mut self, idx: usize) {
        enum Outcome {
            Pending,
            Dead,
            Done { close_after: bool },
        }
        let outcome = {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            let ConnState::Writing { close_after } = conn.state else {
                return;
            };
            loop {
                if conn.out_pos >= conn.out.len() {
                    break Outcome::Done { close_after };
                }
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => break Outcome::Dead,
                    Ok(n) => conn.out_pos += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break Outcome::Pending,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break Outcome::Dead,
                }
            }
        };
        match outcome {
            Outcome::Pending => {}
            Outcome::Dead => self.close(idx),
            Outcome::Done { close_after: true } => self.close(idx),
            Outcome::Done { close_after: false } => {
                if let Some(conn) = self.conns[idx].as_mut() {
                    conn.state = ConnState::Reading;
                    conn.out = Vec::new();
                    conn.out_pos = 0;
                    conn.last_activity = Instant::now();
                }
                self.advance_parse(idx);
            }
        }
    }

    /// Apply a handler-pool directive to the connection it belongs to
    /// (if the slot still holds that generation).
    fn apply(&mut self, tok: u64, directive: Directive) {
        let idx = (tok & u32::MAX as u64) as usize;
        let gen = (tok >> 32) as u32;
        let valid = matches!(
            self.conns.get(idx).and_then(Option::as_ref),
            Some(c) if c.gen == gen && c.state == ConnState::Handling
        );
        if !valid {
            return;
        }
        match directive {
            Directive::Close => self.close(idx),
            Directive::Respond { bytes, close } => self.start_write(idx, bytes, close),
        }
    }
}

fn drain_wake(wake_rx: &UnixStream) {
    let mut buf = [0u8; 64];
    loop {
        match (&*wake_rx).read(&mut buf) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break, // WouldBlock: drained
        }
    }
}

/// The handler-pool worker loop: runs the request seam sequence the
/// per-connection thread used to run, then mails the directive back.
fn worker_loop(shared: Arc<Shared>) {
    while let Some(job) = shared.jobs.pop() {
        let directive = process_request(&shared, &job.req);
        let mb = &shared.shards[job.shard];
        mb.done.lock().push((job.token, directive));
        mb.wake();
    }
}

/// One request through the preserved seam order: fault decision first
/// (before any span), then request span → handler span → handler →
/// `note_response` → write span → serialization.
fn process_request(shared: &Shared, req: &Request) -> Directive {
    use marketscope_telemetry::TraceSpan;
    let metrics = &shared.metrics;
    let close = req.wants_close();
    // The fault injector gets first refusal, before any span opens: a
    // reset market never answers, so it must not trace either.
    let fault = match &shared.faults {
        Some(f) => f.decide(&req.path),
        None => FaultAction::Serve,
    };
    match fault {
        FaultAction::Serve | FaultAction::Truncate => {}
        // Slam the door without a byte: the client sees a reset or a
        // mid-message EOF.
        FaultAction::Reset => return Directive::Close,
        // Added latency, then serve normally. Sleeping a pool worker is
        // deliberate: a stalled market is slow *capacity*, not just a
        // slow socket.
        FaultAction::Stall(d) => std::thread::sleep(d),
        // Answer for the handler: the market is erroring, not slow.
        FaultAction::Error {
            status,
            retry_after,
        } => {
            let resp = match retry_after {
                Some(d) => Response::status_with_retry_after(status, d),
                None => Response::status(status),
            };
            metrics.note_response(status, Duration::ZERO);
            return Directive::Respond {
                bytes: serialize(&resp),
                close,
            };
        }
    }
    // A propagated trace context makes this request a remote child of
    // the client-side attempt span; without one (or without a tracer)
    // every span below is a no-op.
    let req_span = match &metrics.tracer {
        Some(t) => t.child_of(
            req.trace_context(),
            "server",
            &format!("{} {}", req.method.as_str(), req.path),
        ),
        None => TraceSpan::noop(),
    };
    let start = Instant::now();
    let handler_span = match &metrics.tracer {
        Some(t) => t.span("server", "handler"),
        None => TraceSpan::noop(),
    };
    // A panicking handler must not kill a pool worker (that would shrink
    // the pool forever). Catch it and drop the connection — the same
    // observable outcome the per-connection transport gave the peer.
    let handled =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| shared.handler.handle(req)));
    handler_span.finish();
    let resp = match handled {
        Ok(resp) => resp,
        Err(_) => {
            req_span.event("handler-panic");
            req_span.finish();
            return Directive::Close;
        }
    };
    // Count and time *after* the handler so a `/__metrics` scrape
    // renders a self-consistent exposition: for every market,
    // `requests_total == handler_nanos_count` and the in-flight scrape
    // itself is excluded from both.
    metrics.note_response(resp.status, start.elapsed());
    req_span.event(&format!("status:{}", resp.status.code()));
    let write_span = match &metrics.tracer {
        Some(t) => t.span("server", "write"),
        None => TraceSpan::noop(),
    };
    let directive = if fault == FaultAction::Truncate {
        // Cut the body mid-stream and close so the client sees an
        // unexpected EOF. An empty body can't be cut — drop the
        // connection instead (same observable failure).
        if resp.body.is_empty() {
            Directive::Close
        } else {
            let mut bytes = Vec::new();
            let _ = resp.write_truncated_to(&mut bytes, resp.body.len() / 2);
            Directive::Respond { bytes, close: true }
        }
    } else {
        Directive::Respond {
            bytes: serialize(&resp),
            close,
        }
    };
    write_span.finish();
    req_span.finish();
    directive
}

fn serialize(resp: &Response) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(resp.body.len() + 128);
    // Writing to a Vec cannot fail.
    let _ = resp.write_to(&mut bytes);
    bytes
}

/// The blocking accept loop: backoff on transient errors, shed above the
/// connection ceiling, round-robin the rest across shards.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut next_shard = 0usize;
    let mut backoff = ACCEPT_BACKOFF_MIN;
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => {
                backoff = ACCEPT_BACKOFF_MIN;
                s
            }
            Err(_) => {
                // EMFILE, ENFILE, ECONNABORTED: transient. Count it and
                // back off instead of spinning hot on the error.
                shared.metrics.accept_errors.inc();
                if let Some(log) = &shared.metrics.log {
                    log.record(
                        LogLevel::Warn,
                        "net.reactor",
                        "transient accept error, backing off",
                        &[("backoff_ms", &backoff.as_millis().to_string())],
                    );
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                continue;
            }
        };
        if shared.metrics.live.get() >= shared.cfg.max_connections as i64 {
            shared.metrics.shed.inc();
            if let Some(log) = &shared.metrics.log {
                log.record(
                    LogLevel::Warn,
                    "net.reactor",
                    "connection shed at ceiling",
                    &[("max_connections", &shared.cfg.max_connections.to_string())],
                );
            }
            // Best-effort single write; the shed path must never block
            // the acceptor.
            let _ = stream.set_nonblocking(true);
            let _ = (&stream).write(SHED_RESPONSE);
            continue;
        }
        shared.metrics.live.inc();
        let mb = &shared.shards[next_shard % shared.shards.len()];
        next_shard = next_shard.wrapping_add(1);
        mb.inject.lock().push(stream);
        mb.wake();
    }
}

/// A running reactor transport: the fixed thread set serving one bound
/// listener. Owned by [`ServerHandle`](crate::server::ServerHandle).
pub(crate) struct Transport {
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    shard_threads: Vec<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl Transport {
    /// Spawn the acceptor, shard, and worker threads for `listener`.
    pub(crate) fn spawn(
        listener: TcpListener,
        handler: Arc<dyn Handler>,
        metrics: Arc<ServerMetrics>,
        faults: Option<Arc<FaultInjector>>,
        cfg: ReactorConfig,
        shutdown: Arc<AtomicBool>,
    ) -> std::io::Result<Transport> {
        let local = listener.local_addr()?;
        let cfg = ReactorConfig {
            shards: cfg.shards.max(1),
            handler_threads: cfg.handler_threads.max(1),
            max_connections: cfg.max_connections.max(1),
            keep_alive: cfg.keep_alive,
        };
        let mut mailboxes = Vec::with_capacity(cfg.shards);
        let mut wake_rxs = Vec::with_capacity(cfg.shards);
        for _ in 0..cfg.shards {
            let (rx, tx) = UnixStream::pair()?;
            rx.set_nonblocking(true)?;
            tx.set_nonblocking(true)?;
            mailboxes.push(Arc::new(ShardMailbox {
                inject: Mutex::new(Vec::new()),
                done: Mutex::new(Vec::new()),
                wake_tx: tx,
            }));
            wake_rxs.push(rx);
        }
        let shared = Arc::new(Shared {
            handler,
            metrics,
            faults,
            shutdown,
            cfg,
            jobs: JobQueue::new(),
            shards: mailboxes,
        });
        let mut shard_threads = Vec::with_capacity(shared.cfg.shards);
        for (id, rx) in wake_rxs.into_iter().enumerate() {
            let shard_shared = Arc::clone(&shared);
            shard_threads.push(
                std::thread::Builder::new()
                    .name(format!("http-shard-{id}"))
                    .spawn(move || ShardState::new(id, shard_shared).run(rx))?,
            );
        }
        let mut worker_threads = Vec::with_capacity(shared.cfg.handler_threads);
        for w in 0..shared.cfg.handler_threads {
            let worker_shared = Arc::clone(&shared);
            worker_threads.push(
                std::thread::Builder::new()
                    .name(format!("http-worker-{w}"))
                    .spawn(move || worker_loop(worker_shared))?,
            );
        }
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name(format!("http-accept-{local}"))
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Transport {
            shared,
            accept,
            shard_threads,
            worker_threads,
        })
    }

    /// Wake and join every thread. The caller has already set the shared
    /// shutdown flag.
    pub(crate) fn stop(self, addr: SocketAddr) {
        // Wake the blocking accept with a no-op connection.
        let _ = TcpStream::connect(addr);
        let _ = self.accept.join();
        for mb in &self.shared.shards {
            mb.wake();
        }
        for t in self.shard_threads {
            let _ = t.join();
        }
        // Sockets the acceptor counted but no shard adopted before the
        // flag flipped: balance the gauge as they drop.
        for mb in &self.shared.shards {
            let leftover = std::mem::take(&mut *mb.inject.lock());
            for _ in leftover {
                self.shared.metrics.live.dec();
            }
        }
        self.shared.jobs.close();
        for t in self.worker_threads {
            let _ = t.join();
        }
    }
}
