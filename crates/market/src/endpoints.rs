//! JSON encoding of store metadata.
//!
//! Wire format is deliberately market-flavoured: Google Play reports an
//! `installs` *range string* ("10,000 - 100,000"), Chinese stores report a
//! raw `downloads` counter (or nothing at all for Xiaomi/App China); every
//! store reports name, package, version, category, rating, update date and
//! developer display name. The crawler has to normalize — exactly the
//! chore Section 4.2 describes.

use marketscope_core::json::Json;
use marketscope_core::{InstallRange, MarketId};
use marketscope_ecosystem::{profile, Listing, World};

/// Encode one listing's store-visible metadata.
pub fn listing_json(world: &World, listing: &Listing) -> Json {
    let app = world.app(listing.app);
    let dev = world.developer(app.developer);
    let p = profile(listing.market);
    let mut fields: Vec<(&'static str, Json)> = vec![
        ("package", Json::from(app.package.as_str())),
        ("name", Json::from(app.label.as_str())),
        ("version_code", Json::from(listing.version as u64)),
        (
            "version_name",
            Json::from(format!(
                "{}.{}.0",
                listing.version / 10,
                listing.version % 10
            )),
        ),
        ("category", Json::from(listing.raw_category.as_str())),
        ("rating", Json::from(listing.rating)),
        ("updated", Json::from(listing.updated.to_string())),
        ("developer", Json::from(dev.display_name.as_str())),
    ];
    if p.reports_installs {
        if let Some(d) = listing.downloads {
            if listing.market == MarketId::GooglePlay {
                fields.push(("installs", Json::from(install_range_string(d))));
            } else {
                fields.push(("downloads", Json::from(d)));
            }
        }
    }
    Json::obj(fields)
}

/// Google Play's range rendering of an install counter. Above 1M the
/// real store keeps binning (1M–5M, 5M–10M, 10M–50M, ...); reproducing
/// that keeps aggregate-download estimates from collapsing to 1M per
/// blockbuster.
pub fn install_range_string(installs: u64) -> String {
    if installs >= 1_000_000 {
        // Lower bound = largest 1/5 × 10^k step at or below the value.
        let mut lo: u64 = 1_000_000;
        loop {
            let next = if lo.to_string().starts_with('1') {
                lo * 5
            } else {
                lo * 2
            };
            if next > installs {
                break;
            }
            lo = next;
        }
        return format!("{}+", group(lo));
    }
    let r = InstallRange::from_count(installs);
    match r.upper_bound() {
        Some(hi) => format!("{} - {}", group(r.lower_bound()), group(hi)),
        None => format!("{}+", group(r.lower_bound())),
    }
}

/// Parse a Google-Play-style range string back to its lower bound.
pub fn parse_install_range(s: &str) -> Option<u64> {
    let lower = s.split(['-', '+']).next()?.trim();
    let digits: String = lower.chars().filter(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn group(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        let remaining = s.len() - i;
        if i > 0 && remaining % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_strings_match_google_play_style() {
        assert_eq!(install_range_string(75_123), "10,000 - 100,000");
        assert_eq!(install_range_string(5), "0 - 10");
        assert_eq!(install_range_string(2_000_000), "1,000,000+");
        assert_eq!(install_range_string(7_000_000), "5,000,000+");
        assert_eq!(install_range_string(60_000_000), "50,000,000+");
        assert_eq!(install_range_string(1_500_000_000), "1,000,000,000+");
    }

    #[test]
    fn range_string_round_trips_to_lower_bound() {
        for v in [0u64, 9, 75_123, 999_999] {
            let s = install_range_string(v);
            let lo = parse_install_range(&s).unwrap();
            assert_eq!(lo, InstallRange::from_count(v).lower_bound(), "{s}");
        }
        // Above 1M the bound tightens but stays below the raw value.
        for v in [5_000_000u64, 42_000_000, 800_000_000] {
            let lo = parse_install_range(&install_range_string(v)).unwrap();
            assert!(lo <= v && lo >= v / 5, "{v} → {lo}");
        }
    }

    #[test]
    fn grouping() {
        assert_eq!(group(0), "0");
        assert_eq!(group(1_000), "1,000");
        assert_eq!(group(1_234_567), "1,234,567");
    }
}
