//! One market's HTTP server.

use crate::endpoints::listing_json;
use marketscope_apk::zip::ZipArchive;
use marketscope_core::json::Json;
use marketscope_core::MarketId;
use marketscope_ecosystem::{profile, ListingId, World};
use marketscope_net::fault::FaultInjector;
use marketscope_net::http::{Request, Response, Status};
use marketscope_net::ratelimit::{RateLimitMetrics, TokenBucket};
use marketscope_net::router::Router;
use marketscope_net::server::{HttpServer, ServerHandle, ServerMetrics};
use marketscope_telemetry::trace::{Tracer, TracerConfig};
use marketscope_telemetry::{EventLog, Registry, SloEvaluator};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;

/// Which crawl campaign the server is serving (Section 3 vs Section 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrawlPhase {
    /// August 2017: everything listed.
    First,
    /// April 2018: listings removed in between return 404 and vanish
    /// from the index.
    Second,
}

/// Shared per-market serving state.
struct MarketState {
    world: Arc<World>,
    market: MarketId,
    phase: RwLock<CrawlPhase>,
    /// Catalog in stable index order.
    catalog: Vec<ListingId>,
    by_package: HashMap<String, ListingId>,
    /// APK-download rate limiter (Google Play only).
    apk_bucket: Option<TokenBucket>,
}

impl MarketState {
    fn visible(&self, id: ListingId) -> bool {
        match *self.phase.read() {
            CrawlPhase::First => true,
            CrawlPhase::Second => !self.world.listing(id).removed_in_second_crawl,
        }
    }

    fn lookup(&self, package: &str) -> Option<ListingId> {
        let id = *self.by_package.get(package)?;
        self.visible(id).then_some(id)
    }
}

/// Handles into the fleet's ops plane, shared by every server in a
/// fleet: the SLO evaluator the scraper updates each tick (served at
/// `GET /__slo`) and the structured event log (served at `GET /__log`,
/// and fed by the server's own fault/shed seams).
#[derive(Clone)]
pub struct OpsHandles {
    /// Fleet-wide SLO evaluator; the scraper's tick hook refreshes it.
    pub slo: Arc<Mutex<SloEvaluator>>,
    /// Fleet-wide structured event log.
    pub log: Arc<EventLog>,
}

/// A running market server.
pub struct MarketServer {
    market: MarketId,
    handle: ServerHandle,
    state: Arc<MarketState>,
    registry: Arc<Registry>,
    tracer: Arc<Tracer>,
}

/// Page size for the catalog index.
pub const PAGE_SIZE: usize = 50;

impl MarketServer {
    /// Spawn a server for `market` over `world` with a private telemetry
    /// registry.
    pub fn spawn(
        world: Arc<World>,
        market: MarketId,
    ) -> Result<MarketServer, marketscope_net::NetError> {
        MarketServer::spawn_with_registry(world, market, Arc::new(Registry::new()))
    }

    /// Spawn a server whose instruments live in `registry` (shared across
    /// the fleet by [`MarketFleet`](crate::MarketFleet)). Every server
    /// instrument carries a `market="<slug>"` label, and the server
    /// exposes the whole registry at `GET /__metrics` in Prometheus text
    /// format.
    pub fn spawn_with_registry(
        world: Arc<World>,
        market: MarketId,
        registry: Arc<Registry>,
    ) -> Result<MarketServer, marketscope_net::NetError> {
        // Local sampling stays off, but the journal is live: requests
        // arriving with a propagated trace context still record here.
        let tracer = Arc::new(Tracer::new(TracerConfig::propagate_only(4096)));
        MarketServer::spawn_with_telemetry(world, market, registry, tracer)
    }

    /// Spawn a server with a shared registry *and* a shared tracer. The
    /// server opens spans for requests that arrive with a propagated
    /// `x-marketscope-trace` header, and exposes the tracer's journal as
    /// Chrome trace-event JSON at `GET /__trace`.
    pub fn spawn_with_telemetry(
        world: Arc<World>,
        market: MarketId,
        registry: Arc<Registry>,
        tracer: Arc<Tracer>,
    ) -> Result<MarketServer, marketscope_net::NetError> {
        MarketServer::spawn_inner(world, market, registry, tracer, None, None)
    }

    /// Spawn a server behind a seeded [`FaultInjector`]: requests may be
    /// reset, stalled, truncated or answered 5xx before the market logic
    /// runs (ops paths under `/__` are exempt). Pair with a
    /// [`ChaosProfile`](crate::chaos::ChaosProfile) for paper-flavoured
    /// per-market weather.
    pub fn spawn_with_chaos(
        world: Arc<World>,
        market: MarketId,
        registry: Arc<Registry>,
        tracer: Arc<Tracer>,
        faults: FaultInjector,
    ) -> Result<MarketServer, marketscope_net::NetError> {
        MarketServer::spawn_inner(world, market, registry, tracer, Some(faults), None)
    }

    /// Spawn a server wired into a fleet ops plane: `/__slo` serves the
    /// evaluator's latest verdicts, `/__log` serves the shared event
    /// log, `/__health` gains an `slo` summary, and the server's own
    /// incident seams (fault injections, connection shed) record events.
    pub fn spawn_with_ops(
        world: Arc<World>,
        market: MarketId,
        registry: Arc<Registry>,
        tracer: Arc<Tracer>,
        faults: Option<FaultInjector>,
        ops: OpsHandles,
    ) -> Result<MarketServer, marketscope_net::NetError> {
        MarketServer::spawn_inner(world, market, registry, tracer, faults, Some(ops))
    }

    fn spawn_inner(
        world: Arc<World>,
        market: MarketId,
        registry: Arc<Registry>,
        tracer: Arc<Tracer>,
        faults: Option<FaultInjector>,
        ops: Option<OpsHandles>,
    ) -> Result<MarketServer, marketscope_net::NetError> {
        let faults = faults.map(Arc::new);
        let started = std::time::Instant::now();
        // One explicit transport config per market server so /__health can
        // report the ceiling the acceptor sheds against. Defaults are the
        // reactor's (2 shards, 4 handler workers, 8192-connection ceiling):
        // a whole fleet stays at a constant handful of threads per market.
        let transport = marketscope_net::ReactorConfig::default();
        let catalog: Vec<ListingId> = world.market_listings(market).to_vec();
        let by_package = catalog
            .iter()
            .map(|id| {
                (
                    world
                        .app(world.listing(*id).app)
                        .package
                        .as_str()
                        .to_owned(),
                    *id,
                )
            })
            .collect();
        let p = profile(market);
        let state = Arc::new(MarketState {
            world,
            market,
            phase: RwLock::new(CrawlPhase::First),
            catalog,
            by_package,
            // Tight enough that a bulk harvest only gets a small direct
            // sample (the paper managed 287K of 2.03M directly, ~14%).
            apk_bucket: p.rate_limited_downloads.then(|| {
                TokenBucket::instrumented(
                    20,
                    2.0,
                    RateLimitMetrics::register(
                        &registry,
                        &[("limiter", "apk_download"), ("market", market.slug())],
                    ),
                )
            }),
        });
        let router = build_router(Arc::clone(&state))
            .get("/__metrics", {
                let registry = Arc::clone(&registry);
                move |_req: &Request, _: &marketscope_net::router::Params| {
                    Response::ok("text/plain; version=0.0.4", registry.render().into_bytes())
                }
            })
            .get("/__trace", {
                let tracer = Arc::clone(&tracer);
                move |_req: &Request, _: &marketscope_net::router::Params| {
                    let json = marketscope_telemetry::chrome_trace(&tracer.snapshot());
                    Response::ok("application/json", json.into_bytes())
                }
            })
            .get("/__slo", {
                let ops = ops.clone();
                move |_req: &Request, _: &marketscope_net::router::Params| {
                    let verdicts = ops
                        .as_ref()
                        .map(|o| o.slo.lock().verdicts())
                        .unwrap_or_default();
                    Response::json(&crate::opsjson::slo_json(&verdicts))
                }
            })
            .get("/__log", {
                let ops = ops.clone();
                move |_req: &Request, _: &marketscope_net::router::Params| {
                    let snap = ops.as_ref().map(|o| o.log.snapshot()).unwrap_or_default();
                    Response::json(&crate::opsjson::log_json(&snap))
                }
            })
            .get("/__health", {
                // The health closure reads the same registry instruments
                // ServerMetrics registers (get-or-create by identical
                // name+labels returns the same Arc), so totals here match
                // `/__metrics` exactly; section assembly is shared with
                // the other ops surfaces via `opsjson`.
                let st = Arc::clone(&state);
                let requests = registry.counter(
                    "marketscope_net_requests_total",
                    &[("market", market.slug())],
                );
                let live = registry.gauge(
                    "marketscope_net_live_connections",
                    &[("market", market.slug())],
                );
                let shed = registry.counter(
                    "marketscope_net_connections_shed_total",
                    &[("market", market.slug())],
                );
                let accept_errors = registry.counter(
                    "marketscope_net_accept_errors_total",
                    &[("market", market.slug())],
                );
                let transport = transport.clone();
                let faults = faults.clone();
                let ops = ops.clone();
                move |_req: &Request, _: &marketscope_net::router::Params| {
                    let phase = match *st.phase.read() {
                        CrawlPhase::First => "first",
                        CrawlPhase::Second => "second",
                    };
                    let open = live.get().max(0) as u64;
                    let slo = match &ops {
                        Some(o) => crate::opsjson::slo_summary_json(&o.slo.lock().verdicts()),
                        None => Json::Null,
                    };
                    Response::json(&Json::obj([
                        ("status", Json::from("ok")),
                        ("market", Json::from(st.market.slug())),
                        ("phase", Json::from(phase)),
                        (
                            "uptime_ms",
                            Json::from(started.elapsed().as_millis() as u64),
                        ),
                        ("requests_total", Json::from(requests.get())),
                        ("live_connections", Json::from(open)),
                        ("catalog_size", Json::from(st.catalog.len())),
                        (
                            "transport",
                            crate::opsjson::transport_json(
                                &transport,
                                open,
                                shed.get(),
                                accept_errors.get(),
                            ),
                        ),
                        (
                            "rate_limiter",
                            crate::opsjson::rate_limiter_json(st.apk_bucket.as_ref()),
                        ),
                        ("chaos", crate::opsjson::chaos_json(faults.as_deref())),
                        ("slo", slo),
                    ]))
                }
            });
        let mut metrics = ServerMetrics::register(&registry, &[("market", market.slug())])
            .traced(Arc::clone(&tracer));
        if let Some(o) = &ops {
            metrics = metrics.logged(Arc::clone(&o.log));
        }
        let handle =
            HttpServer::spawn_configured("127.0.0.1:0", router, metrics, faults, transport)?;
        Ok(MarketServer {
            market,
            handle,
            state,
            registry,
            tracer,
        })
    }

    /// The registry this server's instruments are registered in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The tracer recording this server's request spans.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The market this server simulates.
    pub fn market(&self) -> MarketId {
        self.market
    }

    /// Bound address.
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr()
    }

    /// Requests served so far.
    pub fn request_count(&self) -> u64 {
        self.handle.request_count()
    }

    /// Total faults this server's injector has fired (`0` when the
    /// server runs without chaos).
    pub fn faults_injected(&self) -> u64 {
        self.handle.fault_injector().map_or(0, |f| f.injected())
    }

    /// Switch the serving phase (both campaigns run against one server).
    pub fn set_phase(&self, phase: CrawlPhase) {
        *self.state.phase.write() = phase;
    }

    /// Stop serving.
    pub fn stop(&self) {
        self.handle.stop();
    }
}

fn build_router(state: Arc<MarketState>) -> Router {
    let p = profile(state.market);
    let mut router = Router::new();

    // Catalog index: /index?page=N → { packages: [...], next: N+1? }
    {
        let st = Arc::clone(&state);
        router = router.get("/index", move |req: &Request, _| {
            let page: usize = req
                .query_param("page")
                .and_then(|p| p.parse().ok())
                .unwrap_or(0);
            let visible: Vec<&ListingId> =
                st.catalog.iter().filter(|id| st.visible(**id)).collect();
            let start = page * PAGE_SIZE;
            if start >= visible.len() && page != 0 {
                return Response::json(&Json::obj([("packages", Json::Arr(vec![]))]));
            }
            let slice = &visible[start.min(visible.len())..(start + PAGE_SIZE).min(visible.len())];
            let packages: Vec<Json> = slice
                .iter()
                .map(|id| Json::from(st.world.app(st.world.listing(**id).app).package.as_str()))
                .collect();
            let mut fields = vec![("packages", Json::Arr(packages))];
            if start + PAGE_SIZE < visible.len() {
                fields.push(("next", Json::from((page + 1) as u64)));
            }
            Response::json(&Json::obj(fields))
        });
    }

    // Baidu-style sequential integer detail pages: /soft/{n}.
    if p.incremental_index {
        let st = Arc::clone(&state);
        router = router.get("/soft/{n}", move |_req, params| {
            let Ok(n) = params["n"].parse::<usize>() else {
                return Response::status(Status::BadRequest);
            };
            match st.catalog.get(n) {
                Some(id) if st.visible(*id) => {
                    Response::json(&listing_json(&st.world, st.world.listing(*id)))
                }
                _ => Response::status(Status::NotFound),
            }
        });
    }

    // App detail: /app/{pkg}.
    {
        let st = Arc::clone(&state);
        router = router.get("/app/{pkg}", move |_req, params| {
            match st.lookup(&params["pkg"]) {
                Some(id) => Response::json(&listing_json(&st.world, st.world.listing(id))),
                None => Response::status(Status::NotFound),
            }
        });
    }

    // Search by app name or package: /search?q=...
    {
        let st = Arc::clone(&state);
        router = router.get("/search", move |req: &Request, _| {
            let Some(q) = req.query_param("q") else {
                return Response::status(Status::BadRequest);
            };
            let q_lower = q.to_lowercase();
            let mut hits = Vec::new();
            for id in &st.catalog {
                if !st.visible(*id) {
                    continue;
                }
                let app = st.world.app(st.world.listing(*id).app);
                if app.package.as_str() == q || app.label.to_lowercase().contains(&q_lower) {
                    hits.push(Json::from(app.package.as_str()));
                    if hits.len() >= 50 {
                        break;
                    }
                }
            }
            Response::json(&Json::obj([("results", Json::Arr(hits))]))
        });
    }

    // Related apps for BFS crawling: same developer, then same category.
    {
        let st = Arc::clone(&state);
        router = router.get("/related/{pkg}", move |_req, params| {
            let Some(id) = st.lookup(&params["pkg"]) else {
                return Response::status(Status::NotFound);
            };
            let seed_app = st.world.app(st.world.listing(id).app);
            let mut related = Vec::new();
            // Same developer everywhere in this market.
            for other in &st.catalog {
                if *other == id || !st.visible(*other) {
                    continue;
                }
                let app = st.world.app(st.world.listing(*other).app);
                if app.developer == seed_app.developer {
                    related.push(Json::from(app.package.as_str()));
                }
            }
            // Category neighbours: deterministic window around the seed
            // (at most 401 listings scanned, as before).
            let pos = st.catalog.iter().position(|l| *l == id).unwrap_or(0);
            for offset in (1..st.catalog.len()).take(401) {
                if related.len() >= 12 {
                    break;
                }
                let other = st.catalog[(pos + offset) % st.catalog.len()];
                if other == id || !st.visible(other) {
                    continue;
                }
                let app = st.world.app(st.world.listing(other).app);
                if app.category == seed_app.category {
                    related.push(Json::from(app.package.as_str()));
                }
            }
            Response::json(&Json::obj([("related", Json::Arr(related))]))
        });
    }

    // Developer submission (Section 2.1): POST /upload with the APK as
    // the body; certificates travel as headers.
    {
        let market = state.market;
        router = router.post("/upload", move |req: &Request, _| {
            let outcome = crate::submission::evaluate(market, &req.headers, &req.body);
            let doc = crate::submission::outcome_json(&outcome);
            match outcome {
                crate::submission::SubmissionOutcome::Rejected(_) => Response {
                    status: Status::BadRequest,
                    headers: std::collections::BTreeMap::from([(
                        "content-type".to_owned(),
                        "application/json".to_owned(),
                    )]),
                    body: doc.to_string_compact().into_bytes(),
                },
                _ => Response::json(&doc),
            }
        });
    }

    // APK download: /apk/{pkg} (the listed version's bytes).
    {
        let st = Arc::clone(&state);
        let obfuscate = p.requires_obfuscation;
        // Channel injection is a web-company/specialized-store habit
        // (user-acquisition attribution); Google Play and the vendor
        // stores serve the developer's bytes untouched — which is what
        // leaves some multi-store listings byte-identical (Section 5.3).
        let channel = match state.market.kind() {
            marketscope_core::MarketKind::WebCompany
            | marketscope_core::MarketKind::Specialized => {
                Some(format!("{}channel", state.market.slug()))
            }
            _ => None,
        };
        router = router.get("/apk/{pkg}", move |_req, params| {
            if let Some(bucket) = &st.apk_bucket {
                if !bucket.try_acquire() {
                    // Lands on the server-side handler span (if any), so
                    // a traced harvest shows exactly which attempts the
                    // limiter stalled.
                    marketscope_telemetry::trace::current_event("rate_limited");
                    // Tell the client when a token will be free: an
                    // honest `retry-after` lets a polite retry policy
                    // decide whether waiting fits its budget (for the
                    // drained bulk-harvest bucket it never does, which
                    // is what pushes the crawler onto the backfill path).
                    return Response::status_with_retry_after(
                        Status::TooManyRequests,
                        bucket.wait_hint(),
                    );
                }
            }
            let Some(id) = st.lookup(&params["pkg"]) else {
                return Response::status(Status::NotFound);
            };
            let listing = st.world.listing(id);
            let bytes = st.world.build_apk(listing.app, listing.version, obfuscate);
            let bytes = match &channel {
                Some(name) => match inject_channel(&bytes, name, st.market) {
                    Ok(b) => b,
                    Err(_) => return Response::status(Status::InternalError),
                },
                None => bytes,
            };
            Response::ok("application/vnd.android.package-archive", bytes)
        });
    }

    router
}

/// Store-side channel injection: add `META-INF/<name>` recording the
/// distribution source. Signature stays valid because the payload digest
/// excludes `META-INF/` (Section 5.3's `kgchannel` mechanism).
pub fn inject_channel(
    apk: &[u8],
    name: &str,
    market: MarketId,
) -> Result<Vec<u8>, marketscope_apk::ApkError> {
    let mut zip = ZipArchive::parse(apk)?;
    zip.add(
        &format!("META-INF/{name}"),
        format!("source={}", market.slug()).into_bytes(),
    )?;
    Ok(zip.to_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use marketscope_apk::ParsedApk;
    use marketscope_ecosystem::{generate, Scale, WorldConfig};
    use marketscope_net::HttpClient;

    fn world() -> Arc<World> {
        Arc::new(generate(WorldConfig {
            seed: 21,
            scale: Scale { divisor: 40_000 },
            ..WorldConfig::default()
        }))
    }

    #[test]
    fn index_pages_cover_catalog() {
        let w = world();
        let server = MarketServer::spawn(Arc::clone(&w), MarketId::HuaweiMarket).unwrap();
        let client = HttpClient::new();
        let mut seen = Vec::new();
        let mut page = 0u64;
        loop {
            let doc = client
                .get_json(server.addr(), &format!("/index?page={page}"))
                .unwrap();
            for p in doc.get("packages").unwrap().as_arr().unwrap() {
                seen.push(p.as_str().unwrap().to_owned());
            }
            match doc.get("next").and_then(|n| n.as_u64()) {
                Some(n) => page = n,
                None => break,
            }
        }
        assert_eq!(seen.len(), w.market_listings(MarketId::HuaweiMarket).len());
    }

    #[test]
    fn detail_and_apk_round_trip() {
        let w = world();
        let server = MarketServer::spawn(Arc::clone(&w), MarketId::TencentMyapp).unwrap();
        let client = HttpClient::new();
        let doc = client.get_json(server.addr(), "/index").unwrap();
        let pkg = doc.get("packages").unwrap().as_arr().unwrap()[0]
            .as_str()
            .unwrap()
            .to_owned();
        let detail = client
            .get_json(server.addr(), &format!("/app/{pkg}"))
            .unwrap();
        assert_eq!(detail.get("package").unwrap().as_str().unwrap(), pkg);
        assert!(detail.get("downloads").is_some() || detail.get("installs").is_some());
        let apk = client.get(server.addr(), &format!("/apk/{pkg}")).unwrap();
        let parsed = ParsedApk::parse(&apk.body).unwrap();
        assert_eq!(parsed.manifest.package.as_str(), pkg);
        // Tencent injects its channel file; the signature must survive.
        assert!(parsed
            .channels
            .iter()
            .any(|(n, _)| n.contains("tencentchannel")));
        assert!(parsed.signature_valid);
    }

    #[test]
    fn trace_endpoint_serves_propagated_spans_as_chrome_json() {
        let w = world();
        let tracer = Arc::new(Tracer::new(TracerConfig::always(256)));
        let server = MarketServer::spawn_with_telemetry(
            Arc::clone(&w),
            MarketId::HuaweiMarket,
            Arc::new(Registry::new()),
            Arc::clone(&tracer),
        )
        .unwrap();
        let client = marketscope_net::client::HttpClient::builder()
            .tracer(Arc::clone(&tracer))
            .build();
        let root = tracer.root_span("crawler", "fetch index");
        client.get(server.addr(), "/index").unwrap();
        root.finish();

        // Server spans record after the response write; poll the journal
        // through the endpoint itself until they show up.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let resp = client.get(server.addr(), "/__trace").unwrap();
            let text = String::from_utf8(resp.body).unwrap();
            let doc =
                marketscope_core::json::Json::parse(&text).expect("__trace must serve valid JSON");
            let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
            if events
                .iter()
                .any(|e| e.get("name").and_then(|n| n.as_str()) == Some("handler"))
            {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "no handler span ever appeared in {text}"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        server.stop();
    }

    #[test]
    fn health_endpoint_reports_ops_state() {
        let w = world();
        let server = MarketServer::spawn(Arc::clone(&w), MarketId::GooglePlay).unwrap();
        let client = HttpClient::new();
        client.get_json(server.addr(), "/index").unwrap();
        let health = client.get_json(server.addr(), "/__health").unwrap();
        assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(
            health.get("market").unwrap().as_str(),
            Some(MarketId::GooglePlay.slug())
        );
        assert_eq!(health.get("phase").unwrap().as_str(), Some("first"));
        // The /index request above is counted; the health request itself
        // is not yet (metrics record after the handler returns).
        assert_eq!(health.get("requests_total").unwrap().as_u64(), Some(1));
        assert_eq!(
            health.get("catalog_size").unwrap().as_u64(),
            Some(w.market_listings(MarketId::GooglePlay).len() as u64)
        );
        assert!(health.get("uptime_ms").unwrap().as_u64().is_some());
        // Google Play rate-limits APK downloads, so the limiter reports.
        let limiter = health.get("rate_limiter").unwrap();
        assert_eq!(
            limiter.get("limiter").unwrap().as_str(),
            Some("apk_download")
        );
        assert!(limiter.get("wait_hint_ms").unwrap().as_u64().is_some());
        // The transport section mirrors the reactor config plus live
        // counters. One pooled keep-alive client connection is open (it
        // just carried this very health request).
        let transport = health.get("transport").unwrap();
        assert!(transport.get("shards").unwrap().as_u64().unwrap() >= 1);
        assert!(transport.get("handler_threads").unwrap().as_u64().unwrap() >= 1);
        assert!(transport.get("max_connections").unwrap().as_u64().unwrap() >= 1);
        assert!(transport.get("open_connections").unwrap().as_u64().unwrap() >= 1);
        assert_eq!(transport.get("connections_shed").unwrap().as_u64(), Some(0));
        assert_eq!(transport.get("accept_errors").unwrap().as_u64(), Some(0));
        // No chaos and no ops plane on a plain spawn.
        assert_eq!(health.get("chaos"), Some(&Json::Null));
        assert_eq!(health.get("slo"), Some(&Json::Null));

        server.set_phase(CrawlPhase::Second);
        let health = client.get_json(server.addr(), "/__health").unwrap();
        assert_eq!(health.get("phase").unwrap().as_str(), Some("second"));
        // An unlimited market reports no limiter.
        let huawei = MarketServer::spawn(Arc::clone(&w), MarketId::HuaweiMarket).unwrap();
        let health = client.get_json(huawei.addr(), "/__health").unwrap();
        assert_eq!(health.get("rate_limiter"), Some(&Json::Null));
    }

    #[test]
    fn slo_and_log_endpoints_serve_ops_plane() {
        use marketscope_telemetry::{LogLevel, SeriesStore, SloPolicy};
        let w = world();
        let log = Arc::new(EventLog::new(32));
        let slo = Arc::new(Mutex::new(SloEvaluator::new(SloPolicy::fleet_default())));
        let server = MarketServer::spawn_with_ops(
            Arc::clone(&w),
            MarketId::HuaweiMarket,
            Arc::new(Registry::new()),
            Arc::new(Tracer::new(TracerConfig::propagate_only(64))),
            None,
            OpsHandles {
                slo: Arc::clone(&slo),
                log: Arc::clone(&log),
            },
        )
        .unwrap();
        let client = HttpClient::new();
        // Before any evaluation: no verdicts, nothing firing.
        let doc = client.get_json(server.addr(), "/__slo").unwrap();
        assert_eq!(doc.get("firing").unwrap().as_u64(), Some(0));
        assert!(doc.get("rules").unwrap().as_arr().unwrap().is_empty());
        // Events recorded into the shared log surface through /__log.
        log.record(LogLevel::Info, "test", "hello", &[("k", "v")]);
        let doc = client.get_json(server.addr(), "/__log").unwrap();
        let events = doc.get("events").unwrap().as_arr().unwrap();
        assert!(events
            .iter()
            .any(|e| e.get("message").and_then(|m| m.as_str()) == Some("hello")));
        // Once the evaluator has run, /__slo and the /__health summary
        // report every fleet rule.
        let mut store = SeriesStore::new(4);
        store.observe(&Registry::new().snapshot());
        slo.lock().evaluate(&store);
        let doc = client.get_json(server.addr(), "/__slo").unwrap();
        assert!(!doc.get("rules").unwrap().as_arr().unwrap().is_empty());
        let health = client.get_json(server.addr(), "/__health").unwrap();
        let summary = health.get("slo").unwrap();
        assert_eq!(summary.get("firing").unwrap().as_u64(), Some(0));
        assert!(summary
            .get("rules")
            .unwrap()
            .get("error_rate_5xx")
            .is_some());
        server.stop();
    }

    #[test]
    fn health_endpoint_reports_chaos_and_survives_faults() {
        use marketscope_net::fault::FaultPlan;
        let w = world();
        // A plan that faults every request — ops paths must still answer.
        let plan = FaultPlan {
            error_5xx: 1.0,
            ..FaultPlan::none()
        };
        let server = MarketServer::spawn_with_chaos(
            Arc::clone(&w),
            MarketId::BaiduMarket,
            Arc::new(Registry::new()),
            Arc::new(Tracer::new(TracerConfig::propagate_only(256))),
            FaultInjector::new(7, plan),
        )
        .unwrap();
        let client = HttpClient::new();
        // Market traffic 503s...
        assert!(matches!(
            client.get(server.addr(), "/index"),
            Err(marketscope_net::NetError::Status { code: 503, .. })
        ));
        // ...but the health endpoint is exempt and reports the chaos.
        let health = client.get_json(server.addr(), "/__health").unwrap();
        let chaos = health.get("chaos").unwrap();
        assert_eq!(chaos.get("error_5xx").unwrap().as_f64(), Some(1.0));
        assert_eq!(chaos.get("faults_injected").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn google_play_reports_ranges_and_rate_limits() {
        let w = world();
        let server = MarketServer::spawn(Arc::clone(&w), MarketId::GooglePlay).unwrap();
        let client = HttpClient::new();
        let doc = client.get_json(server.addr(), "/index").unwrap();
        let pkg = doc.get("packages").unwrap().as_arr().unwrap()[0]
            .as_str()
            .unwrap()
            .to_owned();
        let detail = client
            .get_json(server.addr(), &format!("/app/{pkg}"))
            .unwrap();
        let installs = detail.get("installs").unwrap().as_str().unwrap();
        assert!(
            installs.contains('-') || installs.ends_with('+'),
            "{installs}"
        );
        // Hammer the APK endpoint until the bucket runs dry.
        let mut limited = false;
        for _ in 0..120 {
            match client.get(server.addr(), &format!("/apk/{pkg}")) {
                Err(marketscope_net::NetError::Status { code: 429, .. }) => {
                    limited = true;
                    break;
                }
                Ok(_) => {}
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(limited, "rate limiter never tripped");
    }

    #[test]
    fn market_360_serves_obfuscated_apks() {
        let w = world();
        let server = MarketServer::spawn(Arc::clone(&w), MarketId::Market360).unwrap();
        let client = HttpClient::new();
        let doc = client.get_json(server.addr(), "/index").unwrap();
        let pkg = doc.get("packages").unwrap().as_arr().unwrap()[0]
            .as_str()
            .unwrap()
            .to_owned();
        let apk = client.get(server.addr(), &format!("/apk/{pkg}")).unwrap();
        let parsed = ParsedApk::parse(&apk.body).unwrap();
        assert!(parsed
            .dex
            .classes
            .iter()
            .any(|c| c.name.starts_with("Lcom/jiagu/")));
    }

    #[test]
    fn baidu_incremental_index_works() {
        let w = world();
        let server = MarketServer::spawn(Arc::clone(&w), MarketId::BaiduMarket).unwrap();
        let client = HttpClient::new();
        let detail = client.get_json(server.addr(), "/soft/0").unwrap();
        assert!(detail.get("package").is_some());
        // Far past the catalog end: 404.
        assert!(matches!(
            client.get(server.addr(), "/soft/99999999"),
            Err(marketscope_net::NetError::Status { code: 404, .. })
        ));
        // Non-Baidu markets don't expose it.
        let huawei = MarketServer::spawn(Arc::clone(&w), MarketId::HuaweiMarket).unwrap();
        assert!(matches!(
            client.get(huawei.addr(), "/soft/0"),
            Err(marketscope_net::NetError::Status { code: 404, .. })
        ));
    }

    #[test]
    fn second_phase_hides_removed_listings() {
        let w = world();
        // Find a market+package with a removed listing.
        let mut target = None;
        for m in MarketId::ALL {
            for l in w.market_listings(m) {
                if w.listing(*l).removed_in_second_crawl {
                    target = Some((m, w.app(w.listing(*l).app).package.as_str().to_owned()));
                    break;
                }
            }
            if target.is_some() {
                break;
            }
        }
        let (m, pkg) = target.expect("world contains removed listings");
        let server = MarketServer::spawn(Arc::clone(&w), m).unwrap();
        let client = HttpClient::new();
        assert!(client
            .get_json(server.addr(), &format!("/app/{pkg}"))
            .is_ok());
        server.set_phase(CrawlPhase::Second);
        assert!(matches!(
            client.get(server.addr(), &format!("/app/{pkg}")),
            Err(marketscope_net::NetError::Status { code: 404, .. })
        ));
        server.set_phase(CrawlPhase::First);
        assert!(client
            .get_json(server.addr(), &format!("/app/{pkg}"))
            .is_ok());
    }

    #[test]
    fn search_finds_by_label_and_package() {
        let w = world();
        let m = MarketId::Wandoujia;
        let server = MarketServer::spawn(Arc::clone(&w), m).unwrap();
        let client = HttpClient::new();
        let lid = w.market_listings(m)[0];
        let app = w.app(w.listing(lid).app);
        let by_pkg = client
            .get_json(server.addr(), &format!("/search?q={}", app.package))
            .unwrap();
        let results = by_pkg.get("results").unwrap().as_arr().unwrap();
        assert!(results
            .iter()
            .any(|r| r.as_str() == Some(app.package.as_str())));
        let by_label = client
            .get_json(
                server.addr(),
                &format!(
                    "/search?q={}",
                    marketscope_net::http::url_encode(&app.label)
                ),
            )
            .unwrap();
        assert!(!by_label
            .get("results")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
    }
}
