//! The full serving fleet: 17 markets plus the offline repository.

use crate::repository::AndroZooServer;
use crate::server::{CrawlPhase, MarketServer};
use marketscope_core::MarketId;
use marketscope_ecosystem::World;
use std::net::SocketAddr;
use std::sync::Arc;

/// All 17 market servers plus the AndroZoo repository, bound to ephemeral
/// loopback ports.
pub struct MarketFleet {
    servers: Vec<MarketServer>,
    repository: AndroZooServer,
    world: Arc<World>,
}

impl MarketFleet {
    /// Spawn the whole fleet over a world.
    pub fn spawn(world: Arc<World>) -> Result<MarketFleet, marketscope_net::NetError> {
        let mut servers = Vec::with_capacity(17);
        for m in MarketId::ALL {
            servers.push(MarketServer::spawn(Arc::clone(&world), m)?);
        }
        let repository = AndroZooServer::spawn(Arc::clone(&world))?;
        Ok(MarketFleet {
            servers,
            repository,
            world,
        })
    }

    /// Address of one market's server.
    pub fn addr(&self, market: MarketId) -> SocketAddr {
        self.servers[market.index()].addr()
    }

    /// Address of the offline repository.
    pub fn repository_addr(&self) -> SocketAddr {
        self.repository.addr()
    }

    /// The world being served.
    pub fn world(&self) -> &Arc<World> {
        &self.world
    }

    /// Switch every market to a crawl phase.
    pub fn set_phase(&self, phase: CrawlPhase) {
        for s in &self.servers {
            s.set_phase(phase);
        }
    }

    /// Total HTTP requests served across the fleet.
    pub fn total_requests(&self) -> u64 {
        self.servers.iter().map(|s| s.request_count()).sum()
    }

    /// Stop every server.
    pub fn stop(&self) {
        for s in &self.servers {
            s.stop();
        }
        self.repository.stop();
    }
}

impl Drop for MarketFleet {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marketscope_ecosystem::{generate, Scale, WorldConfig};
    use marketscope_net::HttpClient;

    #[test]
    fn fleet_serves_all_markets() {
        let w = Arc::new(generate(WorldConfig {
            seed: 1,
            scale: Scale { divisor: 60_000 },
        }));
        let fleet = MarketFleet::spawn(Arc::clone(&w)).unwrap();
        let client = HttpClient::new();
        for m in MarketId::ALL {
            let doc = client.get_json(fleet.addr(m), "/index").unwrap();
            assert!(
                !doc.get("packages").unwrap().as_arr().unwrap().is_empty(),
                "{m} index empty"
            );
        }
        assert!(fleet.total_requests() >= 17);
        fleet.stop();
    }

    #[test]
    fn addresses_are_distinct() {
        let w = Arc::new(generate(WorldConfig {
            seed: 2,
            scale: Scale { divisor: 60_000 },
        }));
        let fleet = MarketFleet::spawn(Arc::clone(&w)).unwrap();
        let mut addrs: Vec<SocketAddr> = MarketId::ALL.iter().map(|m| fleet.addr(*m)).collect();
        addrs.push(fleet.repository_addr());
        let n = addrs.len();
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), n);
    }
}
