//! The full serving fleet: 17 markets plus the offline repository.

use crate::chaos::ChaosProfile;
use crate::repository::AndroZooServer;
use crate::server::{CrawlPhase, MarketServer};
use marketscope_core::MarketId;
use marketscope_ecosystem::World;
use marketscope_net::fault::{FaultInjector, FaultPlan};
use marketscope_telemetry::trace::{Tracer, TracerConfig};
use marketscope_telemetry::Registry;
use std::net::SocketAddr;
use std::sync::Arc;

/// All 17 market servers plus the AndroZoo repository, bound to ephemeral
/// loopback ports.
///
/// The whole fleet shares one telemetry [`Registry`]: every server's
/// request counters, latency histograms and rate-limiter instruments
/// carry a `market="<slug>"` label, and any market's `GET /__metrics`
/// endpoint serves the combined fleet exposition.
pub struct MarketFleet {
    servers: Vec<MarketServer>,
    repository: AndroZooServer,
    world: Arc<World>,
    registry: Arc<Registry>,
    tracer: Arc<Tracer>,
}

impl MarketFleet {
    /// Spawn the whole fleet over a world.
    pub fn spawn(world: Arc<World>) -> Result<MarketFleet, marketscope_net::NetError> {
        MarketFleet::spawn_inner(world, None)
    }

    /// Spawn the fleet with seeded chaos: each market serves behind the
    /// [`FaultInjector`] its [`ChaosProfile`] plan prescribes (Google
    /// Play stays clean — its pathology is the rate limiter). The
    /// offline repository is never faulted; it is the backfill anchor.
    pub fn spawn_with_chaos(
        world: Arc<World>,
        chaos: ChaosProfile,
    ) -> Result<MarketFleet, marketscope_net::NetError> {
        MarketFleet::spawn_inner(world, Some(chaos))
    }

    fn spawn_inner(
        world: Arc<World>,
        chaos: Option<ChaosProfile>,
    ) -> Result<MarketFleet, marketscope_net::NetError> {
        // Servers never *start* traces (sample rate 0), but a shared
        // journal records the spans that crawler-sampled requests
        // propagate in — one fleet-wide timeline.
        let tracer = Arc::new(Tracer::new(TracerConfig::propagate_only(16_384)));
        let registry = Arc::new(Registry::new());
        // Stamp the exposition with the producing binary: BENCH files and
        // scrapes record which version/profile served the fleet.
        marketscope_telemetry::perf::register_build_info(
            &registry,
            env!("CARGO_PKG_VERSION"),
            marketscope_telemetry::perf::build_profile(),
        );
        let mut servers = Vec::with_capacity(17);
        for m in MarketId::ALL {
            let plan = chaos.map(|c| c.plan_for(m)).unwrap_or(FaultPlan::none());
            servers.push(if plan.is_noop() {
                MarketServer::spawn_with_telemetry(
                    Arc::clone(&world),
                    m,
                    Arc::clone(&registry),
                    Arc::clone(&tracer),
                )?
            } else {
                let Some(chaos) = chaos else {
                    unreachable!("non-noop plan implies a profile")
                };
                let faults = FaultInjector::instrumented(
                    chaos.seed_for(m),
                    plan,
                    &registry,
                    &[("market", m.slug())],
                );
                MarketServer::spawn_with_chaos(
                    Arc::clone(&world),
                    m,
                    Arc::clone(&registry),
                    Arc::clone(&tracer),
                    faults,
                )?
            });
        }
        let repository = AndroZooServer::spawn_with_telemetry(
            Arc::clone(&world),
            Arc::clone(&registry),
            Arc::clone(&tracer),
        )?;
        Ok(MarketFleet {
            servers,
            repository,
            world,
            registry,
            tracer,
        })
    }

    /// The registry shared by every server in the fleet.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The tracer shared by every server in the fleet (including the
    /// repository). Its journal holds the server side of every sampled
    /// crawl request; any market's `GET /__trace` renders it.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Address of one market's server.
    pub fn addr(&self, market: MarketId) -> SocketAddr {
        self.servers[market.index()].addr()
    }

    /// Address of the offline repository.
    pub fn repository_addr(&self) -> SocketAddr {
        self.repository.addr()
    }

    /// The world being served.
    pub fn world(&self) -> &Arc<World> {
        &self.world
    }

    /// Switch every market to a crawl phase.
    pub fn set_phase(&self, phase: CrawlPhase) {
        for s in &self.servers {
            s.set_phase(phase);
        }
    }

    /// Total HTTP requests served across the fleet.
    pub fn total_requests(&self) -> u64 {
        self.servers.iter().map(|s| s.request_count()).sum()
    }

    /// Total faults injected across the fleet (`0` without chaos).
    pub fn faults_injected(&self) -> u64 {
        self.servers.iter().map(|s| s.faults_injected()).sum()
    }

    /// Faults injected by one market's server.
    pub fn market_faults_injected(&self, market: MarketId) -> u64 {
        self.servers[market.index()].faults_injected()
    }

    /// Stop every server.
    pub fn stop(&self) {
        for s in &self.servers {
            s.stop();
        }
        self.repository.stop();
    }
}

impl Drop for MarketFleet {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marketscope_ecosystem::{generate, Scale, WorldConfig};
    use marketscope_net::HttpClient;

    #[test]
    fn fleet_serves_all_markets() {
        let w = Arc::new(generate(WorldConfig {
            seed: 1,
            scale: Scale { divisor: 60_000 },
            ..WorldConfig::default()
        }));
        let fleet = MarketFleet::spawn(Arc::clone(&w)).unwrap();
        let client = HttpClient::new();
        for m in MarketId::ALL {
            let doc = client.get_json(fleet.addr(m), "/index").unwrap();
            assert!(
                !doc.get("packages").unwrap().as_arr().unwrap().is_empty(),
                "{m} index empty"
            );
        }
        assert!(fleet.total_requests() >= 17);
        fleet.stop();
    }

    #[test]
    fn metrics_endpoint_serves_fleet_exposition() {
        let w = Arc::new(generate(WorldConfig {
            seed: 5,
            scale: Scale { divisor: 60_000 },
            ..WorldConfig::default()
        }));
        let fleet = MarketFleet::spawn(Arc::clone(&w)).unwrap();
        let client = HttpClient::new();
        // Generate some traffic on two markets.
        let gp = MarketId::GooglePlay;
        let huawei = MarketId::HuaweiMarket;
        client.get_json(fleet.addr(gp), "/index").unwrap();
        client.get_json(fleet.addr(huawei), "/index").unwrap();

        // Any market's /__metrics serves the combined registry.
        let resp = client.get(fleet.addr(gp), "/__metrics").unwrap();
        let text = String::from_utf8(resp.body).unwrap();
        let samples = marketscope_telemetry::parse(&text).unwrap();
        assert!(!samples.is_empty());
        for slug in [gp.slug(), huawei.slug()] {
            assert!(
                samples.iter().any(|s| {
                    s.name == "marketscope_net_requests_total"
                        && s.labels.iter().any(|(k, v)| k == "market" && v == slug)
                        && s.value >= 1.0
                }),
                "no request counter for {slug} in exposition"
            );
        }
        // The exposition matches the in-process registry's view.
        let snap = fleet.registry().snapshot();
        assert_eq!(
            snap.counter_value(
                "marketscope_net_requests_total",
                &[("market", huawei.slug())]
            ),
            Some(1)
        );
    }

    #[test]
    fn fleet_exposition_carries_build_info() {
        let w = Arc::new(generate(WorldConfig {
            seed: 3,
            scale: Scale { divisor: 60_000 },
            ..WorldConfig::default()
        }));
        let fleet = MarketFleet::spawn(Arc::clone(&w)).unwrap();
        let snap = fleet.registry().snapshot();
        assert_eq!(
            snap.gauge_value(
                "marketscope_build_info",
                &[
                    ("version", env!("CARGO_PKG_VERSION")),
                    ("profile", marketscope_telemetry::perf::build_profile()),
                ]
            ),
            Some(1)
        );
    }

    #[test]
    fn addresses_are_distinct() {
        let w = Arc::new(generate(WorldConfig {
            seed: 2,
            scale: Scale { divisor: 60_000 },
            ..WorldConfig::default()
        }));
        let fleet = MarketFleet::spawn(Arc::clone(&w)).unwrap();
        let mut addrs: Vec<SocketAddr> = MarketId::ALL.iter().map(|m| fleet.addr(*m)).collect();
        addrs.push(fleet.repository_addr());
        let n = addrs.len();
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), n);
    }
}
