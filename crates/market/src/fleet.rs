//! The full serving fleet: 17 markets plus the offline repository.

use crate::chaos::ChaosProfile;
use crate::repository::AndroZooServer;
use crate::server::{CrawlPhase, MarketServer, OpsHandles};
use marketscope_core::MarketId;
use marketscope_ecosystem::World;
use marketscope_net::fault::{FaultInjector, FaultPlan};
use marketscope_telemetry::trace::{JournalSnapshot, Tracer, TracerConfig};
use marketscope_telemetry::{
    EventLog, LogLevel, LogSnapshot, Registry, Scraper, SeriesConfig, SeriesSnapshot, SeriesStore,
    SloEvaluator, SloPolicy, SloVerdict, TickHook,
};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Scrape cadence for the fleet ops plane: 100ms ticks, 600 points per
/// instrument (a one-minute rolling window). Windowed SLO burns and
/// `/__slo` freshness both ride this tick.
const SCRAPE_TICK: Duration = Duration::from_millis(100);
const SCRAPE_CAPACITY: usize = 600;

/// Retained structured events; the fleet-wide incident narrative
/// (alerts, fault injections, breaker flips, shed) rarely outruns this
/// between scrapes of `/__log`.
const EVENT_LOG_CAPACITY: usize = 4096;

/// All 17 market servers plus the AndroZoo repository, bound to ephemeral
/// loopback ports.
///
/// The whole fleet shares one telemetry [`Registry`]: every server's
/// request counters, latency histograms and rate-limiter instruments
/// carry a `market="<slug>"` label, and any market's `GET /__metrics`
/// endpoint serves the combined fleet exposition.
///
/// The fleet also runs the live ops plane: a [`Scraper`] thread samples
/// the merged registry every [`SCRAPE_TICK`] into windowed time series,
/// an [`SloEvaluator`] re-judges the fleet SLOs on each tick (served at
/// any market's `GET /__slo`), and a shared [`EventLog`] collects
/// structured incidents from every seam (served at `GET /__log`). Each
/// scrape tick runs inside a span on a dedicated always-sampling ops
/// tracer, so alert events carry trace ids that resolve in the journal
/// returned by [`ops_traces`](MarketFleet::ops_traces).
pub struct MarketFleet {
    servers: Vec<MarketServer>,
    repository: AndroZooServer,
    world: Arc<World>,
    registry: Arc<Registry>,
    tracer: Arc<Tracer>,
    event_log: Arc<EventLog>,
    slo: Arc<Mutex<SloEvaluator>>,
    ops_tracer: Arc<Tracer>,
    scraper: Scraper,
    extra_sources: Arc<Mutex<Vec<Arc<Registry>>>>,
    stopped: AtomicBool,
}

impl MarketFleet {
    /// Spawn the whole fleet over a world.
    pub fn spawn(world: Arc<World>) -> Result<MarketFleet, marketscope_net::NetError> {
        MarketFleet::spawn_inner(world, None)
    }

    /// Spawn the fleet with seeded chaos: each market serves behind the
    /// [`FaultInjector`] its [`ChaosProfile`] plan prescribes (Google
    /// Play stays clean — its pathology is the rate limiter). The
    /// offline repository is never faulted; it is the backfill anchor.
    pub fn spawn_with_chaos(
        world: Arc<World>,
        chaos: ChaosProfile,
    ) -> Result<MarketFleet, marketscope_net::NetError> {
        MarketFleet::spawn_inner(world, Some(chaos))
    }

    fn spawn_inner(
        world: Arc<World>,
        chaos: Option<ChaosProfile>,
    ) -> Result<MarketFleet, marketscope_net::NetError> {
        // Servers never *start* traces (sample rate 0), but a shared
        // journal records the spans that crawler-sampled requests
        // propagate in — one fleet-wide timeline.
        let tracer = Arc::new(Tracer::new(TracerConfig::propagate_only(16_384)));
        let registry = Arc::new(Registry::new());
        // Stamp the exposition with the producing binary: BENCH files and
        // scrapes record which version/profile served the fleet.
        marketscope_telemetry::perf::register_build_info(
            &registry,
            env!("CARGO_PKG_VERSION"),
            marketscope_telemetry::perf::build_profile(),
        );

        // The ops plane. The scrape tick needs its own always-sampling
        // tracer: the fleet request tracer records nothing it starts
        // locally, and alert events must carry resolvable trace ids.
        let event_log = Arc::new(EventLog::new(EVENT_LOG_CAPACITY));
        let slo = Arc::new(Mutex::new(
            SloEvaluator::new(SloPolicy::fleet_default())
                .instrumented(&registry)
                .with_log(Arc::clone(&event_log)),
        ));
        let ops_tracer = Arc::new(Tracer::new(TracerConfig::always(4096)));
        // Extra scrape sources (the campaign adds the crawler's client
        // registry) merged into every sample, so client-side SLOs like
        // breaker opens are judged on the same tick schedule.
        let extra_sources: Arc<Mutex<Vec<Arc<Registry>>>> = Arc::new(Mutex::new(Vec::new()));
        let sample = {
            let registry = Arc::clone(&registry);
            let extra = Arc::clone(&extra_sources);
            move || {
                let mut snap = registry.snapshot();
                for source in extra.lock().iter() {
                    snap = snap.merge(&source.snapshot());
                }
                snap
            }
        };
        let slo_hook: TickHook = {
            let slo = Arc::clone(&slo);
            Box::new(move |store: &SeriesStore| {
                slo.lock().evaluate(store);
            })
        };
        let scraper = Scraper::spawn(
            SeriesConfig {
                capacity: SCRAPE_CAPACITY,
                tick: SCRAPE_TICK,
            },
            sample,
            vec![slo_hook],
            Some(Arc::clone(&ops_tracer)),
        );

        let ops = OpsHandles {
            slo: Arc::clone(&slo),
            log: Arc::clone(&event_log),
        };
        let mut servers = Vec::with_capacity(17);
        for m in MarketId::ALL {
            let plan = chaos.map(|c| c.plan_for(m)).unwrap_or(FaultPlan::none());
            let faults = match (plan.is_noop(), chaos) {
                (false, Some(c)) => Some(
                    FaultInjector::instrumented(
                        c.seed_for(m),
                        plan,
                        &registry,
                        &[("market", m.slug())],
                    )
                    .with_log(Arc::clone(&event_log), m.slug()),
                ),
                _ => None,
            };
            let server = MarketServer::spawn_with_ops(
                Arc::clone(&world),
                m,
                Arc::clone(&registry),
                Arc::clone(&tracer),
                faults,
                ops.clone(),
            )?;
            event_log.record(
                LogLevel::Info,
                "market.fleet",
                "market server started",
                &[
                    ("market", m.slug()),
                    ("addr", &server.addr().to_string()),
                    ("chaos", if plan.is_noop() { "none" } else { "seeded" }),
                ],
            );
            servers.push(server);
        }
        let repository = AndroZooServer::spawn_with_telemetry(
            Arc::clone(&world),
            Arc::clone(&registry),
            Arc::clone(&tracer),
        )?;
        event_log.record(
            LogLevel::Info,
            "market.fleet",
            "fleet started",
            &[
                ("markets", &servers.len().to_string()),
                ("repository", &repository.addr().to_string()),
            ],
        );
        Ok(MarketFleet {
            servers,
            repository,
            world,
            registry,
            tracer,
            event_log,
            slo,
            ops_tracer,
            scraper,
            extra_sources,
            stopped: AtomicBool::new(false),
        })
    }

    /// The registry shared by every server in the fleet.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The tracer shared by every server in the fleet (including the
    /// repository). Its journal holds the server side of every sampled
    /// crawl request; any market's `GET /__trace` renders it.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Handles into the ops plane (the same pair every server holds).
    pub fn ops(&self) -> OpsHandles {
        OpsHandles {
            slo: Arc::clone(&self.slo),
            log: Arc::clone(&self.event_log),
        }
    }

    /// The fleet-wide structured event log.
    pub fn event_log(&self) -> &Arc<EventLog> {
        &self.event_log
    }

    /// Snapshot of the structured event log.
    pub fn events(&self) -> LogSnapshot {
        self.event_log.snapshot()
    }

    /// The SLO verdicts from the latest scrape tick.
    pub fn slo_verdicts(&self) -> Vec<SloVerdict> {
        self.slo.lock().verdicts()
    }

    /// Snapshot of the windowed time series the scraper has collected.
    pub fn series(&self) -> SeriesSnapshot {
        self.scraper.series()
    }

    /// Run one synchronous scrape tick (sample, diff, re-judge SLOs).
    /// Campaigns call this after traffic stops so firing alerts observe
    /// a zero-delta tick and resolve deterministically.
    pub fn tick_now(&self) {
        self.scraper.tick_now();
    }

    /// Journal of the ops tracer: one span per scrape tick, the spans
    /// alert events' trace ids resolve against.
    pub fn ops_traces(&self) -> JournalSnapshot {
        self.ops_tracer.snapshot()
    }

    /// Merge another registry into every future scrape sample (the
    /// campaign adds the crawler's client-side registry so breaker and
    /// retry SLOs share the fleet's tick schedule).
    pub fn add_scrape_source(&self, registry: Arc<Registry>) {
        self.extra_sources.lock().push(registry);
    }

    /// Address of one market's server.
    pub fn addr(&self, market: MarketId) -> SocketAddr {
        self.servers[market.index()].addr()
    }

    /// Address of the offline repository.
    pub fn repository_addr(&self) -> SocketAddr {
        self.repository.addr()
    }

    /// The world being served.
    pub fn world(&self) -> &Arc<World> {
        &self.world
    }

    /// Switch every market to a crawl phase.
    pub fn set_phase(&self, phase: CrawlPhase) {
        for s in &self.servers {
            s.set_phase(phase);
        }
    }

    /// Total HTTP requests served across the fleet.
    pub fn total_requests(&self) -> u64 {
        self.servers.iter().map(|s| s.request_count()).sum()
    }

    /// Total faults injected across the fleet (`0` without chaos).
    pub fn faults_injected(&self) -> u64 {
        self.servers.iter().map(|s| s.faults_injected()).sum()
    }

    /// Faults injected by one market's server.
    pub fn market_faults_injected(&self, market: MarketId) -> u64 {
        self.servers[market.index()].faults_injected()
    }

    /// Stop the scraper and every server.
    pub fn stop(&self) {
        let first = !self.stopped.swap(true, Ordering::SeqCst);
        self.scraper.stop();
        for s in &self.servers {
            s.stop();
        }
        self.repository.stop();
        if first {
            self.event_log.record(
                LogLevel::Info,
                "market.fleet",
                "fleet stopped",
                &[("markets", &self.servers.len().to_string())],
            );
        }
    }
}

impl Drop for MarketFleet {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marketscope_ecosystem::{generate, Scale, WorldConfig};
    use marketscope_net::HttpClient;
    use marketscope_telemetry::AlertState;

    #[test]
    fn fleet_serves_all_markets() {
        let w = Arc::new(generate(WorldConfig {
            seed: 1,
            scale: Scale { divisor: 60_000 },
            ..WorldConfig::default()
        }));
        let fleet = MarketFleet::spawn(Arc::clone(&w)).unwrap();
        let client = HttpClient::new();
        for m in MarketId::ALL {
            let doc = client.get_json(fleet.addr(m), "/index").unwrap();
            assert!(
                !doc.get("packages").unwrap().as_arr().unwrap().is_empty(),
                "{m} index empty"
            );
        }
        assert!(fleet.total_requests() >= 17);
        fleet.stop();
    }

    #[test]
    fn metrics_endpoint_serves_fleet_exposition() {
        let w = Arc::new(generate(WorldConfig {
            seed: 5,
            scale: Scale { divisor: 60_000 },
            ..WorldConfig::default()
        }));
        let fleet = MarketFleet::spawn(Arc::clone(&w)).unwrap();
        let client = HttpClient::new();
        // Generate some traffic on two markets.
        let gp = MarketId::GooglePlay;
        let huawei = MarketId::HuaweiMarket;
        client.get_json(fleet.addr(gp), "/index").unwrap();
        client.get_json(fleet.addr(huawei), "/index").unwrap();

        // Any market's /__metrics serves the combined registry.
        let resp = client.get(fleet.addr(gp), "/__metrics").unwrap();
        let text = String::from_utf8(resp.body).unwrap();
        let samples = marketscope_telemetry::parse(&text).unwrap();
        assert!(!samples.is_empty());
        for slug in [gp.slug(), huawei.slug()] {
            assert!(
                samples.iter().any(|s| {
                    s.name == "marketscope_net_requests_total"
                        && s.labels.iter().any(|(k, v)| k == "market" && v == slug)
                        && s.value >= 1.0
                }),
                "no request counter for {slug} in exposition"
            );
        }
        // The exposition matches the in-process registry's view.
        let snap = fleet.registry().snapshot();
        assert_eq!(
            snap.counter_value(
                "marketscope_net_requests_total",
                &[("market", huawei.slug())]
            ),
            Some(1)
        );
    }

    #[test]
    fn fleet_exposition_carries_build_info() {
        let w = Arc::new(generate(WorldConfig {
            seed: 3,
            scale: Scale { divisor: 60_000 },
            ..WorldConfig::default()
        }));
        let fleet = MarketFleet::spawn(Arc::clone(&w)).unwrap();
        let snap = fleet.registry().snapshot();
        assert_eq!(
            snap.gauge_value(
                "marketscope_build_info",
                &[
                    ("version", env!("CARGO_PKG_VERSION")),
                    ("profile", marketscope_telemetry::perf::build_profile()),
                ]
            ),
            Some(1)
        );
    }

    #[test]
    fn addresses_are_distinct() {
        let w = Arc::new(generate(WorldConfig {
            seed: 2,
            scale: Scale { divisor: 60_000 },
            ..WorldConfig::default()
        }));
        let fleet = MarketFleet::spawn(Arc::clone(&w)).unwrap();
        let mut addrs: Vec<SocketAddr> = MarketId::ALL.iter().map(|m| fleet.addr(*m)).collect();
        addrs.push(fleet.repository_addr());
        let n = addrs.len();
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), n);
    }

    #[test]
    fn ops_plane_scrapes_judges_and_serves() {
        let w = Arc::new(generate(WorldConfig {
            seed: 4,
            scale: Scale { divisor: 60_000 },
            ..WorldConfig::default()
        }));
        let fleet = MarketFleet::spawn(Arc::clone(&w)).unwrap();
        let client = HttpClient::new();
        let gp = MarketId::GooglePlay;
        client.get_json(fleet.addr(gp), "/index").unwrap();
        fleet.tick_now();

        // The scraper saw the traffic as a windowed delta...
        let series = fleet.series();
        assert!(series.ticks >= 1);
        assert!(series.counter_window_sum("marketscope_net_requests_total", &[], 600) >= 1);
        // ...and the evaluator judged a clean fleet clean.
        let verdicts = fleet.slo_verdicts();
        assert!(!verdicts.is_empty());
        assert!(
            verdicts
                .iter()
                .all(|v| v.state == AlertState::Ok && v.fired == 0),
            "clean fleet must not alert: {verdicts:?}"
        );
        // Lifecycle events landed in the shared log.
        let events = fleet.events();
        assert!(events
            .events
            .iter()
            .any(|e| e.message == "market server started"
                && e.fields
                    .iter()
                    .any(|(k, v)| k == "market" && v == gp.slug())));
        assert!(events.events.iter().any(|e| e.message == "fleet started"));

        // Every market serves the shared plane over HTTP.
        let doc = client.get_json(fleet.addr(gp), "/__slo").unwrap();
        assert_eq!(
            doc.get("rules").unwrap().as_arr().unwrap().len(),
            verdicts.len()
        );
        let doc = client.get_json(fleet.addr(gp), "/__log").unwrap();
        assert!(doc.get("recorded").unwrap().as_u64().unwrap() >= 18);
        let health = client.get_json(fleet.addr(gp), "/__health").unwrap();
        let summary = health.get("slo").unwrap();
        assert_eq!(summary.get("firing").unwrap().as_u64(), Some(0));
        // Each scrape tick ran inside an ops-tracer span.
        assert!(!fleet.ops_traces().is_empty());
        fleet.stop();
        assert!(fleet
            .events()
            .events
            .iter()
            .any(|e| e.message == "fleet stopped"));
    }
}
