//! The developer-submission pipeline (Section 2.1).
//!
//! The paper registered a developer account on every market and compared
//! their publication rules. The simulated stores enforce the same ones on
//! `POST /upload`:
//!
//! * **Copyright checks** — all markets but HiApk and PC Online require a
//!   "Software Copyright Certificate" (the `x-copyright-cert` header);
//! * **Lenovo MM** only accepts registered companies
//!   (`x-company-cert` header);
//! * **OPPO** only accepts specific categories (wallpaper/theme →
//!   our `Personalization`);
//! * **App China** caps APKs at 50 MB;
//! * **360** requires the developer to pack the app with Jiagubao before
//!   submission (a `Lcom/jiagu/` wrapper class must be present);
//! * markets with **vetting** answer `pending` with their Table 1 vetting
//!   time; the two no-vetting stores answer `listed` immediately.

use marketscope_apk::ParsedApk;
use marketscope_core::json::Json;
use marketscope_core::MarketId;
use marketscope_ecosystem::profile;
use std::collections::BTreeMap;

/// App China's documented size cap (Section 2.1).
pub const APP_CHINA_SIZE_LIMIT: usize = 50 * 1024 * 1024;

/// Outcome of a submission.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmissionOutcome {
    /// Listed immediately (no vetting process).
    Listed,
    /// Queued for vetting; value is the expected vetting time in days.
    Pending(f64),
    /// Rejected with a market-policy reason.
    Rejected(&'static str),
}

/// Evaluate a submission against one market's publication rules.
pub fn evaluate(
    market: MarketId,
    headers: &BTreeMap<String, String>,
    body: &[u8],
) -> SubmissionOutcome {
    let p = profile(market);
    // Size gate first: App China's 50 MB cap applies before anything is
    // parsed (their uploader refuses the file outright).
    if market == MarketId::AppChina && body.len() > APP_CHINA_SIZE_LIMIT {
        return SubmissionOutcome::Rejected("APK exceeds the 50 MB limit");
    }
    // Copyright certificate (all markets but HiApk and PC Online).
    if p.copyright_check && !headers.contains_key("x-copyright-cert") {
        return SubmissionOutcome::Rejected("software copyright certificate required");
    }
    // Lenovo MM: registered companies only.
    if market == MarketId::LenovoMm && !headers.contains_key("x-company-cert") {
        return SubmissionOutcome::Rejected("individual developers may not publish");
    }
    // The APK itself must parse.
    let Ok(apk) = ParsedApk::parse(body) else {
        return SubmissionOutcome::Rejected("malformed APK");
    };
    if !apk.signature_valid {
        return SubmissionOutcome::Rejected("developer signature does not verify");
    }
    // OPPO: restricted categories (wallpaper/theme apps).
    if market == MarketId::OppoMarket && apk.manifest.category != "Personalization" {
        return SubmissionOutcome::Rejected("category not accepted by this store");
    }
    // 360: must be packed with Jiagubao before entering the market.
    if p.requires_obfuscation
        && !apk
            .dex
            .classes
            .iter()
            .any(|c| c.name.starts_with("Lcom/jiagu/"))
    {
        return SubmissionOutcome::Rejected("app must be packed with Jiagubao first");
    }
    match p.vetting_days {
        Some(days) if p.app_vetting => SubmissionOutcome::Pending(days),
        _ => SubmissionOutcome::Listed,
    }
}

/// Render an outcome as the upload endpoint's JSON response body.
pub fn outcome_json(outcome: &SubmissionOutcome) -> Json {
    match outcome {
        SubmissionOutcome::Listed => Json::obj([("status", Json::from("listed"))]),
        SubmissionOutcome::Pending(days) => Json::obj([
            ("status", Json::from("pending")),
            ("vetting_days", Json::from(*days)),
        ]),
        SubmissionOutcome::Rejected(reason) => Json::obj([
            ("status", Json::from("rejected")),
            ("reason", Json::from(*reason)),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marketscope_apk::builder::ApkBuilder;
    use marketscope_apk::dex::{ClassDef, DexFile, MethodDef};
    use marketscope_apk::manifest::Manifest;
    use marketscope_core::{DeveloperKey, PackageName, VersionCode};

    fn apk(category: &str, jiagu: bool) -> Vec<u8> {
        let manifest = Manifest {
            package: PackageName::new("com.dev.submission").unwrap(),
            version_code: VersionCode(1),
            version_name: "1.0".into(),
            min_sdk: 9,
            target_sdk: 23,
            app_label: "Submission".into(),
            permissions: vec![],
            category: category.into(),
            components: vec![],
        };
        let mut classes = vec![ClassDef {
            name: "Lcom/dev/submission/Main;".into(),
            methods: vec![MethodDef {
                api_calls: vec![],
                code_hash: 7,
                invokes: vec![],
            }],
        }];
        if jiagu {
            classes.push(ClassDef {
                name: "Lcom/jiagu/StubLoader;".into(),
                methods: vec![],
            });
        }
        ApkBuilder::new(manifest, DexFile { classes })
            .build(DeveloperKey::from_label("submitter"))
            .unwrap()
    }

    fn headers(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect()
    }

    #[test]
    fn copyright_certificate_is_required_almost_everywhere() {
        let body = apk("Tools", false);
        for m in [
            MarketId::TencentMyapp,
            MarketId::BaiduMarket,
            MarketId::HuaweiMarket,
        ] {
            assert!(matches!(
                evaluate(m, &headers(&[]), &body),
                SubmissionOutcome::Rejected("software copyright certificate required")
            ));
        }
        // The two stores without copyright checks list or vet without it.
        assert!(!matches!(
            evaluate(MarketId::HiApk, &headers(&[]), &body),
            SubmissionOutcome::Rejected(_)
        ));
        assert!(!matches!(
            evaluate(MarketId::PcOnline, &headers(&[]), &body),
            SubmissionOutcome::Rejected(_)
        ));
    }

    #[test]
    fn vetting_times_match_table1() {
        let body = apk("Tools", false);
        let h = headers(&[("x-copyright-cert", "cert-123")]);
        match evaluate(MarketId::HuaweiMarket, &h, &body) {
            SubmissionOutcome::Pending(days) => assert_eq!(days, 4.0),
            other => panic!("{other:?}"),
        }
        match evaluate(MarketId::TencentMyapp, &h, &body) {
            SubmissionOutcome::Pending(days) => assert_eq!(days, 1.0),
            other => panic!("{other:?}"),
        }
        // No vetting → listed immediately.
        assert_eq!(
            evaluate(MarketId::HiApk, &headers(&[]), &body),
            SubmissionOutcome::Listed
        );
    }

    #[test]
    fn lenovo_requires_a_company() {
        let body = apk("Tools", false);
        let individual = headers(&[("x-copyright-cert", "c")]);
        assert!(matches!(
            evaluate(MarketId::LenovoMm, &individual, &body),
            SubmissionOutcome::Rejected("individual developers may not publish")
        ));
        let company = headers(&[("x-copyright-cert", "c"), ("x-company-cert", "acme")]);
        assert!(matches!(
            evaluate(MarketId::LenovoMm, &company, &body),
            SubmissionOutcome::Pending(_)
        ));
    }

    #[test]
    fn oppo_restricts_categories() {
        let h = headers(&[("x-copyright-cert", "c")]);
        assert!(matches!(
            evaluate(MarketId::OppoMarket, &h, &apk("Tools", false)),
            SubmissionOutcome::Rejected("category not accepted by this store")
        ));
        assert!(matches!(
            evaluate(MarketId::OppoMarket, &h, &apk("Personalization", false)),
            SubmissionOutcome::Pending(_)
        ));
    }

    #[test]
    fn market_360_requires_jiagu_packing() {
        let h = headers(&[("x-copyright-cert", "c")]);
        assert!(matches!(
            evaluate(MarketId::Market360, &h, &apk("Tools", false)),
            SubmissionOutcome::Rejected("app must be packed with Jiagubao first")
        ));
        assert!(matches!(
            evaluate(MarketId::Market360, &h, &apk("Tools", true)),
            SubmissionOutcome::Pending(_)
        ));
    }

    #[test]
    fn app_china_size_cap() {
        let oversized = vec![0u8; APP_CHINA_SIZE_LIMIT + 1];
        assert!(matches!(
            evaluate(MarketId::AppChina, &headers(&[]), &oversized),
            SubmissionOutcome::Rejected("APK exceeds the 50 MB limit")
        ));
        // Other stores don't apply the cap (they fail later, on parsing).
        assert!(matches!(
            evaluate(MarketId::HiApk, &headers(&[]), &oversized),
            SubmissionOutcome::Rejected("malformed APK")
        ));
    }

    #[test]
    fn malformed_and_badly_signed_apks_are_rejected() {
        let h = headers(&[("x-copyright-cert", "c")]);
        assert!(matches!(
            evaluate(MarketId::TencentMyapp, &h, b"not an apk"),
            SubmissionOutcome::Rejected("malformed APK")
        ));
    }

    #[test]
    fn outcome_json_shapes() {
        assert_eq!(
            outcome_json(&SubmissionOutcome::Listed).to_string_compact(),
            r#"{"status":"listed"}"#
        );
        let pending = outcome_json(&SubmissionOutcome::Pending(3.0)).to_string_compact();
        assert!(pending.contains("pending") && pending.contains("vetting_days"));
        let rejected = outcome_json(&SubmissionOutcome::Rejected("nope")).to_string_compact();
        assert!(rejected.contains("rejected") && rejected.contains("nope"));
    }
}
