//! Shared `Json` renderers for the ops plane.
//!
//! `marketscope-telemetry` is dependency-free by design, so its ops
//! types (series snapshots, SLO verdicts, log events) learn JSON here,
//! next to the servers that surface them. The same helpers back the
//! market `/__slo`, `/__log` and `/__health` endpoints and the
//! `reproduce --ops-bundle` artifact, so every surface renders one
//! shape.

use marketscope_core::json::Json;
use marketscope_net::fault::FaultInjector;
use marketscope_net::ratelimit::TokenBucket;
use marketscope_net::ReactorConfig;
use marketscope_telemetry::{LogEvent, LogSnapshot, SeriesSnapshot, SloVerdict};
use std::collections::BTreeMap;

/// Full SLO verdict list: `{"rules": [...], "firing": n}`.
pub fn slo_json(verdicts: &[SloVerdict]) -> Json {
    let rules: Vec<Json> = verdicts.iter().map(verdict_json).collect();
    let firing = verdicts
        .iter()
        .filter(|v| v.state == marketscope_telemetry::AlertState::Firing)
        .count();
    Json::obj([
        ("firing", Json::from(firing as u64)),
        ("rules", Json::Arr(rules)),
    ])
}

/// One verdict as an object.
pub fn verdict_json(v: &SloVerdict) -> Json {
    Json::obj([
        ("rule", Json::from(v.rule.as_str())),
        ("state", Json::from(v.state.as_str())),
        ("fast_burn", Json::from(v.fast_burn)),
        ("slow_burn", Json::from(v.slow_burn)),
        ("threshold", Json::from(v.threshold)),
        ("fired", Json::from(v.fired)),
        ("resolved", Json::from(v.resolved)),
    ])
}

/// One log event as an object; `fields` becomes a nested object and the
/// trace context renders in the same `trace:span` hex format the trace
/// header uses.
pub fn event_json(e: &LogEvent) -> Json {
    let mut obj = BTreeMap::new();
    obj.insert("unix_nanos".to_owned(), Json::from(e.unix_nanos));
    obj.insert("mono_nanos".to_owned(), Json::from(e.mono_nanos));
    obj.insert("level".to_owned(), Json::from(e.level.as_str()));
    obj.insert("target".to_owned(), Json::from(e.target.as_str()));
    obj.insert("message".to_owned(), Json::from(e.message.as_str()));
    let fields: BTreeMap<String, Json> = e
        .fields
        .iter()
        .map(|(k, v)| (k.clone(), Json::from(v.as_str())))
        .collect();
    obj.insert("fields".to_owned(), Json::Obj(fields));
    if let (Some(t), Some(s)) = (e.trace_id, e.span_id) {
        obj.insert("trace".to_owned(), Json::from(format!("{t:016x}:{s:016x}")));
        obj.insert("trace_id".to_owned(), Json::from(t));
        obj.insert("span_id".to_owned(), Json::from(s));
    }
    Json::Obj(obj)
}

/// A whole log snapshot: `{"recorded": n, "overwritten": n, "events": [...]}`.
pub fn log_json(snap: &LogSnapshot) -> Json {
    Json::obj([
        ("recorded", Json::from(snap.recorded)),
        ("overwritten", Json::from(snap.overwritten)),
        (
            "events",
            Json::Arr(snap.events.iter().map(event_json).collect()),
        ),
    ])
}

/// A series snapshot: per-instrument point lists keyed by the
/// Prometheus-style series name.
pub fn series_json(series: &SeriesSnapshot) -> Json {
    let counters: BTreeMap<String, Json> = series
        .counters
        .iter()
        .map(|(id, points)| {
            let pts: Vec<Json> = points
                .iter()
                .map(|p| {
                    Json::obj([
                        ("tick", Json::from(p.tick)),
                        ("unix_nanos", Json::from(p.unix_nanos)),
                        ("delta", Json::from(p.delta)),
                        ("total", Json::from(p.total)),
                    ])
                })
                .collect();
            (id.to_string(), Json::Arr(pts))
        })
        .collect();
    let gauges: BTreeMap<String, Json> = series
        .gauges
        .iter()
        .map(|(id, points)| {
            let pts: Vec<Json> = points
                .iter()
                .map(|p| {
                    Json::obj([
                        ("tick", Json::from(p.tick)),
                        ("unix_nanos", Json::from(p.unix_nanos)),
                        ("level", Json::from(p.level)),
                    ])
                })
                .collect();
            (id.to_string(), Json::Arr(pts))
        })
        .collect();
    // Histograms render windowed summaries (count/sum/p50/p99 per tick)
    // rather than raw 64-bucket arrays: the bundle stays readable and an
    // order of magnitude smaller.
    let histograms: BTreeMap<String, Json> = series
        .histograms
        .iter()
        .map(|(id, points)| {
            let pts: Vec<Json> = points
                .iter()
                .map(|p| {
                    Json::obj([
                        ("tick", Json::from(p.tick)),
                        ("unix_nanos", Json::from(p.unix_nanos)),
                        ("count", Json::from(p.delta.count())),
                        ("sum", Json::from(p.delta.sum)),
                        ("p50", Json::from(p.delta.p50())),
                        ("p99", Json::from(p.delta.p99())),
                    ])
                })
                .collect();
            (id.to_string(), Json::Arr(pts))
        })
        .collect();
    Json::obj([
        ("ticks", Json::from(series.ticks)),
        ("capacity", Json::from(series.capacity as u64)),
        ("counters", Json::Obj(counters)),
        ("gauges", Json::Obj(gauges)),
        ("histograms", Json::Obj(histograms)),
    ])
}

/// The `/__health` rate-limiter section: `Null` when the market has no
/// limiter, else readiness plus the current wait hint.
pub fn rate_limiter_json(bucket: Option<&TokenBucket>) -> Json {
    match bucket {
        Some(bucket) => {
            let hint = bucket.wait_hint();
            Json::obj([
                ("limiter", Json::from("apk_download")),
                ("ready", Json::from(hint.is_zero())),
                ("wait_hint_ms", Json::from(hint.as_millis() as u64)),
            ])
        }
        None => Json::Null,
    }
}

/// The `/__health` chaos section: `Null` without an injector, else the
/// plan's probabilities plus the running injection count.
pub fn chaos_json(faults: Option<&FaultInjector>) -> Json {
    match faults {
        Some(f) => {
            let plan = f.plan();
            Json::obj([
                ("faults_injected", Json::from(f.injected())),
                ("reset", Json::from(plan.reset)),
                ("stall", Json::from(plan.stall)),
                ("truncate", Json::from(plan.truncate)),
                ("error_5xx", Json::from(plan.error_5xx)),
                ("downtime_every", Json::from(plan.downtime_every)),
            ])
        }
        None => Json::Null,
    }
}

/// The `/__health` transport section: the reactor's fixed complement
/// plus the live connection/shed/accept-error counters.
pub fn transport_json(cfg: &ReactorConfig, open: u64, shed: u64, accept_errors: u64) -> Json {
    Json::obj([
        ("shards", Json::from(cfg.shards)),
        ("handler_threads", Json::from(cfg.handler_threads)),
        ("max_connections", Json::from(cfg.max_connections)),
        ("open_connections", Json::from(open)),
        ("connections_shed", Json::from(shed)),
        ("accept_errors", Json::from(accept_errors)),
    ])
}

/// Compact SLO summary for `/__health`: alert states only.
pub fn slo_summary_json(verdicts: &[SloVerdict]) -> Json {
    let states: BTreeMap<String, Json> = verdicts
        .iter()
        .map(|v| (v.rule.clone(), Json::from(v.state.as_str())))
        .collect();
    let firing = verdicts
        .iter()
        .filter(|v| v.state == marketscope_telemetry::AlertState::Firing)
        .count();
    Json::obj([
        ("firing", Json::from(firing as u64)),
        ("rules", Json::Obj(states)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use marketscope_telemetry::{
        AlertState, EventLog, LogLevel, Registry, SeriesStore, Tracer, TracerConfig,
    };
    use std::sync::Arc;

    #[test]
    fn slo_json_counts_firing_rules() {
        let verdicts = vec![
            SloVerdict {
                rule: "a".into(),
                state: AlertState::Firing,
                fast_burn: 0.5,
                slow_burn: 0.25,
                threshold: 0.02,
                fired: 1,
                resolved: 0,
            },
            SloVerdict {
                rule: "b".into(),
                state: AlertState::Ok,
                fast_burn: 0.0,
                slow_burn: 0.0,
                threshold: 0.0,
                fired: 0,
                resolved: 0,
            },
        ];
        let doc = slo_json(&verdicts);
        assert_eq!(doc.get("firing").unwrap().as_u64(), Some(1));
        let rules = doc.get("rules").unwrap().as_arr().unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].get("state").unwrap().as_str(), Some("firing"));
        let summary = slo_summary_json(&verdicts);
        assert_eq!(
            summary.get("rules").unwrap().get("a").unwrap().as_str(),
            Some("firing")
        );
    }

    #[test]
    fn log_json_round_trips_through_parser() {
        let tracer = Arc::new(Tracer::new(TracerConfig::always(8)));
        let log = EventLog::new(8);
        let span = tracer.root_span("test", "op");
        log.record(
            LogLevel::Warn,
            "net.fault",
            "fault injected",
            &[("market", "baidu"), ("fault", "stall")],
        );
        span.finish();
        let doc = log_json(&log.snapshot());
        let text = doc.to_string_compact();
        let parsed = Json::parse(&text).expect("valid JSON");
        let events = parsed.get("events").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("level").unwrap().as_str(), Some("warn"));
        assert_eq!(
            events[0]
                .get("fields")
                .unwrap()
                .get("market")
                .unwrap()
                .as_str(),
            Some("baidu")
        );
        assert!(events[0].get("trace_id").is_some());
    }

    #[test]
    fn series_json_summarises_histograms() {
        let registry = Registry::new();
        registry.counter("x_total", &[("market", "m")]).add(3);
        registry.histogram("y_nanos", &[]).record(1000);
        let mut store = SeriesStore::new(4);
        store.observe(&registry.snapshot());
        let doc = series_json(&store.snapshot());
        assert_eq!(doc.get("ticks").unwrap().as_u64(), Some(1));
        let counters = doc.get("counters").unwrap();
        let pts = counters
            .get("x_total{market=\"m\"}")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(pts[0].get("delta").unwrap().as_u64(), Some(3));
        let hist = doc.get("histograms").unwrap().get("y_nanos").unwrap();
        assert_eq!(
            hist.as_arr().unwrap()[0].get("count").unwrap().as_u64(),
            Some(1)
        );
    }
}
