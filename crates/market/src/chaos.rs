//! Seeded chaos profiles for the market fleet.
//!
//! The paper's crawlers fought real-world market misbehaviour: dropped
//! connections, hour-long slowdowns, truncated downloads, error storms
//! and outright downtime. A [`ChaosProfile`] reproduces that weather
//! deterministically: each market gets a [`FaultPlan`] matched to its
//! character, seeded from one campaign-level chaos seed, so two runs with
//! the same seed inject byte-identical fault sequences.
//!
//! Assignment rationale:
//!
//! * **Google Play** stays fault-free — its pathology is the APK rate
//!   limiter, which is already modelled (and which the resilience layer
//!   must *not* mistake for an outage);
//! * **Baidu** stalls: its sequential detail index made it the slowest
//!   market to walk;
//! * **360** truncates bodies: Jiagubao-wrapped APKs were the ones most
//!   often cut off mid-download;
//! * the remaining **web-company** store (Tencent) resets connections
//!   under load;
//! * **vendor** stores burst 5xx with a short `retry-after` hint — the
//!   kind of transient backend hiccup a polite retry absorbs;
//! * **specialized** stores flap: periodic downtime windows during which
//!   every request dies, exercising quarantine-and-revisit.
//!
//! The offline repository is never faulted: it is the backfill anchor the
//! crawler degrades onto, mirroring how AndroZoo stayed solid while the
//! live markets misbehaved.

use marketscope_core::hash::fnv1a64;
use marketscope_core::{MarketId, MarketKind};
use marketscope_net::FaultPlan;
use std::time::Duration;

/// How hard a [`ChaosProfile`] bites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosIntensity {
    /// Base fault rates: every pathology fires, nothing overwhelms the
    /// retry budget.
    Light,
    /// Base rates tripled (downtime windows stretched): quarantines and
    /// breaker opens become routine.
    Heavy,
}

impl ChaosIntensity {
    /// The factor applied to every base [`FaultPlan`].
    pub fn factor(self) -> f64 {
        match self {
            ChaosIntensity::Light => 1.0,
            ChaosIntensity::Heavy => 3.0,
        }
    }
}

impl std::str::FromStr for ChaosIntensity {
    type Err = String;

    fn from_str(s: &str) -> Result<ChaosIntensity, String> {
        match s {
            "light" => Ok(ChaosIntensity::Light),
            "heavy" => Ok(ChaosIntensity::Heavy),
            other => Err(format!("unknown chaos profile {other:?} (light|heavy)")),
        }
    }
}

/// A deterministic fault assignment for the whole fleet: one seed, one
/// intensity, one [`FaultPlan`] per market.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosProfile {
    /// Campaign-level chaos seed; each market derives its own stream
    /// seed from it (see [`ChaosProfile::seed_for`]).
    pub seed: u64,
    /// Scales every per-market plan.
    pub intensity: ChaosIntensity,
}

impl ChaosProfile {
    /// A light-intensity profile.
    pub fn light(seed: u64) -> ChaosProfile {
        ChaosProfile {
            seed,
            intensity: ChaosIntensity::Light,
        }
    }

    /// A heavy-intensity profile.
    pub fn heavy(seed: u64) -> ChaosProfile {
        ChaosProfile {
            seed,
            intensity: ChaosIntensity::Heavy,
        }
    }

    /// The fault-stream seed for one market: the campaign seed xored
    /// with the market slug's FNV-1a hash, so markets draw independent
    /// streams that all replay under the same campaign seed.
    pub fn seed_for(&self, market: MarketId) -> u64 {
        self.seed ^ fnv1a64(market.slug().as_bytes())
    }

    /// The fault plan for one market (possibly a no-op — Google Play is
    /// always served clean).
    pub fn plan_for(&self, market: MarketId) -> FaultPlan {
        base_plan(market).scaled(self.intensity.factor())
    }
}

/// The light-intensity base plan for one market.
fn base_plan(market: MarketId) -> FaultPlan {
    match market {
        MarketId::BaiduMarket => FaultPlan {
            stall: 0.10,
            stall_for: Duration::from_millis(20),
            ..FaultPlan::none()
        },
        MarketId::Market360 => FaultPlan {
            truncate: 0.06,
            ..FaultPlan::none()
        },
        m => match m.kind() {
            MarketKind::Official => FaultPlan::none(),
            MarketKind::WebCompany => FaultPlan {
                reset: 0.08,
                ..FaultPlan::none()
            },
            MarketKind::Vendor => FaultPlan {
                error_5xx: 0.10,
                error_retry_after: Some(Duration::from_millis(15)),
                ..FaultPlan::none()
            },
            MarketKind::Specialized => FaultPlan {
                downtime_every: 48,
                downtime_len: 6,
                ..FaultPlan::none()
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn google_play_is_always_clean() {
        for profile in [ChaosProfile::light(7), ChaosProfile::heavy(7)] {
            assert!(profile.plan_for(MarketId::GooglePlay).is_noop());
        }
    }

    #[test]
    fn every_chinese_market_gets_some_fault() {
        let profile = ChaosProfile::light(7);
        for m in MarketId::chinese() {
            assert!(!profile.plan_for(m).is_noop(), "{m} has no fault plan");
        }
    }

    #[test]
    fn heavy_scales_light() {
        let light = ChaosProfile::light(7);
        let heavy = ChaosProfile::heavy(7);
        let (l, h) = (
            light.plan_for(MarketId::TencentMyapp),
            heavy.plan_for(MarketId::TencentMyapp),
        );
        assert!(h.reset > l.reset);
        // Downtime windows stretch under heavy chaos.
        let (l, h) = (
            light.plan_for(MarketId::Pp25),
            heavy.plan_for(MarketId::Pp25),
        );
        assert!(h.downtime_len > l.downtime_len);
        assert_eq!(h.downtime_every, l.downtime_every);
    }

    #[test]
    fn market_streams_are_independent_but_replayable() {
        let a = ChaosProfile::light(42);
        let b = ChaosProfile::light(42);
        let mut seeds = std::collections::HashSet::new();
        for m in MarketId::ALL {
            assert_eq!(a.seed_for(m), b.seed_for(m), "{m} stream not replayable");
            assert!(seeds.insert(a.seed_for(m)), "{m} shares a stream seed");
        }
    }

    #[test]
    fn intensity_parses_from_cli_names() {
        assert_eq!("light".parse(), Ok(ChaosIntensity::Light));
        assert_eq!("heavy".parse(), Ok(ChaosIntensity::Heavy));
        assert!("medium".parse::<ChaosIntensity>().is_err());
    }
}
