//! # marketscope-market
//!
//! Simulated app-market servers. Each of the 17 markets runs as a real
//! HTTP server (loopback) over the shared synthetic [`World`], with the
//! behaviours the paper had to engineer around:
//!
//! * **Google Play** bins install counts into ranges and rate-limits APK
//!   downloads (the paper could only sample 287 K APKs directly and had to
//!   backfill 1.55 M from AndroZoo) — the fleet therefore also runs an
//!   [`repository::AndroZooServer`] with partial coverage;
//! * **Baidu** exposes a sequential-integer detail index
//!   (`/soft/{n}`, Section 3's `shouji.baidu.com/software/INTEGER.html`);
//! * **360** serves Jiagubao-wrapped (obfuscated) APKs (Section 2.1);
//! * most Chinese stores inject a **channel file** into `META-INF/`,
//!   making byte-identical uploads differ per store (Section 5.3);
//! * a **second-crawl phase** switch hides listings removed between the
//!   paper's August 2017 and April 2018 campaigns (Section 7).
//!
//! The fleet shares one `marketscope-telemetry` registry: per-market
//! request/status counters, handler-latency histograms and the Google
//! Play APK limiter's grant/rejection counts, all scrapeable from any
//! server's `GET /__metrics` endpoint.
//!
//! [`World`]: marketscope_ecosystem::World

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod endpoints;
pub mod fleet;
pub mod opsjson;
pub mod repository;
pub mod server;
pub mod submission;

pub use chaos::{ChaosIntensity, ChaosProfile};
pub use fleet::MarketFleet;
pub use repository::AndroZooServer;
pub use server::{CrawlPhase, MarketServer, OpsHandles, PAGE_SIZE};
pub use submission::{evaluate, SubmissionOutcome};
