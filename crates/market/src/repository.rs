//! The offline APK repository (AndroZoo stand-in).
//!
//! Google Play's rate limiting let the paper download only a 287 K random
//! sample of APKs directly; the remaining 1.55 M of 2.03 M were fetched
//! offline from AndroZoo by `(package, version)` key. We run the same
//! two-source architecture: an unthrottled repository server whose catalog
//! covers a deterministic ~76% subset of Google Play listings — so the
//! crawler's backfill logic (and its residual metadata/APK mismatch) is
//! exercised for real.

use marketscope_core::hash::fnv1a64;
use marketscope_core::MarketId;
use marketscope_ecosystem::{ListingId, World};
use marketscope_net::http::{Response, Status};
use marketscope_net::router::Router;
use marketscope_net::server::{HttpServer, ServerHandle, ServerMetrics};
use marketscope_telemetry::trace::{Tracer, TracerConfig};
use marketscope_telemetry::Registry;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;

/// Fraction of Google Play listings the repository holds.
pub const COVERAGE: f64 = 0.7645; // 1,553,382 / 2,031,946

/// A running repository server.
pub struct AndroZooServer {
    handle: ServerHandle,
    holdings: usize,
}

impl AndroZooServer {
    /// Spawn the repository over `world`'s Google Play catalog.
    pub fn spawn(world: Arc<World>) -> Result<AndroZooServer, marketscope_net::NetError> {
        AndroZooServer::spawn_with_registry(world, Arc::new(Registry::new()))
    }

    /// Spawn the repository with its request instruments registered in
    /// `registry` under `market="androzoo"`.
    pub fn spawn_with_registry(
        world: Arc<World>,
        registry: Arc<Registry>,
    ) -> Result<AndroZooServer, marketscope_net::NetError> {
        let tracer = Arc::new(Tracer::new(TracerConfig::propagate_only(1024)));
        AndroZooServer::spawn_with_telemetry(world, registry, tracer)
    }

    /// Spawn the repository with a shared tracer too, so backfill
    /// downloads show up in the same cross-process span trees as the
    /// market fetches they compensate for.
    pub fn spawn_with_telemetry(
        world: Arc<World>,
        registry: Arc<Registry>,
        tracer: Arc<Tracer>,
    ) -> Result<AndroZooServer, marketscope_net::NetError> {
        let mut index: HashMap<String, ListingId> = HashMap::new();
        for id in world.market_listings(MarketId::GooglePlay) {
            let listing = world.listing(*id);
            let app = world.app(listing.app);
            // Deterministic membership: hash the package into [0,1).
            let u = (fnv1a64(app.package.as_str().as_bytes()) % 10_000) as f64 / 10_000.0;
            if u < COVERAGE {
                index.insert(app.package.as_str().to_owned(), *id);
            }
        }
        let holdings = index.len();
        let router = {
            let world = Arc::clone(&world);
            Router::new().get("/apk/{pkg}/{version}", move |_req, params| {
                let Some(id) = index.get(&params["pkg"]) else {
                    return Response::status(Status::NotFound);
                };
                let listing = world.listing(*id);
                let Ok(version) = params["version"].parse::<u32>() else {
                    return Response::status(Status::BadRequest);
                };
                if version != listing.version {
                    // AndroZoo is keyed by exact (package, version).
                    return Response::status(Status::NotFound);
                }
                let bytes = world.build_apk(listing.app, listing.version, false);
                Response::ok("application/vnd.android.package-archive", bytes)
            })
        };
        let metrics = ServerMetrics::register(&registry, &[("market", "androzoo")]).traced(tracer);
        let handle = HttpServer::spawn_instrumented("127.0.0.1:0", router, metrics)?;
        Ok(AndroZooServer { handle, holdings })
    }

    /// Bound address.
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr()
    }

    /// Number of APKs the repository holds.
    pub fn holdings(&self) -> usize {
        self.holdings
    }

    /// Stop serving.
    pub fn stop(&self) {
        self.handle.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marketscope_apk::ParsedApk;
    use marketscope_ecosystem::{generate, Scale, WorldConfig};
    use marketscope_net::HttpClient;

    #[test]
    fn repository_covers_most_of_google_play() {
        let w = Arc::new(generate(WorldConfig {
            seed: 3,
            scale: Scale { divisor: 20_000 },
            ..WorldConfig::default()
        }));
        let repo = AndroZooServer::spawn(Arc::clone(&w)).unwrap();
        let gp = w.market_listings(MarketId::GooglePlay).len();
        let share = repo.holdings() as f64 / gp as f64;
        assert!((0.6..0.9).contains(&share), "coverage {share}");

        // A held package serves a correct APK for its exact version.
        let client = HttpClient::new();
        let mut served = 0;
        for id in w.market_listings(MarketId::GooglePlay).iter().take(40) {
            let listing = w.listing(*id);
            let app = w.app(listing.app);
            let path = format!("/apk/{}/{}", app.package, listing.version);
            match client.get(repo.addr(), &path) {
                Ok(resp) => {
                    let parsed = ParsedApk::parse(&resp.body).unwrap();
                    assert_eq!(parsed.manifest.package, app.package);
                    served += 1;
                }
                Err(marketscope_net::NetError::Status { code: 404, .. }) => {}
                Err(e) => panic!("{e}"),
            }
        }
        assert!(served > 10, "served only {served}/40");
    }

    #[test]
    fn wrong_version_is_a_miss() {
        let w = Arc::new(generate(WorldConfig {
            seed: 3,
            scale: Scale { divisor: 40_000 },
            ..WorldConfig::default()
        }));
        let repo = AndroZooServer::spawn(Arc::clone(&w)).unwrap();
        let client = HttpClient::new();
        for id in w.market_listings(MarketId::GooglePlay).iter().take(30) {
            let listing = w.listing(*id);
            let app = w.app(listing.app);
            let path = format!("/apk/{}/{}", app.package, listing.version + 100);
            match client.get(repo.addr(), &path) {
                Err(marketscope_net::NetError::Status { code: 404, .. }) => return,
                Ok(_) => panic!("wrong version must 404"),
                Err(_) => continue,
            }
        }
    }
}
