//! Property test: the exposition render/parse pair is a lossless round
//! trip for arbitrary label values — including values containing quotes,
//! backslashes, commas, braces and non-ASCII text.

use marketscope_telemetry::{parse, Registry};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every counter registered with an arbitrary printable label value
    /// comes back from parse(render(..)) with the same value and label.
    #[test]
    fn label_values_round_trip(
        values in proptest::collection::vec("\\PC{0,24}", 1..8),
    ) {
        let r = Registry::new();
        // Dedup: two equal label values would collide into one counter.
        let mut values = values;
        values.sort();
        values.dedup();
        for (i, v) in values.iter().enumerate() {
            r.counter("round_trip_total", &[("v", v)]).add(i as u64 + 1);
        }
        let text = r.render();
        let samples = parse(&text)
            .unwrap_or_else(|e| panic!("parse failed: {e}\nrendered:\n{text}"));
        prop_assert_eq!(samples.len(), values.len());
        for (i, v) in values.iter().enumerate() {
            let sample = samples
                .iter()
                .find(|s| s.label("v") == Some(v.as_str()))
                .unwrap_or_else(|| panic!("label value {v:?} lost in:\n{text}"));
            prop_assert_eq!(sample.value, i as f64 + 1.0);
            prop_assert_eq!(&sample.name, "round_trip_total");
        }
    }

    /// Histogram series (bucket/sum/count/max) survive the round trip
    /// with hostile label values too.
    #[test]
    fn histogram_series_round_trip(
        value in "[\\PC]{0,16}",
        observations in proptest::collection::vec(0u64..1_000_000, 1..32),
    ) {
        let r = Registry::new();
        let h = r.histogram("rt_nanos", &[("market", &value)]);
        for &v in &observations {
            h.record(v);
        }
        let text = r.render();
        let samples = parse(&text)
            .unwrap_or_else(|e| panic!("parse failed: {e}\nrendered:\n{text}"));
        let find = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name && s.label("market") == Some(value.as_str()))
                .unwrap_or_else(|| panic!("missing {name} in:\n{text}"))
                .value
        };
        prop_assert_eq!(find("rt_nanos_count"), observations.len() as f64);
        prop_assert_eq!(
            find("rt_nanos_sum"),
            observations.iter().sum::<u64>() as f64
        );
        prop_assert_eq!(
            find("rt_nanos_max"),
            *observations.iter().max().unwrap() as f64
        );
    }
}
