//! Concurrent hammering of the lock-free instruments: 8 threads, exact
//! counts, monotone cumulative bucket sums.

use marketscope_telemetry::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

const THREADS: usize = 8;
const PER_THREAD: u64 = 100_000;

#[test]
fn counter_is_exact_under_contention() {
    let c = Arc::new(Counter::new());
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let c = Arc::clone(&c);
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
}

#[test]
fn gauge_balances_out_under_contention() {
    let g = Arc::new(Gauge::new());
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let g = Arc::clone(&g);
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    g.inc();
                    g.dec();
                }
            });
        }
    });
    assert_eq!(g.get(), 0);
}

#[test]
fn histogram_is_exact_under_contention() {
    let h = Arc::new(Histogram::new());
    // Each thread records a deterministic value stream; the final count
    // and sum must be exact, with no lost updates.
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    h.record((t as u64 * 7 + i) % 5000);
                }
            });
        }
    });
    let expected_count = THREADS as u64 * PER_THREAD;
    let expected_sum: u64 = (0..THREADS as u64)
        .map(|t| (0..PER_THREAD).map(|i| (t * 7 + i) % 5000).sum::<u64>())
        .sum();
    let snap = h.snapshot();
    assert_eq!(snap.count(), expected_count);
    assert_eq!(snap.sum, expected_sum);

    // Cumulative bucket sums are monotone and end at the exact count.
    let mut prev = 0u64;
    for &(_, cum) in &snap.cumulative() {
        assert!(cum >= prev, "cumulative bucket counts must be monotone");
        prev = cum;
    }
    assert_eq!(prev, expected_count);
}

#[test]
fn registry_hands_out_one_instrument_per_id_under_contention() {
    let r = Arc::new(Registry::new());
    // All threads race to register the same id and hammer it; the total
    // must land on one shared counter.
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let r = Arc::clone(&r);
            s.spawn(move || {
                let c = r.counter("race_total", &[("who", "everyone")]);
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(
        r.snapshot()
            .counter_value("race_total", &[("who", "everyone")]),
        Some(THREADS as u64 * PER_THREAD)
    );
}

#[test]
fn snapshots_under_load_never_exceed_final_totals() {
    let h = Arc::new(Histogram::new());
    let c = Arc::new(Counter::new());
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let h = Arc::clone(&h);
            let c = Arc::clone(&c);
            s.spawn(move || {
                for i in 0..10_000u64 {
                    h.record(i % 100);
                    c.inc();
                }
            });
        }
        // Reader thread: every interim snapshot must be internally sane.
        let h = Arc::clone(&h);
        s.spawn(move || {
            for _ in 0..50 {
                let snap = h.snapshot();
                let mut prev = 0;
                for &(_, cum) in &snap.cumulative() {
                    assert!(cum >= prev);
                    prev = cum;
                }
                assert!(snap.count() <= THREADS as u64 * 10_000);
            }
        });
    });
    assert_eq!(c.get(), THREADS as u64 * 10_000);
    assert_eq!(h.count(), THREADS as u64 * 10_000);
}
