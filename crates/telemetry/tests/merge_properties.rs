//! Property tests: snapshot merging is exactly equivalent to recording
//! the combined stream into one histogram, and quantiles stay within the
//! observed range.

use marketscope_telemetry::{Histogram, Registry};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// merge(snapshot(a), snapshot(b)) == snapshot(a ++ b).
    #[test]
    fn histogram_merge_equals_combined_recording(
        a in proptest::collection::vec(any::<u64>(), 0..200),
        b in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        // Wrapping sums: the histogram's running sum is a u64 fetch_add,
        // so feed values small enough not to overflow in test.
        let a: Vec<u64> = a.iter().map(|v| v % (1 << 40)).collect();
        let b: Vec<u64> = b.iter().map(|v| v % (1 << 40)).collect();

        let ha = Histogram::new();
        let hb = Histogram::new();
        let hboth = Histogram::new();
        for &v in &a {
            ha.record(v);
            hboth.record(v);
        }
        for &v in &b {
            hb.record(v);
            hboth.record(v);
        }
        let merged = ha.snapshot().merge(&hb.snapshot());
        prop_assert_eq!(merged, hboth.snapshot());
    }

    /// Quantile estimates are bounded by the min/max observation's bucket.
    #[test]
    fn quantiles_stay_in_observed_bucket_range(
        values in proptest::collection::vec(1u64..1_000_000_000, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let est = snap.quantile(q);
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        // The estimate lies within [bucket_lower(min), bucket_upper(max)];
        // log2 buckets mean at most a 2x stretch on either side.
        prop_assert!(est <= max.saturating_mul(2), "q={} est={} max={}", q, est, max);
        prop_assert!(est.saturating_mul(2) >= min, "q={} est={} min={}", q, est, min);
    }

    /// Registry snapshot merge adds counters and merges histograms, and
    /// the rendered exposition still parses.
    #[test]
    fn registry_merge_matches_combined_and_renders(
        xs in proptest::collection::vec(0u64..10_000, 0..50),
        ys in proptest::collection::vec(0u64..10_000, 0..50),
    ) {
        let r1 = Registry::new();
        let r2 = Registry::new();
        let combined = Registry::new();
        for &v in &xs {
            r1.counter("events_total", &[("side", "x")]).add(v);
            combined.counter("events_total", &[("side", "x")]).add(v);
            r1.histogram("lat_nanos", &[]).record(v);
            combined.histogram("lat_nanos", &[]).record(v);
        }
        for &v in &ys {
            r2.counter("events_total", &[("side", "x")]).add(v);
            combined.counter("events_total", &[("side", "x")]).add(v);
            r2.histogram("lat_nanos", &[]).record(v);
            combined.histogram("lat_nanos", &[]).record(v);
        }
        let merged = r1.snapshot().merge(&r2.snapshot());
        prop_assert_eq!(&merged, &combined.snapshot());

        let text = merged.render();
        let samples = marketscope_telemetry::parse(&text).unwrap();
        if !xs.is_empty() || !ys.is_empty() {
            let total: u64 = xs.iter().chain(&ys).sum();
            let c = samples
                .iter()
                .find(|s| s.name == "events_total")
                .expect("counter rendered");
            prop_assert_eq!(c.value, total as f64);
        }
    }
}
