//! Property tests for the ops plane: counter-delta series are
//! non-negative whatever the source snapshots do, merging series
//! commutes with taking deltas, rings keep the newest points, log
//! merges are order-insensitive, and burn-rate alerts fire and resolve
//! deterministically.

use marketscope_telemetry::{
    EventLog, LogLevel, MetricSelector, Registry, SeriesStore, SloEvaluator, SloObjective,
    SloPolicy, SloRule,
};
use proptest::prelude::*;

/// A registry snapshot with one counter at `total`, stamps pinned so
/// snapshot-level equality is exact across processes.
fn counter_snapshot(total: u64, stamp: u64) -> marketscope_telemetry::RegistrySnapshot {
    let r = Registry::new();
    r.counter("events_total", &[("side", "x")]).add(total);
    r.snapshot().stamped(stamp, stamp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Deltas never go negative, even when consecutive observations are
    /// fed out of order (a restarted process, a clock-skewed peer): the
    /// store saturates instead of underflowing.
    #[test]
    fn counter_deltas_never_negative(
        totals in proptest::collection::vec(0u64..1_000_000, 1..40),
    ) {
        let mut store = SeriesStore::new(64);
        for (i, &t) in totals.iter().enumerate() {
            store.observe(&counter_snapshot(t, i as u64 + 1));
        }
        let snap = store.snapshot();
        let mut windowed = 0u64;
        for points in snap.counters.values() {
            for p in points {
                // `delta` is u64, so a backwards total can never
                // underflow; it also can never exceed its own tick's
                // cumulative total.
                prop_assert!(p.delta <= p.total);
                windowed += p.delta;
            }
        }
        // First observation attributes its whole total; later monotone
        // increases add exactly the increase; decreases add nothing.
        let mut expect = totals[0];
        for w in totals.windows(2) {
            expect += w[1].saturating_sub(w[0]);
        }
        prop_assert_eq!(windowed, expect);
    }

    /// merge(delta(a), delta(b)) == delta(merge(a, b)) for two stores on
    /// a shared tick schedule.
    #[test]
    fn merge_then_delta_equals_delta_then_merge(
        xs in proptest::collection::vec(0u64..10_000, 1..20),
        ys in proptest::collection::vec(0u64..10_000, 1..20),
    ) {
        let ticks = xs.len().max(ys.len());
        // Cumulative totals: each process's counter only goes up.
        let cum = |vals: &[u64], t: usize| -> u64 {
            vals.iter().take(t + 1).sum()
        };
        let mut store_a = SeriesStore::new(64);
        let mut store_b = SeriesStore::new(64);
        let mut store_merged = SeriesStore::new(64);
        for t in 0..ticks {
            let a = counter_snapshot(cum(&xs, t.min(xs.len() - 1)), t as u64 + 1);
            let b = counter_snapshot(cum(&ys, t.min(ys.len() - 1)), t as u64 + 1);
            let joint = a.clone().merge(&b).stamped(t as u64 + 1, t as u64 + 1);
            store_a.observe(&a);
            store_b.observe(&b);
            store_merged.observe(&joint);
        }
        let merged_after = store_a.snapshot().merge(&store_b.snapshot());
        let merged_before = store_merged.snapshot();
        prop_assert_eq!(merged_after, merged_before);
    }

    /// The per-instrument ring keeps exactly the newest `capacity`
    /// points, in tick order.
    #[test]
    fn ring_keeps_newest_capacity_points(
        n in 1usize..60,
        capacity in 1usize..16,
    ) {
        let mut store = SeriesStore::new(capacity);
        for t in 0..n {
            store.observe(&counter_snapshot((t as u64 + 1) * 10, t as u64 + 1));
        }
        let snap = store.snapshot();
        prop_assert_eq!(snap.ticks, n as u64);
        for points in snap.counters.values() {
            prop_assert_eq!(points.len(), n.min(capacity));
            let ticks: Vec<u64> = points.iter().map(|p| p.tick).collect();
            let expect: Vec<u64> =
                ((n - n.min(capacity)) as u64..n as u64).collect();
            prop_assert_eq!(ticks, expect);
        }
    }

    /// Log snapshot merging is order-insensitive: merge(a, b) and
    /// merge(b, a) produce the same timeline and tallies.
    #[test]
    fn log_merge_is_order_insensitive(
        na in 0usize..20,
        nb in 0usize..20,
    ) {
        let log_a = EventLog::new(32);
        let log_b = EventLog::new(32);
        for i in 0..na {
            log_a.record(LogLevel::Info, "a", &format!("event {i}"), &[]);
        }
        for i in 0..nb {
            log_b.record(LogLevel::Warn, "b", &format!("event {i}"), &[]);
        }
        let (a, b) = (log_a.snapshot(), log_b.snapshot());
        let ab = a.clone().merge(&b);
        let ba = b.clone().merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.recorded, (na + nb) as u64);
        prop_assert_eq!(ab.events.len(), na + nb);
    }
}

/// A policy with one zero-budget rule over `events_total{side="x"}`,
/// slow window of `slow` ticks.
fn budget_policy(slow: u64) -> SloPolicy {
    SloPolicy {
        rules: vec![SloRule {
            name: "events_budget".into(),
            objective: SloObjective::Budget {
                events: MetricSelector::new("events_total", &[("side", "x")]),
                max_per_tick: 0.0,
            },
            slow_window: slow,
        }],
    }
}

/// Burn-rate alerts are a deterministic function of the delta series:
/// replaying the same totals through fresh stores and evaluators gives
/// identical fire/resolve traces, and the final state is predictable
/// from the last deltas.
#[test]
fn burn_rate_alerts_fire_and_resolve_deterministically() {
    // Totals: quiet, burst, quiet, quiet — fires at the burst tick,
    // resolves on the first quiet tick after it.
    let totals = [5u64, 5, 25, 25, 25];
    let run = || {
        let mut store = SeriesStore::new(16);
        let mut eval = SloEvaluator::new(budget_policy(3));
        let mut trace = Vec::new();
        for (i, &t) in totals.iter().enumerate() {
            store.observe(&counter_snapshot(t, i as u64 + 1));
            let verdicts = eval.evaluate(&store);
            trace.push((verdicts[0].state, verdicts[0].fired, verdicts[0].resolved));
        }
        trace
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "replay must produce the identical trace");
    use marketscope_telemetry::AlertState::*;
    // Tick 0 burns (first observation = its own delta 5 > 0 budget) and
    // the slow window agrees, so the alert fires immediately; tick 1 is
    // quiet and resolves it; tick 2's burst re-fires; ticks 3-4 resolve
    // and stay resolved.
    assert_eq!(
        first,
        vec![
            (Firing, 1, 0),
            (Resolved, 1, 1),
            (Firing, 2, 1),
            (Resolved, 2, 2),
            (Resolved, 2, 2),
        ]
    );
}
