//! Allocation-profiling integration test: installs [`CountingAlloc`] as
//! this test binary's global allocator and proves the counters see real
//! traffic. Only meaningful with the feature on —
//! `cargo test -p marketscope-telemetry --features alloc-profile` —
//! without it the whole file compiles away.

#![cfg(feature = "alloc-profile")]

use marketscope_telemetry::perf::{alloc_stats, AllocPhase, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn counting_allocator_sees_real_allocations() {
    let phase = AllocPhase::start();
    // 64 KiB in one shot, plus growth churn from the pushes.
    let mut v: Vec<u8> = Vec::with_capacity(64 * 1024);
    for i in 0..1024u32 {
        v.push(i as u8);
    }
    let boxed = vec![0u64; 4096].into_boxed_slice();
    std::hint::black_box(&v);
    std::hint::black_box(&boxed);
    let delta = phase.delta();
    assert!(delta.allocs >= 2, "allocs: {}", delta.allocs);
    assert!(
        delta.bytes_allocated >= 64 * 1024 + 4096 * 8,
        "bytes: {}",
        delta.bytes_allocated
    );

    // Dropping feeds the free side.
    drop(v);
    drop(boxed);
    let after = phase.delta();
    assert!(after.frees > delta.frees);
    assert!(after.bytes_freed >= delta.bytes_freed + 64 * 1024);

    // The process-wide totals are monotonic and at least as large as
    // any phase delta carved out of them.
    let totals = alloc_stats();
    assert!(totals.allocs >= after.allocs);
    assert!(totals.bytes_allocated >= after.bytes_allocated);
}
