//! # marketscope-telemetry
//!
//! The observability substrate for the crawl pipeline: allocation-free,
//! lock-free instruments plus a registry that renders a Prometheus-style
//! text exposition.
//!
//! The paper's crawl campaign ran 50 cloud workers for two weeks against
//! 17 markets; operating anything at that scale requires continuous
//! visibility into per-source request rates, error rates and latencies.
//! This crate provides that layer for the reproduction:
//!
//! * [`Counter`] — a monotonic `u64`, one relaxed `fetch_add` per
//!   increment;
//! * [`Gauge`] — a signed up/down value (live connections, queue depth);
//! * [`Histogram`] — 64 fixed log2 buckets of atomics; recording is two
//!   relaxed `fetch_add`s, snapshots are mergeable and answer
//!   p50/p90/p99;
//! * [`Span`] — an RAII timer that records its elapsed time into a
//!   histogram on drop;
//! * [`Registry`] — owns named, labelled instruments and renders the
//!   whole set as a text exposition ([`exposition`] also parses it back,
//!   for tests and scrapers);
//! * [`trace`] — a sampling distributed tracer: 64-bit trace/span ids,
//!   parent links and timestamped events in a bounded ring-buffer
//!   journal, with wire propagation via [`TRACE_HEADER`] and exporters
//!   in [`trace_export`] (Chrome trace-event JSON, folded flamegraph);
//! * [`series`] — a [`Scraper`] thread that diffs registry snapshots on
//!   a fixed tick into ring-buffer time series, turning lifetime
//!   aggregates into windowed rates and windowed p50/p99;
//! * [`slo`] — declarative SLO rules with multi-window burn-rate
//!   alerting over those series (ok → firing → resolved state machine);
//! * [`log`] — a bounded structured [`EventLog`] whose events carry the
//!   recording thread's trace context, so alerts and fault injections
//!   correlate back to traces.
//!
//! The record path never takes a lock or allocates: callers resolve an
//! instrument from the registry once (a short `RwLock` critical section,
//! off the hot path) and then hammer the returned `Arc` freely from any
//! number of threads.
//!
//! Naming convention: `marketscope_<crate>_<name>`, with `_total` for
//! counters and `_nanos` for duration histograms; dimensions (market,
//! status, error kind) travel as labels.

// `deny` rather than `forbid`: the optional counting global allocator in
// [`perf`] needs one `unsafe impl GlobalAlloc`, explicitly allowed at the
// impl site behind the `alloc-profile` feature. Everything else stays
// unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod exposition;
pub mod histogram;
pub mod log;
pub mod perf;
pub mod registry;
pub mod series;
pub mod slo;
pub mod span;
pub mod trace;
pub mod trace_export;

pub use counter::{Counter, Gauge};
pub use exposition::{parse, Sample};
pub use histogram::{Histogram, HistogramSnapshot, BUCKET_COUNT};
pub use log::{EventLog, LogEvent, LogLevel, LogSnapshot};
pub use perf::{
    alloc_stats, build_profile, register_build_info, rss_bytes, thread_count, AllocDelta,
    AllocPhase, AllocStats, ResourcePeaks, ResourceSampler,
};
pub use registry::{InstrumentId, Registry, RegistrySnapshot};
pub use series::{
    CounterPoint, GaugePoint, HistogramPoint, Scraper, SeriesConfig, SeriesSnapshot, SeriesStore,
    TickHook,
};
pub use slo::{
    AlertState, MetricSelector, SloEvaluator, SloObjective, SloPolicy, SloRule, SloVerdict,
};
pub use span::Span;
pub use trace::{
    JournalSnapshot, SpanContext, SpanEvent, SpanRecord, TraceSpan, Tracer, TracerConfig,
    TRACE_HEADER,
};
pub use trace_export::{chrome_trace, flamegraph, slowest_traces, TraceSummary};
