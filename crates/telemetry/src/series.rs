//! Windowed time series scraped from registry snapshots.
//!
//! A [`SeriesStore`] turns the registry's since-process-start aggregates
//! into per-tick deltas: each call to [`SeriesStore::observe`] diffs the
//! new [`RegistrySnapshot`](crate::RegistrySnapshot) against the previous
//! one and appends one point per instrument to a fixed-capacity ring.
//! Counter points carry the tick's delta (never negative — diffs
//! saturate), gauge points carry the instantaneous level, and histogram
//! points carry the tick's bucket deltas, so windowed rates and windowed
//! p50/p99 fall out of summing a suffix of the ring instead of reading a
//! lifetime aggregate.
//!
//! [`SeriesSnapshot`]s merge across processes the same way registry
//! snapshots do: per-instrument point lists are aligned by tick ordinal
//! (same-tick points combine, deltas and gauge levels add, histogram
//! deltas merge) under the assumption that the stores ticked on a shared
//! schedule — which is exactly the sharded-fleet case where one
//! coordinator scrapes every shard on the same tick. Each point also
//! carries the source snapshot's wall-clock and monotonic stamps so
//! cross-process timelines stay legible.
//!
//! The [`Scraper`] owns a background thread that samples an arbitrary
//! snapshot closure on a fixed tick, feeding the store and then any
//! registered tick hooks (the SLO evaluator rides one). `tick_now` runs
//! one synchronous tick for deterministic tests and campaign settling.

use crate::histogram::{HistogramSnapshot, BUCKET_COUNT};
use crate::registry::{InstrumentId, RegistrySnapshot};
use crate::trace::Tracer;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Sizing for a [`SeriesStore`] / [`Scraper`].
#[derive(Debug, Clone, Copy)]
pub struct SeriesConfig {
    /// Points retained per instrument; older points are overwritten.
    pub capacity: usize,
    /// Scrape interval for the background thread.
    pub tick: Duration,
}

impl Default for SeriesConfig {
    fn default() -> SeriesConfig {
        SeriesConfig {
            capacity: 240,
            tick: Duration::from_millis(100),
        }
    }
}

/// One counter observation: the delta accrued this tick plus the
/// cumulative total, stamped with the source snapshot's clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterPoint {
    /// Tick ordinal within the observing store (0-based).
    pub tick: u64,
    /// Wall-clock stamp of the observed snapshot (unix nanos).
    pub unix_nanos: u64,
    /// Monotonic stamp of the observed snapshot (process-epoch nanos).
    pub mono_nanos: u64,
    /// Increments accrued since the previous tick (saturating).
    pub delta: u64,
    /// Cumulative total at this tick.
    pub total: u64,
}

/// One gauge observation: the instantaneous level at the tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugePoint {
    /// Tick ordinal within the observing store (0-based).
    pub tick: u64,
    /// Wall-clock stamp of the observed snapshot (unix nanos).
    pub unix_nanos: u64,
    /// Monotonic stamp of the observed snapshot (process-epoch nanos).
    pub mono_nanos: u64,
    /// Gauge level at this tick.
    pub level: i64,
}

/// One histogram observation: the bucket/sum deltas accrued this tick.
/// `delta.max` keeps the cumulative max (a high-water mark cannot be
/// differenced).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramPoint {
    /// Tick ordinal within the observing store (0-based).
    pub tick: u64,
    /// Wall-clock stamp of the observed snapshot (unix nanos).
    pub unix_nanos: u64,
    /// Monotonic stamp of the observed snapshot (process-epoch nanos).
    pub mono_nanos: u64,
    /// Bucket and sum deltas for this tick; `max` is cumulative.
    pub delta: HistogramSnapshot,
}

/// Bucket-wise saturating difference `cur - prev`. `max` passes through
/// from `cur` (cumulative high-water mark).
fn histogram_delta(cur: &HistogramSnapshot, prev: &HistogramSnapshot) -> HistogramSnapshot {
    let mut buckets = [0u64; BUCKET_COUNT];
    for (i, slot) in buckets.iter_mut().enumerate() {
        *slot = cur.buckets[i].saturating_sub(prev.buckets[i]);
    }
    HistogramSnapshot {
        buckets,
        sum: cur.sum.saturating_sub(prev.sum),
        max: cur.max,
    }
}

/// Ring of per-instrument point series produced by successive
/// [`observe`](SeriesStore::observe) calls.
#[derive(Debug)]
pub struct SeriesStore {
    capacity: usize,
    ticks: u64,
    last: Option<RegistrySnapshot>,
    counters: BTreeMap<InstrumentId, VecDeque<CounterPoint>>,
    gauges: BTreeMap<InstrumentId, VecDeque<GaugePoint>>,
    histograms: BTreeMap<InstrumentId, VecDeque<HistogramPoint>>,
}

impl SeriesStore {
    /// Create a store retaining `capacity` points per instrument (min 1).
    pub fn new(capacity: usize) -> SeriesStore {
        SeriesStore {
            capacity: capacity.max(1),
            ticks: 0,
            last: None,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// Ticks observed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Ingest one snapshot as the next tick. Counter and histogram
    /// deltas are diffed against the previous snapshot (saturating, so a
    /// snapshot that runs backwards — e.g. a differently-merged view —
    /// yields zero deltas, never negative ones). Instruments appearing
    /// for the first time attribute their whole total to this tick.
    /// Returns the tick ordinal just recorded.
    pub fn observe(&mut self, snap: &RegistrySnapshot) -> u64 {
        let tick = self.ticks;
        let unix_nanos = snap.captured_unix_nanos;
        let mono_nanos = snap.captured_mono_nanos;
        for (id, &total) in &snap.counters {
            let prev = self
                .last
                .as_ref()
                .and_then(|l| l.counters.get(id).copied())
                .unwrap_or(0);
            push_point(
                self.counters.entry(id.clone()).or_default(),
                self.capacity,
                CounterPoint {
                    tick,
                    unix_nanos,
                    mono_nanos,
                    delta: total.saturating_sub(prev),
                    total,
                },
            );
        }
        for (id, &level) in &snap.gauges {
            push_point(
                self.gauges.entry(id.clone()).or_default(),
                self.capacity,
                GaugePoint {
                    tick,
                    unix_nanos,
                    mono_nanos,
                    level,
                },
            );
        }
        let empty = HistogramSnapshot::default();
        for (id, hist) in &snap.histograms {
            let prev = self
                .last
                .as_ref()
                .and_then(|l| l.histograms.get(id))
                .unwrap_or(&empty);
            push_point(
                self.histograms.entry(id.clone()).or_default(),
                self.capacity,
                HistogramPoint {
                    tick,
                    unix_nanos,
                    mono_nanos,
                    delta: histogram_delta(hist, prev),
                },
            );
        }
        self.last = Some(snap.clone());
        self.ticks += 1;
        tick
    }

    /// Copy the rings out into a mergeable snapshot.
    pub fn snapshot(&self) -> SeriesSnapshot {
        SeriesSnapshot {
            capacity: self.capacity,
            ticks: self.ticks,
            counters: self
                .counters
                .iter()
                .map(|(id, ring)| (id.clone(), ring.iter().copied().collect()))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(id, ring)| (id.clone(), ring.iter().copied().collect()))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(id, ring)| (id.clone(), ring.iter().cloned().collect()))
                .collect(),
        }
    }

    /// Sum of counter deltas over the newest `window` ticks, across every
    /// instrument matching `name` and carrying all of `labels`.
    pub fn counter_window_sum(&self, name: &str, labels: &[(&str, &str)], window: u64) -> u64 {
        let cutoff = self.window_cutoff(window);
        sum_counter_deltas(
            self.counters
                .iter()
                .map(|(id, ring)| (id, ring.iter().copied())),
            name,
            labels,
            cutoff,
        )
    }

    /// Windowed quantile over the newest `window` ticks of every
    /// histogram matching `name`/`labels`. `None` when no samples landed
    /// in the window.
    pub fn window_quantile(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        q: f64,
        window: u64,
    ) -> Option<u64> {
        let cutoff = self.window_cutoff(window);
        window_quantile_impl(
            self.histograms
                .iter()
                .map(|(id, ring)| (id, ring.iter().cloned())),
            name,
            labels,
            q,
            cutoff,
        )
    }

    /// Latest level of the first gauge matching `name`/`labels`.
    pub fn gauge_level(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.gauges
            .iter()
            .filter(|(id, _)| selector_matches(id, name, labels))
            .filter_map(|(_, ring)| ring.back().map(|p| p.level))
            .next()
    }

    /// First tick ordinal inside the newest `window` ticks.
    fn window_cutoff(&self, window: u64) -> u64 {
        self.ticks.saturating_sub(window.max(1))
    }
}

fn push_point<T>(ring: &mut VecDeque<T>, capacity: usize, point: T) {
    if ring.len() == capacity {
        ring.pop_front();
    }
    ring.push_back(point);
}

fn selector_matches(id: &InstrumentId, name: &str, labels: &[(&str, &str)]) -> bool {
    id.name == name && labels.iter().all(|&(k, v)| id.label(k) == Some(v))
}

fn sum_counter_deltas<'a, I, P>(series: I, name: &str, labels: &[(&str, &str)], cutoff: u64) -> u64
where
    I: Iterator<Item = (&'a InstrumentId, P)>,
    P: Iterator<Item = CounterPoint>,
{
    series
        .filter(|(id, _)| selector_matches(id, name, labels))
        .flat_map(|(_, points)| points)
        .filter(|p| p.tick >= cutoff)
        .map(|p| p.delta)
        .sum()
}

fn window_quantile_impl<'a, I, P>(
    series: I,
    name: &str,
    labels: &[(&str, &str)],
    q: f64,
    cutoff: u64,
) -> Option<u64>
where
    I: Iterator<Item = (&'a InstrumentId, P)>,
    P: Iterator<Item = HistogramPoint>,
{
    let mut merged: Option<HistogramSnapshot> = None;
    for (_, points) in series.filter(|(id, _)| selector_matches(id, name, labels)) {
        for p in points.filter(|p| p.tick >= cutoff) {
            merged = Some(match merged.take() {
                Some(acc) => acc.merge(&p.delta),
                None => p.delta,
            });
        }
    }
    let merged = merged?;
    if merged.count() == 0 {
        None
    } else {
        Some(merged.quantile(q))
    }
}

/// Mergeable copy of a [`SeriesStore`]'s rings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesSnapshot {
    /// Ring capacity of the source store (merge keeps the larger).
    pub capacity: usize,
    /// Ticks the source store had observed.
    pub ticks: u64,
    /// Counter point series, oldest first.
    pub counters: BTreeMap<InstrumentId, Vec<CounterPoint>>,
    /// Gauge point series, oldest first.
    pub gauges: BTreeMap<InstrumentId, Vec<GaugePoint>>,
    /// Histogram point series, oldest first.
    pub histograms: BTreeMap<InstrumentId, Vec<HistogramPoint>>,
}

impl SeriesSnapshot {
    /// Pool another snapshot into this one. Point lists for the same
    /// instrument are aligned by tick ordinal: same-tick counter deltas
    /// and totals add, gauge levels add, histogram deltas merge, and the
    /// later capture stamp wins — so merging per-shard series observed on
    /// a shared tick schedule equals the series of the merged registry
    /// (`merge∘delta == delta∘merge`). Each ring keeps its newest
    /// `capacity` points.
    pub fn merge(mut self, other: &SeriesSnapshot) -> SeriesSnapshot {
        let capacity = self.capacity.max(other.capacity).max(1);
        for (id, points) in &other.counters {
            let mine = self.counters.entry(id.clone()).or_default();
            merge_points(
                mine,
                points,
                capacity,
                |a, b| a.tick.cmp(&b.tick),
                |a, b| CounterPoint {
                    tick: a.tick,
                    unix_nanos: a.unix_nanos.max(b.unix_nanos),
                    mono_nanos: a.mono_nanos.max(b.mono_nanos),
                    delta: a.delta + b.delta,
                    total: a.total + b.total,
                },
            );
        }
        for (id, points) in &other.gauges {
            let mine = self.gauges.entry(id.clone()).or_default();
            merge_points(
                mine,
                points,
                capacity,
                |a, b| a.tick.cmp(&b.tick),
                |a, b| GaugePoint {
                    tick: a.tick,
                    unix_nanos: a.unix_nanos.max(b.unix_nanos),
                    mono_nanos: a.mono_nanos.max(b.mono_nanos),
                    level: a.level + b.level,
                },
            );
        }
        for (id, points) in &other.histograms {
            let mine = self.histograms.entry(id.clone()).or_default();
            merge_points(
                mine,
                points,
                capacity,
                |a, b| a.tick.cmp(&b.tick),
                |a, b| HistogramPoint {
                    tick: a.tick,
                    unix_nanos: a.unix_nanos.max(b.unix_nanos),
                    mono_nanos: a.mono_nanos.max(b.mono_nanos),
                    delta: a.delta.merge(&b.delta),
                },
            );
        }
        self.capacity = capacity;
        self.ticks = self.ticks.max(other.ticks);
        self
    }

    /// True when no instrument has any points.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Sum of counter deltas over the newest `window` ticks across
    /// matching instruments (see [`SeriesStore::counter_window_sum`]).
    pub fn counter_window_sum(&self, name: &str, labels: &[(&str, &str)], window: u64) -> u64 {
        let cutoff = self.ticks.saturating_sub(window.max(1));
        sum_counter_deltas(
            self.counters
                .iter()
                .map(|(id, points)| (id, points.iter().copied())),
            name,
            labels,
            cutoff,
        )
    }

    /// Windowed quantile across matching histograms (see
    /// [`SeriesStore::window_quantile`]).
    pub fn window_quantile(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        q: f64,
        window: u64,
    ) -> Option<u64> {
        let cutoff = self.ticks.saturating_sub(window.max(1));
        window_quantile_impl(
            self.histograms
                .iter()
                .map(|(id, points)| (id, points.iter().cloned())),
            name,
            labels,
            q,
            cutoff,
        )
    }
}

/// Pairwise merge of two tick-sorted point lists: equal keys combine,
/// others interleave; keeps the newest `capacity` entries.
fn merge_points<T: Clone>(
    mine: &mut Vec<T>,
    theirs: &[T],
    capacity: usize,
    cmp: impl Fn(&T, &T) -> std::cmp::Ordering,
    combine: impl Fn(&T, &T) -> T,
) {
    let mut out = Vec::with_capacity(mine.len() + theirs.len());
    let (mut i, mut j) = (0, 0);
    while i < mine.len() && j < theirs.len() {
        match cmp(&mine[i], &theirs[j]) {
            std::cmp::Ordering::Less => {
                out.push(mine[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(theirs[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(combine(&mine[i], &theirs[j]));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&mine[i..]);
    out.extend(theirs[j..].iter().cloned());
    if out.len() > capacity {
        out.drain(..out.len() - capacity);
    }
    *mine = out;
}

/// Hook invoked after every tick with the freshly-updated store (the SLO
/// evaluator rides one of these).
pub type TickHook = Box<dyn Fn(&SeriesStore) + Send + Sync>;

/// Background scrape loop: samples a snapshot closure on a fixed tick,
/// feeds a [`SeriesStore`], then runs the tick hooks. When a tracer is
/// attached, each tick runs inside an `ops`-component span so anything
/// the hooks record (SLO alert events, notably) carries a resolvable
/// trace id. Dropping the scraper stops the thread.
pub struct Scraper {
    store: Arc<Mutex<SeriesStore>>,
    sample: Arc<dyn Fn() -> RegistrySnapshot + Send + Sync>,
    hooks: Arc<Vec<TickHook>>,
    tracer: Option<Arc<Tracer>>,
    stop: Arc<AtomicBool>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Scraper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scraper")
            .field("ticks", &self.store().ticks())
            .finish()
    }
}

impl Scraper {
    /// Start a scraper over `sample`. `hooks` run after every tick;
    /// `tracer` (if any) wraps each tick in a span.
    pub fn spawn(
        config: SeriesConfig,
        sample: impl Fn() -> RegistrySnapshot + Send + Sync + 'static,
        hooks: Vec<TickHook>,
        tracer: Option<Arc<Tracer>>,
    ) -> Scraper {
        let scraper = Scraper {
            store: Arc::new(Mutex::new(SeriesStore::new(config.capacity))),
            sample: Arc::new(sample),
            hooks: Arc::new(hooks),
            tracer,
            stop: Arc::new(AtomicBool::new(false)),
            thread: Mutex::new(None),
        };
        let store = Arc::clone(&scraper.store);
        let sample = Arc::clone(&scraper.sample);
        let hooks = Arc::clone(&scraper.hooks);
        let tracer = scraper.tracer.clone();
        let stop = Arc::clone(&scraper.stop);
        let tick = config.tick;
        let handle = std::thread::Builder::new()
            .name("ops-scraper".into())
            .spawn(move || {
                // Sleep in short slices so `stop()` never has to wait
                // out a long tick mid-sleep.
                let slice = Duration::from_millis(10).min(tick.max(Duration::from_millis(1)));
                loop {
                    let mut slept = Duration::ZERO;
                    while slept < tick {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        let nap = slice.min(tick - slept);
                        std::thread::sleep(nap);
                        slept += nap;
                    }
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    run_tick(&store, sample.as_ref(), &hooks, tracer.as_ref());
                }
            });
        if let Ok(handle) = handle {
            *scraper
                .thread
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = Some(handle);
        }
        scraper
    }

    /// Run one synchronous tick (sample + observe + hooks). Used for
    /// deterministic tests and to settle alerts at campaign end.
    pub fn tick_now(&self) {
        run_tick(
            &self.store,
            self.sample.as_ref(),
            &self.hooks,
            self.tracer.as_ref(),
        );
    }

    /// Snapshot of the underlying store's rings.
    pub fn series(&self) -> SeriesSnapshot {
        self.store().snapshot()
    }

    /// Ticks observed so far (background + synchronous).
    pub fn ticks(&self) -> u64 {
        self.store().ticks()
    }

    /// Stop the background thread and wait for it to exit. Idempotent.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        let handle = self
            .thread
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    fn store(&self) -> std::sync::MutexGuard<'_, SeriesStore> {
        self.store.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Drop for Scraper {
    fn drop(&mut self) {
        self.stop();
    }
}

fn run_tick(
    store: &Mutex<SeriesStore>,
    sample: &(dyn Fn() -> RegistrySnapshot + Send + Sync),
    hooks: &[TickHook],
    tracer: Option<&Arc<Tracer>>,
) {
    // Each tick is its own trace: `root_span` starts one even with no
    // ambient context, so hook-recorded events (SLO alerts) always
    // carry a resolvable trace id.
    let span = tracer.map(|t| t.root_span("ops", "scrape-tick"));
    let snap = sample();
    let mut guard = store.lock().unwrap_or_else(PoisonError::into_inner);
    guard.observe(&snap);
    for hook in hooks {
        hook(&guard);
    }
    drop(guard);
    if let Some(span) = span {
        span.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn snap_with(counter: u64, gauge: i64) -> RegistrySnapshot {
        let registry = Registry::new();
        registry.counter("test_total", &[]).add(counter);
        registry.gauge("test_level", &[]).set(gauge);
        registry.snapshot()
    }

    #[test]
    fn counter_deltas_follow_increments() {
        let mut store = SeriesStore::new(8);
        store.observe(&snap_with(3, 1));
        store.observe(&snap_with(10, 5));
        let snap = store.snapshot();
        let points = snap
            .counters
            .values()
            .next()
            .expect("counter series present");
        assert_eq!(points[0].delta, 3);
        assert_eq!(points[1].delta, 7);
        assert_eq!(points[1].total, 10);
        assert_eq!(store.counter_window_sum("test_total", &[], 1), 7);
        assert_eq!(store.counter_window_sum("test_total", &[], 10), 10);
        assert_eq!(store.gauge_level("test_level", &[]), Some(5));
    }

    #[test]
    fn backwards_snapshot_saturates_to_zero() {
        let mut store = SeriesStore::new(8);
        store.observe(&snap_with(10, 0));
        store.observe(&snap_with(4, 0));
        let snap = store.snapshot();
        let points = snap
            .counters
            .values()
            .next()
            .expect("counter series present");
        assert_eq!(points[1].delta, 0);
    }

    #[test]
    fn ring_keeps_newest_capacity_points() {
        let mut store = SeriesStore::new(3);
        for i in 1..=7u64 {
            store.observe(&snap_with(i, 0));
        }
        let snap = store.snapshot();
        let points = snap
            .counters
            .values()
            .next()
            .expect("counter series present");
        assert_eq!(points.len(), 3);
        assert_eq!(
            points.iter().map(|p| p.tick).collect::<Vec<_>>(),
            vec![4, 5, 6]
        );
    }

    #[test]
    fn windowed_quantile_reflects_only_window() {
        let registry = Registry::new();
        let hist = registry.histogram("test_nanos", &[]);
        let mut store = SeriesStore::new(8);
        hist.record(1_000_000);
        store.observe(&registry.snapshot());
        hist.record(500);
        store.observe(&registry.snapshot());
        // Last tick saw only the 500ns sample; lifetime p99 would be ~1ms.
        let windowed = store
            .window_quantile("test_nanos", &[], 0.99, 1)
            .expect("samples in window");
        assert!(windowed < 10_000, "windowed p99 {windowed} should be small");
        let lifetime = store
            .window_quantile("test_nanos", &[], 0.99, 10)
            .expect("samples in window");
        assert!(lifetime >= 500_000, "lifetime-window p99 {lifetime}");
        assert_eq!(store.window_quantile("missing", &[], 0.99, 1), None);
    }

    #[test]
    fn scraper_ticks_and_hooks_run() {
        let registry = Arc::new(Registry::new());
        let counter = registry.counter("test_total", &[]);
        let seen = Arc::new(AtomicBool::new(false));
        let seen_hook = Arc::clone(&seen);
        let reg = Arc::clone(&registry);
        let scraper = Scraper::spawn(
            SeriesConfig {
                capacity: 16,
                tick: Duration::from_secs(3600),
            },
            move || reg.snapshot(),
            vec![Box::new(move |store: &SeriesStore| {
                if store.ticks() > 0 {
                    seen_hook.store(true, Ordering::Relaxed);
                }
            })],
            None,
        );
        counter.add(5);
        scraper.tick_now();
        assert_eq!(scraper.ticks(), 1);
        assert!(seen.load(Ordering::Relaxed));
        let series = scraper.series();
        assert_eq!(series.counter_window_sum("test_total", &[], 1), 5);
        scraper.stop();
    }
}
