//! Prometheus-style text exposition: rendering and (for tests and
//! scrapers) parsing.
//!
//! The rendered format is the classic text format subset:
//!
//! ```text
//! # TYPE marketscope_net_requests_total counter
//! marketscope_net_requests_total{market="huawei"} 1204
//! # TYPE marketscope_net_handler_nanos histogram
//! marketscope_net_handler_nanos_bucket{market="huawei",le="1023"} 17
//! marketscope_net_handler_nanos_bucket{market="huawei",le="+Inf"} 1204
//! marketscope_net_handler_nanos_sum{market="huawei"} 88211930
//! marketscope_net_handler_nanos_count{market="huawei"} 1204
//! ```
//!
//! Histogram buckets are cumulative with log2 upper bounds; empty tail
//! buckets are elided (the `+Inf` bucket always closes the series).

use crate::registry::{InstrumentId, RegistrySnapshot};
use std::fmt::Write as _;

/// Render a snapshot as exposition text.
pub fn render(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut last_type_line = String::new();
    let mut type_line = |out: &mut String, name: &str, kind: &str| {
        let line = format!("# TYPE {name} {kind}\n");
        if line != last_type_line {
            out.push_str(&line);
            last_type_line = line;
        }
    };

    for (id, v) in &snap.counters {
        type_line(&mut out, &id.name, "counter");
        let _ = writeln!(out, "{id} {v}");
    }
    for (id, v) in &snap.gauges {
        type_line(&mut out, &id.name, "gauge");
        let _ = writeln!(out, "{id} {v}");
    }
    for (id, h) in &snap.histograms {
        type_line(&mut out, &id.name, "histogram");
        for (le, cum) in h.cumulative() {
            let _ = writeln!(
                out,
                "{} {cum}",
                with_label(id, "_bucket", "le", &le.to_string())
            );
        }
        let _ = writeln!(
            out,
            "{} {}",
            with_label(id, "_bucket", "le", "+Inf"),
            h.count()
        );
        let _ = writeln!(out, "{} {}", with_suffix(id, "_sum"), h.sum);
        let _ = writeln!(out, "{} {}", with_suffix(id, "_count"), h.count());
        let _ = writeln!(out, "{} {}", with_suffix(id, "_max"), h.max);
    }
    out
}

fn with_suffix(id: &InstrumentId, suffix: &str) -> String {
    let mut renamed = id.clone();
    renamed.name.push_str(suffix);
    renamed.to_string()
}

fn with_label(id: &InstrumentId, suffix: &str, key: &str, value: &str) -> String {
    let mut renamed = id.clone();
    renamed.name.push_str(suffix);
    renamed.labels.push((key.to_owned(), value.to_owned()));
    renamed.labels.sort();
    renamed.to_string()
}

/// One parsed exposition line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs, in the order they appeared.
    pub labels: Vec<(String, String)>,
    /// The sample value. `le="+Inf"` labels parse fine; values are `f64`
    /// so counters above 2^53 lose precision (irrelevant at crawl scale).
    pub value: f64,
}

impl Sample {
    /// The value of one label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse exposition text into samples. Comment (`#`) and blank lines are
/// skipped; any other malformed line is an error naming the line.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_line(line).map_err(|e| format!("line {}: {e}: {line:?}", lineno + 1))?);
    }
    Ok(out)
}

fn parse_line(line: &str) -> Result<Sample, &'static str> {
    let (series, value) = line.rsplit_once(' ').ok_or("missing value")?;
    let value: f64 = value.parse().map_err(|_| "unparseable value")?;
    let series = series.trim();
    let (name, labels) = match series.split_once('{') {
        None => (series.to_owned(), Vec::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}').ok_or("unterminated label set")?;
            (name.to_owned(), parse_labels(body)?)
        }
    };
    if name.is_empty() {
        return Err("empty metric name");
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

/// Parse a label-set body (`k="v",k2="v2"`), honouring quoting so values
/// may contain `,`, `=`, `{`/`}` and, via `\"`/`\\`/`\n` escapes, quotes,
/// backslashes and newlines — the inverse of the escaping applied by
/// [`InstrumentId`]'s `Display`.
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, &'static str> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        // Skip separators / trailing comma; stop at end of body.
        while chars.peek() == Some(&',') {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(labels);
        }
        let mut key = String::new();
        loop {
            match chars.next() {
                Some('=') => break,
                Some(c) => key.push(c),
                None => return Err("label missing '='"),
            }
        }
        if chars.next() != Some('"') {
            return Err("label value not quoted");
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    _ => return Err("bad escape in label value"),
                },
                Some(c) => value.push(c),
                None => return Err("unterminated label value"),
            }
        }
        labels.push((key, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("marketscope_net_requests_total", &[("market", "huawei")])
            .add(12);
        r.counter("marketscope_net_requests_total", &[("market", "baidu")])
            .add(3);
        r.gauge("marketscope_net_live_connections", &[("market", "huawei")])
            .set(2);
        let h = r.histogram("marketscope_net_handler_nanos", &[("market", "huawei")]);
        for v in [100u64, 200, 50_000] {
            h.record(v);
        }
        r
    }

    #[test]
    fn render_parse_round_trip() {
        let r = sample_registry();
        let text = r.render();
        let samples = parse(&text).unwrap();

        let find = |name: &str, market: &str| -> f64 {
            samples
                .iter()
                .find(|s| s.name == name && s.label("market") == Some(market))
                .unwrap_or_else(|| panic!("missing {name} market={market}"))
                .value
        };
        assert_eq!(find("marketscope_net_requests_total", "huawei"), 12.0);
        assert_eq!(find("marketscope_net_requests_total", "baidu"), 3.0);
        assert_eq!(find("marketscope_net_live_connections", "huawei"), 2.0);
        assert_eq!(find("marketscope_net_handler_nanos_count", "huawei"), 3.0);
        assert_eq!(
            find("marketscope_net_handler_nanos_sum", "huawei"),
            50_300.0
        );
        assert_eq!(
            find("marketscope_net_handler_nanos_max", "huawei"),
            50_000.0
        );

        // The +Inf bucket equals the count.
        let inf = samples
            .iter()
            .find(|s| {
                s.name == "marketscope_net_handler_nanos_bucket" && s.label("le") == Some("+Inf")
            })
            .unwrap();
        assert_eq!(inf.value, 3.0);

        // Cumulative buckets are monotone.
        let mut buckets: Vec<(u64, f64)> = samples
            .iter()
            .filter(|s| s.name == "marketscope_net_handler_nanos_bucket")
            .filter_map(|s| Some((s.label("le")?.parse::<u64>().ok()?, s.value)))
            .collect();
        buckets.sort_by_key(|&(le, _)| le);
        let mut prev = 0.0;
        for (_, c) in buckets {
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn type_lines_appear_once_per_name() {
        let text = sample_registry().render();
        let type_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE")).collect();
        assert!(type_lines.contains(&"# TYPE marketscope_net_requests_total counter"));
        assert_eq!(
            type_lines.len(),
            type_lines
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            "duplicate TYPE lines in {text}"
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("no_value_here").is_err());
        assert!(parse("name{unterminated 3").is_err());
        assert!(parse("name{k=unquoted} 3").is_err());
        assert!(parse("name abc").is_err());
        // Comments and blanks are fine.
        assert_eq!(parse("# HELP x y\n\n").unwrap().len(), 0);
    }

    #[test]
    fn label_values_with_quotes_and_backslashes_round_trip() {
        let r = Registry::new();
        let values = [
            "plain",
            "has \"quotes\" inside",
            "trailing backslash \\",
            "mix \\\" of both",
            "comma, equals=, brace } {",
            "new\nline",
        ];
        for (i, v) in values.iter().enumerate() {
            r.counter("tricky_total", &[("v", v)]).add(i as u64 + 1);
        }
        let text = r.render();
        let samples = parse(&text).unwrap_or_else(|e| panic!("parse failed: {e}"));
        for (i, v) in values.iter().enumerate() {
            let s = samples
                .iter()
                .find(|s| s.label("v") == Some(*v))
                .unwrap_or_else(|| panic!("missing value {v:?} in:\n{text}"));
            assert_eq!(s.value, i as f64 + 1.0);
        }
    }

    #[test]
    fn parse_rejects_bad_escapes() {
        assert!(parse("name{k=\"bad \\x escape\"} 1").is_err());
        assert!(parse("name{k=\"unterminated} 1").is_err());
    }

    #[test]
    fn parse_handles_bare_names() {
        let s = parse("up 1").unwrap();
        assert_eq!(s[0].name, "up");
        assert!(s[0].labels.is_empty());
        assert_eq!(s[0].value, 1.0);
    }
}
