//! Distributed request tracing: sampled span trees with a bounded,
//! lock-free ring-buffer journal.
//!
//! Counters and histograms (the rest of this crate) answer "how is the
//! fleet doing on average"; this module answers "where did *this one*
//! request spend its time". A [`Tracer`] makes a head-based sampling
//! decision when a root span opens; every descendant of a sampled root —
//! including descendants on the far side of an HTTP hop, linked through
//! the [`TRACE_HEADER`] — records a [`SpanRecord`] into the tracer's
//! [`Journal`] when it finishes. Unsampled roots hand out no-op spans
//! whose whole lifecycle is a couple of branches, so a tracer with
//! `sample_rate: 0.0` costs effectively nothing on the request path.
//!
//! ## Identity
//!
//! Trace and span ids are non-zero 64-bit values drawn from a process-wide
//! splitmix64 sequence. A [`SpanContext`] is the `(trace, span)` pair; its
//! wire form is `"{trace:016x}-{span:016x}"`, carried in the
//! `x-marketscope-trace` request header.
//!
//! ## Parenting
//!
//! Within a thread, spans parent implicitly: opening a span pushes its
//! context onto a thread-local stack, and [`Tracer::span`] parents under
//! the top of that stack. Across threads or across the wire, parent
//! explicitly with [`Tracer::child_of`]. [`current`] exposes the innermost
//! active context (for header injection) and [`current_event`] appends a
//! timestamped event to the innermost active span (for annotations like
//! `rate_limited` deep inside handlers that never see the span itself).
//!
//! ## The journal
//!
//! Finished spans go into a fixed-capacity ring: a single atomic
//! `fetch_add` claims a slot, then a per-slot mutex guards the write.
//! Claiming is lock-free and slot locks only contend when the ring wraps
//! all the way around between two claims, so recording stays cheap under
//! heavy concurrency while old spans are overwritten oldest-first.
//! [`JournalSnapshot`]s are mergeable, like every other snapshot in this
//! crate, so fleet-side and crawler-side journals combine into one
//! timeline.
//!
//! All timestamps are nanoseconds since a process-wide epoch (first use),
//! so spans recorded by *different* tracers in the same process — the
//! fleet's and the crawler's — line up on one clock.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Request header carrying the wire form of a [`SpanContext`].
pub const TRACE_HEADER: &str = "x-marketscope-trace";

/// splitmix64: the standard 64-bit finalizer. Good dispersion, no state.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Process-wide id sequence; splitmix64 of a counter yields well-mixed,
/// practically-unique non-zero ids without any external RNG dependency.
fn next_id() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0x6d61_726b_6574_7363); // "marketsc"
    loop {
        let id = splitmix64(SEQ.fetch_add(1, Ordering::Relaxed));
        if id != 0 {
            return id;
        }
    }
}

/// Nanoseconds since the process-wide trace epoch (lazily initialised on
/// first use). Shared by every tracer in the process so cross-tracer
/// span trees order correctly.
pub fn epoch_nanos() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// The identity of one span within one trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanContext {
    /// The trace this span belongs to (shared by the whole tree).
    pub trace_id: u64,
    /// This span's own id.
    pub span_id: u64,
}

impl SpanContext {
    /// Wire form: `"{trace:016x}-{span:016x}"`, as carried by
    /// [`TRACE_HEADER`].
    pub fn render(&self) -> String {
        format!("{:016x}-{:016x}", self.trace_id, self.span_id)
    }

    /// Parse the wire form back. Returns `None` on malformed input or a
    /// zero id (zero is reserved as "absent").
    pub fn parse(s: &str) -> Option<SpanContext> {
        let (t, sp) = s.split_once('-')?;
        let trace_id = u64::from_str_radix(t, 16).ok()?;
        let span_id = u64::from_str_radix(sp, 16).ok()?;
        if trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(SpanContext { trace_id, span_id })
    }
}

impl fmt::Display for SpanContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}-{:016x}", self.trace_id, self.span_id)
    }
}

/// One timestamped annotation inside a span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Nanoseconds since the process trace epoch.
    pub at_nanos: u64,
    /// Short label (`retry`, `rate_limited`, `backfill`, ...).
    pub label: String,
}

/// One finished span, as stored in the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id within the same trace, if any.
    pub parent_id: Option<u64>,
    /// Which component recorded it (`crawler`, `client`, `server`, ...).
    pub component: &'static str,
    /// Operation name (`GET /apk/{pkg}`, `stage:dedup`, ...).
    pub name: String,
    /// Start, nanoseconds since the process trace epoch.
    pub start_nanos: u64,
    /// End, nanoseconds since the process trace epoch.
    pub end_nanos: u64,
    /// Timestamped annotations recorded while the span was open.
    pub events: Vec<SpanEvent>,
}

impl SpanRecord {
    /// Wall duration in nanoseconds.
    pub fn duration_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }
}

/// Fixed-capacity, overwrite-oldest journal of finished spans.
///
/// A slot is claimed with one atomic `fetch_add` (lock-free); the write
/// into the claimed slot takes that slot's own mutex, which only contends
/// if the ring wraps fully around between claim and write.
#[derive(Debug)]
pub struct Journal {
    slots: Vec<Mutex<Option<SpanRecord>>>,
    cursor: AtomicU64,
}

impl Journal {
    /// A journal holding at most `capacity` spans (0 disables recording).
    pub fn new(capacity: usize) -> Journal {
        Journal {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Append one record, overwriting the oldest if full.
    pub fn push(&self, record: SpanRecord) {
        if self.slots.is_empty() {
            return;
        }
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(record);
    }

    /// Total spans ever pushed (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the retained spans, sorted by start time.
    pub fn snapshot(&self) -> JournalSnapshot {
        let mut records: Vec<SpanRecord> = self
            .slots
            .iter()
            .filter_map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clone()
            })
            .collect();
        records.sort_by_key(|r| (r.start_nanos, r.span_id));
        let recorded = self.recorded();
        let retained = records.len() as u64;
        JournalSnapshot {
            records,
            recorded,
            overwritten: recorded.saturating_sub(retained),
        }
    }
}

/// An immutable copy of a [`Journal`]: mergeable across tracers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalSnapshot {
    /// Retained spans, sorted by start time.
    pub records: Vec<SpanRecord>,
    /// Total spans ever recorded by the source journal(s).
    pub recorded: u64,
    /// Spans lost to ring overwrite.
    pub overwritten: u64,
}

impl JournalSnapshot {
    /// Merge two snapshots into one combined timeline (sorted by start).
    pub fn merge(mut self, other: &JournalSnapshot) -> JournalSnapshot {
        self.records.extend(other.records.iter().cloned());
        self.records.sort_by_key(|r| (r.start_nanos, r.span_id));
        self.recorded += other.recorded;
        self.overwritten += other.overwritten;
        self
    }

    /// All spans belonging to one trace, in start order.
    pub fn trace(&self, trace_id: u64) -> Vec<&SpanRecord> {
        self.records
            .iter()
            .filter(|r| r.trace_id == trace_id)
            .collect()
    }

    /// Distinct trace ids present, in first-seen (start-time) order.
    pub fn trace_ids(&self) -> Vec<u64> {
        let mut seen = Vec::new();
        for r in &self.records {
            if !seen.contains(&r.trace_id) {
                seen.push(r.trace_id);
            }
        }
        seen
    }

    /// Whether nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.recorded == 0 && self.records.is_empty()
    }
}

/// Tracer configuration.
#[derive(Debug, Clone, Copy)]
pub struct TracerConfig {
    /// Probability in `[0, 1]` that a *root* span is sampled. Descendants
    /// (local children and propagated remote children) follow their
    /// root's decision.
    pub sample_rate: f64,
    /// Journal capacity in spans (overwrite-oldest past this).
    pub capacity: usize,
}

impl Default for TracerConfig {
    fn default() -> Self {
        TracerConfig {
            sample_rate: 0.0,
            capacity: 4096,
        }
    }
}

impl TracerConfig {
    /// Sample every root (for tests and one-shot exports).
    pub fn always(capacity: usize) -> TracerConfig {
        TracerConfig {
            sample_rate: 1.0,
            capacity,
        }
    }

    /// Never sample locally, but keep a journal so *propagated* remote
    /// parents (already sampled upstream) still record here.
    pub fn propagate_only(capacity: usize) -> TracerConfig {
        TracerConfig {
            sample_rate: 0.0,
            capacity,
        }
    }
}

/// Shared event sink of one active span.
type EventSink = Arc<Mutex<Vec<SpanEvent>>>;

thread_local! {
    /// Innermost-last stack of `(context, event sink)` for the active
    /// spans opened on this thread.
    static ACTIVE: RefCell<Vec<(SpanContext, EventSink)>> = const { RefCell::new(Vec::new()) };
}

/// The innermost active sampled span context on this thread, if any.
pub fn current() -> Option<SpanContext> {
    ACTIVE.with(|a| a.borrow().last().map(|(ctx, _)| *ctx))
}

/// Append a timestamped event to the innermost active sampled span on
/// this thread. A no-op when no sampled span is open — callers annotate
/// unconditionally and pay nothing when tracing is off.
pub fn current_event(label: &str) {
    ACTIVE.with(|a| {
        if let Some((_, events)) = a.borrow().last() {
            events
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(SpanEvent {
                    at_nanos: epoch_nanos(),
                    label: label.to_owned(),
                });
        }
    });
}

/// A sampling tracer with a bounded journal.
///
/// ```
/// use marketscope_telemetry::trace::{Tracer, TracerConfig};
/// use std::sync::Arc;
///
/// let tracer = Arc::new(Tracer::new(TracerConfig::always(1024)));
/// {
///     let root = tracer.root_span("crawler", "fetch");
///     let _child = tracer.span("client", "GET /index"); // parents under root
///     root.event("retry");
/// } // both record on drop
/// let snap = tracer.snapshot();
/// assert_eq!(snap.records.len(), 2);
/// ```
#[derive(Debug)]
pub struct Tracer {
    /// Sampling threshold: a root is sampled iff `splitmix64(seq) <
    /// threshold`; 0 never samples and `u64::MAX` always does.
    threshold: u64,
    seq: AtomicU64,
    journal: Journal,
}

impl Tracer {
    /// Build a tracer from a config.
    pub fn new(config: TracerConfig) -> Tracer {
        let threshold = if config.sample_rate <= 0.0 {
            0
        } else if config.sample_rate >= 1.0 {
            u64::MAX
        } else {
            (config.sample_rate * u64::MAX as f64) as u64
        };
        Tracer {
            threshold,
            seq: AtomicU64::new(1),
            journal: Journal::new(config.capacity),
        }
    }

    /// A tracer that records nothing and samples nothing.
    pub fn disabled() -> Tracer {
        Tracer::new(TracerConfig {
            sample_rate: 0.0,
            capacity: 0,
        })
    }

    fn sample(&self) -> bool {
        match self.threshold {
            0 => false,
            u64::MAX => true,
            t => splitmix64(self.seq.fetch_add(1, Ordering::Relaxed)) < t,
        }
    }

    /// Open a root span, making a fresh sampling decision. Returns a
    /// no-op span when the decision is negative.
    pub fn root_span(self: &Arc<Self>, component: &'static str, name: &str) -> TraceSpan {
        if !self.sample() {
            return TraceSpan { inner: None };
        }
        let trace_id = next_id();
        self.open(trace_id, None, component, name)
    }

    /// Open a span parented under the innermost active span on this
    /// thread. No-op when no sampled span is active (so tracing-off
    /// costs one thread-local read).
    pub fn span(self: &Arc<Self>, component: &'static str, name: &str) -> TraceSpan {
        match current() {
            Some(parent) => self.open(parent.trace_id, Some(parent.span_id), component, name),
            None => TraceSpan { inner: None },
        }
    }

    /// Open a span under an explicit parent context — the cross-thread /
    /// cross-wire form. `None` parent yields a no-op span: an absent
    /// header means the caller wasn't sampled, so neither are we.
    pub fn child_of(
        self: &Arc<Self>,
        parent: Option<SpanContext>,
        component: &'static str,
        name: &str,
    ) -> TraceSpan {
        match parent {
            Some(p) => self.open(p.trace_id, Some(p.span_id), component, name),
            None => TraceSpan { inner: None },
        }
    }

    fn open(
        self: &Arc<Self>,
        trace_id: u64,
        parent_id: Option<u64>,
        component: &'static str,
        name: &str,
    ) -> TraceSpan {
        let ctx = SpanContext {
            trace_id,
            span_id: next_id(),
        };
        let events = Arc::new(Mutex::new(Vec::new()));
        ACTIVE.with(|a| a.borrow_mut().push((ctx, Arc::clone(&events))));
        TraceSpan {
            inner: Some(ActiveSpan {
                tracer: Arc::clone(self),
                ctx,
                parent_id,
                component,
                name: name.to_owned(),
                start_nanos: epoch_nanos(),
                events,
            }),
        }
    }

    /// Point-in-time copy of the journal.
    pub fn snapshot(&self) -> JournalSnapshot {
        self.journal.snapshot()
    }

    /// Total spans ever recorded (including overwritten).
    pub fn recorded(&self) -> u64 {
        self.journal.recorded()
    }
}

#[derive(Debug)]
struct ActiveSpan {
    tracer: Arc<Tracer>,
    ctx: SpanContext,
    parent_id: Option<u64>,
    component: &'static str,
    name: String,
    start_nanos: u64,
    events: EventSink,
}

/// An open span handle. Records into the tracer's journal exactly once,
/// on [`TraceSpan::finish`] or drop; a no-op when the trace was not
/// sampled, costing only an `Option` check per operation.
#[derive(Debug)]
#[must_use = "a span records when it goes out of scope; bind it to a named variable"]
pub struct TraceSpan {
    inner: Option<ActiveSpan>,
}

impl TraceSpan {
    /// A span that records nothing (for call sites without a tracer).
    pub fn noop() -> TraceSpan {
        TraceSpan { inner: None }
    }

    /// Whether this span is actually recording.
    pub fn is_sampled(&self) -> bool {
        self.inner.is_some()
    }

    /// This span's context (for header injection / explicit parenting),
    /// if sampled.
    pub fn context(&self) -> Option<SpanContext> {
        self.inner.as_ref().map(|s| s.ctx)
    }

    /// Append a timestamped event to this span.
    pub fn event(&self, label: &str) {
        if let Some(s) = &self.inner {
            s.events
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(SpanEvent {
                    at_nanos: epoch_nanos(),
                    label: label.to_owned(),
                });
        }
    }

    /// Finish now (instead of at end of scope).
    pub fn finish(mut self) {
        self.complete();
    }

    fn complete(&mut self) {
        let Some(s) = self.inner.take() else { return };
        // Pop this span off the thread-local stack. Normally it is the
        // innermost entry; a retain-based removal stays correct even if
        // spans finish out of order.
        ACTIVE.with(|a| {
            let mut stack = a.borrow_mut();
            if stack.last().map(|(c, _)| c.span_id) == Some(s.ctx.span_id) {
                stack.pop();
            } else {
                stack.retain(|(c, _)| c.span_id != s.ctx.span_id);
            }
        });
        let events = std::mem::take(
            &mut *s
                .events
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        s.tracer.journal.push(SpanRecord {
            trace_id: s.ctx.trace_id,
            span_id: s.ctx.span_id,
            parent_id: s.parent_id,
            component: s.component,
            name: s.name,
            start_nanos: s.start_nanos,
            end_nanos: epoch_nanos(),
            events,
        });
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        self.complete();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn always(capacity: usize) -> Arc<Tracer> {
        Arc::new(Tracer::new(TracerConfig::always(capacity)))
    }

    #[test]
    fn context_round_trips_through_wire_form() {
        let ctx = SpanContext {
            trace_id: 0xdead_beef_0000_0001,
            span_id: 7,
        };
        let wire = ctx.render();
        assert_eq!(wire, "deadbeef00000001-0000000000000007");
        assert_eq!(SpanContext::parse(&wire), Some(ctx));
        assert_eq!(SpanContext::parse("nope"), None);
        assert_eq!(SpanContext::parse("12-"), None);
        assert_eq!(
            SpanContext::parse("0000000000000000-0000000000000001"),
            None
        );
    }

    #[test]
    fn ids_are_nonzero_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id:#x}");
        }
    }

    #[test]
    fn root_child_parenting_via_thread_local() {
        let t = always(16);
        let root = t.root_span("a", "root");
        let root_ctx = root.context().unwrap();
        let child = t.span("b", "child");
        let child_ctx = child.context().unwrap();
        assert_eq!(child_ctx.trace_id, root_ctx.trace_id);
        child.finish();
        root.finish();
        let snap = t.snapshot();
        assert_eq!(snap.records.len(), 2);
        let child_rec = snap
            .records
            .iter()
            .find(|r| r.span_id == child_ctx.span_id)
            .unwrap();
        assert_eq!(child_rec.parent_id, Some(root_ctx.span_id));
        let root_rec = snap
            .records
            .iter()
            .find(|r| r.span_id == root_ctx.span_id)
            .unwrap();
        assert_eq!(root_rec.parent_id, None);
        assert!(root_rec.start_nanos <= child_rec.start_nanos);
    }

    #[test]
    fn unsampled_tracer_records_nothing() {
        let t = Arc::new(Tracer::new(TracerConfig::default())); // rate 0
        let root = t.root_span("a", "root");
        assert!(!root.is_sampled());
        assert_eq!(root.context(), None);
        let child = t.span("b", "child"); // no active parent either
        assert!(!child.is_sampled());
        root.event("ignored");
        current_event("ignored");
        drop(child);
        drop(root);
        assert!(t.snapshot().is_empty());
        assert_eq!(t.recorded(), 0);
    }

    #[test]
    fn child_of_links_remote_parent() {
        let t = always(16);
        let remote = SpanContext {
            trace_id: 42,
            span_id: 99,
        };
        let server = t.child_of(Some(remote), "server", "handler");
        server.finish();
        assert!(!t.child_of(None, "server", "handler").is_sampled());
        let snap = t.snapshot();
        assert_eq!(snap.records.len(), 1);
        assert_eq!(snap.records[0].trace_id, 42);
        assert_eq!(snap.records[0].parent_id, Some(99));
    }

    #[test]
    fn events_carry_timestamps_inside_the_span() {
        let t = always(16);
        let root = t.root_span("a", "root");
        root.event("first");
        current_event("second"); // via thread-local
        root.finish();
        let snap = t.snapshot();
        let rec = &snap.records[0];
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.events[0].label, "first");
        assert_eq!(rec.events[1].label, "second");
        for e in &rec.events {
            assert!(e.at_nanos >= rec.start_nanos);
            assert!(e.at_nanos <= rec.end_nanos);
        }
    }

    #[test]
    fn journal_overwrites_oldest() {
        let j = Journal::new(4);
        for i in 0..10u64 {
            j.push(SpanRecord {
                trace_id: 1,
                span_id: i + 1,
                parent_id: None,
                component: "t",
                name: format!("s{i}"),
                start_nanos: i,
                end_nanos: i + 1,
                events: Vec::new(),
            });
        }
        let snap = j.snapshot();
        assert_eq!(snap.recorded, 10);
        assert_eq!(snap.overwritten, 6);
        let kept: Vec<u64> = snap.records.iter().map(|r| r.span_id).collect();
        assert_eq!(kept, vec![7, 8, 9, 10]); // the last four pushed
    }

    #[test]
    fn zero_capacity_journal_drops_everything() {
        let t = Arc::new(Tracer::new(TracerConfig {
            sample_rate: 1.0,
            capacity: 0,
        }));
        t.root_span("a", "root").finish();
        assert_eq!(t.snapshot().records.len(), 0);
    }

    #[test]
    fn snapshots_merge_into_one_timeline() {
        let a = always(8);
        let b = always(8);
        a.root_span("a", "one").finish();
        b.root_span("b", "two").finish();
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.records.len(), 2);
        assert_eq!(merged.recorded, 2);
        assert_eq!(merged.trace_ids().len(), 2);
        // Sorted by start time.
        assert!(merged.records[0].start_nanos <= merged.records[1].start_nanos);
    }

    #[test]
    fn sample_rate_half_is_roughly_half() {
        let t = Arc::new(Tracer::new(TracerConfig {
            sample_rate: 0.5,
            capacity: 4096,
        }));
        let mut sampled = 0;
        for _ in 0..2000 {
            let s = t.root_span("a", "r");
            if s.is_sampled() {
                sampled += 1;
            }
            s.finish();
        }
        assert!(
            (600..=1400).contains(&sampled),
            "sampled {sampled}/2000 at rate 0.5"
        );
    }

    #[test]
    fn concurrent_recording_is_safe_and_bounded() {
        let t = always(64);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let root = t.root_span("w", "work");
                        let child = t.span("w", "inner");
                        child.finish();
                        root.finish();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = t.snapshot();
        assert_eq!(snap.recorded, 1600);
        assert_eq!(snap.records.len(), 64);
        assert_eq!(snap.overwritten, 1536);
    }
}
