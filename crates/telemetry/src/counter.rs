//! Monotonic counters and up/down gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// Incrementing is one relaxed `fetch_add`; reads are relaxed loads.
/// Relaxed ordering is sufficient because counters carry no cross-thread
/// synchronization obligations — a snapshot only promises to contain every
/// increment that *happened before* the snapshot was taken by the same
/// thread, which matches how scrapers use them.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways (live connections,
/// queue depth). Same lock-free properties as [`Counter`].
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite with `n`.
    #[inline]
    pub fn set(&self, n: i64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.add(-5);
        assert_eq!(g.get(), -4);
        g.set(7);
        assert_eq!(g.get(), 7);
    }
}
