//! Trace exporters: Chrome trace-event JSON and a flamegraph-style
//! self-time aggregation over [`JournalSnapshot`]s.
//!
//! The Chrome format ([`chrome_trace`]) loads directly into
//! `chrome://tracing` or Perfetto: each span becomes a `ph:"X"` complete
//! event (timestamps and durations in microseconds), each span event a
//! `ph:"i"` instant event, and components map to synthetic "threads"
//! named via `ph:"M"` metadata so the viewer groups crawler, client,
//! server and analysis rows separately.
//!
//! The flamegraph export ([`flamegraph`]) folds every span into its
//! root-to-leaf name path and aggregates *self* time (duration minus
//! children) per path — the collapsed-stack text format consumed by
//! `flamegraph.pl`-style tooling, and a quick way to eyeball where a
//! campaign spent its wall clock without leaving the terminal.

use crate::trace::{JournalSnapshot, SpanRecord};
use std::collections::{BTreeMap, HashMap};

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a journal snapshot as Chrome trace-event JSON
/// (`{"traceEvents": [...]}`), loadable in `chrome://tracing` / Perfetto.
pub fn chrome_trace(snap: &JournalSnapshot) -> String {
    // Stable component -> tid mapping, in first-seen order.
    let mut tids: BTreeMap<&'static str, u64> = BTreeMap::new();
    for r in &snap.records {
        let next = tids.len() as u64 + 1;
        tids.entry(r.component).or_insert(next);
    }
    let mut events = Vec::new();
    for (component, tid) in &tids {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(component)
        ));
    }
    for r in &snap.records {
        let tid = tids[r.component];
        let ts = r.start_nanos / 1_000;
        let dur = r.duration_nanos().max(1_000) / 1_000; // >= 1us so the viewer shows it
        let parent = match r.parent_id {
            Some(p) => format!("\"{p:016x}\""),
            None => "null".to_owned(),
        };
        events.push(format!(
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\
             \"name\":\"{}\",\"args\":{{\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\
             \"parent\":{parent}}}}}",
            json_escape(&r.name),
            r.trace_id,
            r.span_id,
        ));
        for e in &r.events {
            events.push(format!(
                "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"s\":\"t\",\
                 \"name\":\"{}\",\"args\":{{\"trace\":\"{:016x}\",\"span\":\"{:016x}\"}}}}",
                e.at_nanos / 1_000,
                json_escape(&e.label),
                r.trace_id,
                r.span_id,
            ));
        }
    }
    format!("{{\"traceEvents\":[{}]}}", events.join(","))
}

/// Per-trace span index: span id -> record, plus parent -> children.
struct TraceTree<'a> {
    by_id: HashMap<u64, &'a SpanRecord>,
    children: HashMap<u64, Vec<&'a SpanRecord>>,
    roots: Vec<&'a SpanRecord>,
}

fn build_tree<'a>(spans: &[&'a SpanRecord]) -> TraceTree<'a> {
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|r| (r.span_id, *r)).collect();
    let mut children: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
    let mut roots = Vec::new();
    for r in spans {
        match r.parent_id.filter(|p| by_id.contains_key(p)) {
            // A parent id pointing outside the snapshot (overwritten or
            // remote-only) orphans the span; treat it as a root so its
            // time still shows up.
            Some(p) => children.entry(p).or_default().push(*r),
            None => roots.push(*r),
        }
    }
    TraceTree {
        by_id,
        children,
        roots,
    }
}

/// Self time of a span: duration minus the summed durations of its
/// children (saturating — overlapping children can exceed the parent).
fn self_nanos(tree: &TraceTree<'_>, r: &SpanRecord) -> u64 {
    let child_sum: u64 = tree
        .children
        .get(&r.span_id)
        .map(|cs| cs.iter().map(|c| c.duration_nanos()).sum())
        .unwrap_or(0);
    r.duration_nanos().saturating_sub(child_sum)
}

/// Fold a snapshot into collapsed-stack flamegraph lines:
/// `root;child;leaf <self_time_us>`, aggregated across all traces and
/// sorted by path. Suitable for `flamegraph.pl` or quick terminal reads.
pub fn flamegraph(snap: &JournalSnapshot) -> String {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for trace_id in snap.trace_ids() {
        let spans = snap.trace(trace_id);
        let tree = build_tree(&spans);
        for r in &spans {
            // Build the name path by walking parent links.
            let mut path = vec![r.name.as_str()];
            let mut cur = *r;
            while let Some(p) = cur.parent_id.and_then(|p| tree.by_id.get(&p)) {
                path.push(p.name.as_str());
                cur = p;
            }
            path.reverse();
            let self_us = self_nanos(&tree, r) / 1_000;
            *folded.entry(path.join(";")).or_insert(0) += self_us;
        }
    }
    let mut out = String::new();
    for (path, us) in folded {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

/// One row of the "slowest traces" table: a root span plus roll-up stats
/// over its tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Trace id.
    pub trace_id: u64,
    /// The root span's operation name.
    pub root_name: String,
    /// Root span wall duration in nanoseconds.
    pub duration_nanos: u64,
    /// Number of spans retained for this trace.
    pub span_count: usize,
    /// Total events across the trace's spans.
    pub event_count: usize,
    /// Per-span breakdown, deepest-path names with self time, slowest
    /// first: `(name, self_nanos)`.
    pub breakdown: Vec<(String, u64)>,
}

/// The `k` slowest traces by root-span duration, each with a per-span
/// self-time breakdown. Traces whose root span was overwritten out of
/// the ring are ranked by their longest surviving span instead.
pub fn slowest_traces(snap: &JournalSnapshot, k: usize) -> Vec<TraceSummary> {
    let mut rows = Vec::new();
    for trace_id in snap.trace_ids() {
        let spans = snap.trace(trace_id);
        let tree = build_tree(&spans);
        let root = tree
            .roots
            .iter()
            .max_by_key(|r| r.duration_nanos())
            .copied();
        let Some(root) = root else { continue };
        let mut breakdown: Vec<(String, u64)> = spans
            .iter()
            .map(|r| (format!("{}:{}", r.component, r.name), self_nanos(&tree, r)))
            .collect();
        breakdown.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows.push(TraceSummary {
            trace_id,
            root_name: root.name.clone(),
            duration_nanos: root.duration_nanos(),
            span_count: spans.len(),
            event_count: spans.iter().map(|r| r.events.len()).sum(),
            breakdown,
        });
    }
    rows.sort_by(|a, b| {
        b.duration_nanos
            .cmp(&a.duration_nanos)
            .then_with(|| a.trace_id.cmp(&b.trace_id))
    });
    rows.truncate(k);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanEvent, SpanRecord};

    fn rec(
        trace: u64,
        span: u64,
        parent: Option<u64>,
        name: &str,
        start: u64,
        end: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: span,
            parent_id: parent,
            component: "t",
            name: name.to_owned(),
            start_nanos: start,
            end_nanos: end,
            events: Vec::new(),
        }
    }

    fn snap(records: Vec<SpanRecord>) -> JournalSnapshot {
        let recorded = records.len() as u64;
        JournalSnapshot {
            records,
            recorded,
            overwritten: 0,
        }
    }

    #[test]
    fn chrome_trace_is_wellformed_and_complete() {
        let mut r = rec(1, 2, None, "root \"op\"", 1_000, 5_000_000);
        r.events.push(SpanEvent {
            at_nanos: 2_000,
            label: "retry".to_owned(),
        });
        let s = snap(vec![r, rec(1, 3, Some(2), "child\\leaf", 2_000, 3_000_000)]);
        let json = chrome_trace(&s);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\"")); // thread metadata
        assert!(json.contains("\"ph\":\"X\"")); // complete events
        assert!(json.contains("\"ph\":\"i\"")); // instant event
        assert!(json.contains("root \\\"op\\\"")); // escaped quote
        assert!(json.contains("child\\\\leaf")); // escaped backslash
        assert!(json.contains("\"parent\":\"0000000000000002\""));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
    }

    #[test]
    fn chrome_trace_empty_snapshot() {
        assert_eq!(
            chrome_trace(&JournalSnapshot::default()),
            "{\"traceEvents\":[]}"
        );
    }

    #[test]
    fn flamegraph_folds_self_time_by_path() {
        // root [0, 10ms], child [1ms, 4ms] => root self 7ms, child self 3ms.
        let s = snap(vec![
            rec(1, 1, None, "root", 0, 10_000_000),
            rec(1, 2, Some(1), "child", 1_000_000, 4_000_000),
        ]);
        let fg = flamegraph(&s);
        let lines: Vec<&str> = fg.lines().collect();
        assert_eq!(lines, vec!["root 7000", "root;child 3000"]);
    }

    #[test]
    fn flamegraph_aggregates_same_path_across_traces() {
        let s = snap(vec![
            rec(1, 1, None, "fetch", 0, 1_000_000),
            rec(2, 2, None, "fetch", 0, 2_000_000),
        ]);
        assert_eq!(flamegraph(&s), "fetch 3000\n");
    }

    #[test]
    fn orphaned_span_counts_as_root() {
        // Parent id 99 not in the snapshot (overwritten): still shows up.
        let s = snap(vec![rec(1, 1, Some(99), "lost-parent", 0, 1_000_000)]);
        assert_eq!(flamegraph(&s), "lost-parent 1000\n");
        let rows = slowest_traces(&s, 5);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].root_name, "lost-parent");
    }

    #[test]
    fn slowest_traces_ranks_by_root_duration() {
        let s = snap(vec![
            rec(1, 1, None, "fast", 0, 1_000_000),
            rec(2, 2, None, "slow", 0, 9_000_000),
            rec(2, 3, Some(2), "inner", 0, 4_000_000),
            rec(3, 4, None, "mid", 0, 5_000_000),
        ]);
        let rows = slowest_traces(&s, 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].root_name, "slow");
        assert_eq!(rows[0].span_count, 2);
        assert_eq!(rows[0].duration_nanos, 9_000_000);
        // Breakdown is self-time sorted: slow self 5ms > inner self 4ms.
        assert_eq!(rows[0].breakdown[0], ("t:slow".to_owned(), 5_000_000));
        assert_eq!(rows[0].breakdown[1], ("t:inner".to_owned(), 4_000_000));
        assert_eq!(rows[1].root_name, "mid");
    }
}
