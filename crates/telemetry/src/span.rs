//! RAII span timers.

use crate::histogram::Histogram;
use std::time::{Duration, Instant};

/// A lightweight span: started against a [`Histogram`], it records its
/// elapsed wall time (in nanoseconds) into the histogram when dropped or
/// explicitly [`Span::finish`]ed — whichever comes first, exactly once.
///
/// ```
/// use marketscope_telemetry::Histogram;
///
/// let latency = Histogram::new();
/// {
///     let _span = latency.start_span();
///     // ... handle a request ...
/// } // recorded here
/// assert_eq!(latency.count(), 1);
/// ```
#[derive(Debug)]
pub struct Span<'h> {
    histogram: &'h Histogram,
    start: Option<Instant>,
}

impl<'h> Span<'h> {
    /// Start timing now.
    pub fn start(histogram: &'h Histogram) -> Span<'h> {
        Span {
            histogram,
            start: Some(Instant::now()),
        }
    }

    /// Time elapsed so far (zero after the span has recorded).
    pub fn elapsed(&self) -> Duration {
        self.start.map(|s| s.elapsed()).unwrap_or(Duration::ZERO)
    }

    /// Stop the clock, record into the histogram, and return the elapsed
    /// time. Dropping the span without calling this records too.
    pub fn finish(mut self) -> Duration {
        self.complete()
    }

    /// Abandon the span without recording anything (e.g. when the timed
    /// operation turned out not to happen).
    pub fn cancel(mut self) {
        self.start = None;
    }

    fn complete(&mut self) -> Duration {
        match self.start.take() {
            Some(s) => {
                let d = s.elapsed();
                self.histogram.record_duration(d);
                d
            }
            None => Duration::ZERO,
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.complete();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_once() {
        let h = Histogram::new();
        {
            let _s = h.start_span();
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn finish_records_once_and_disarms_drop() {
        let h = Histogram::new();
        let s = h.start_span();
        std::thread::sleep(Duration::from_millis(2));
        let d = s.finish();
        assert!(d >= Duration::from_millis(2));
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 2_000_000, "sum {} < 2ms in nanos", h.sum());
    }

    #[test]
    fn cancel_records_nothing() {
        let h = Histogram::new();
        h.start_span().cancel();
        assert_eq!(h.count(), 0);
    }
}
