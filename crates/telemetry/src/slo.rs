//! Declarative SLOs with multi-window burn-rate alerting.
//!
//! An [`SloPolicy`] is a list of rules, each binding an objective — an
//! error-rate ceiling, a windowed-quantile ceiling, or an absolute
//! event budget — to a slow evaluation window. The [`SloEvaluator`]
//! re-checks every rule on each scrape tick against the windowed series
//! (never lifetime aggregates), using the classic multi-window burn
//! test: an alert fires only when both the **fast** window (the latest
//! tick) and the **slow** window (the last N ticks) exceed the
//! threshold, which suppresses one-tick blips without missing sustained
//! burns. Each alert walks `ok → firing → resolved`, re-arms from
//! `resolved`, and bumps per-rule fired/resolved counters; transitions
//! are also recorded to the structured [`EventLog`](crate::EventLog)
//! with the scrape tick's trace context attached.

use crate::counter::{Counter, Gauge};
use crate::log::{EventLog, LogLevel};
use crate::registry::Registry;
use crate::series::SeriesStore;
use std::sync::Arc;

/// Selects the instruments a rule reads: a metric name plus a label
/// subset; every instrument carrying all the listed labels matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSelector {
    /// Metric name to match exactly.
    pub name: String,
    /// Label pairs the instrument must carry (subset match).
    pub labels: Vec<(String, String)>,
}

impl MetricSelector {
    /// Build a selector from a name and label pairs.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricSelector {
        MetricSelector {
            name: name.to_owned(),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
        }
    }

    fn label_refs(&self) -> Vec<(&str, &str)> {
        self.labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect()
    }
}

/// What a rule measures and the ceiling it enforces.
#[derive(Debug, Clone, PartialEq)]
pub enum SloObjective {
    /// `sum(bad deltas) / sum(total deltas)` over the window must stay
    /// at or below `max_ratio` (0 when the window saw no traffic).
    ErrorRate {
        /// Counters whose deltas count as bad events.
        bad: Vec<MetricSelector>,
        /// Counter whose deltas count as total events.
        total: MetricSelector,
        /// Highest acceptable bad/total ratio.
        max_ratio: f64,
    },
    /// Average matching counter deltas per tick over the window must
    /// stay at or below `max_per_tick` (0 = any event bursts the
    /// budget).
    Budget {
        /// Counter whose deltas consume the budget.
        events: MetricSelector,
        /// Highest acceptable events-per-tick average.
        max_per_tick: f64,
    },
    /// The windowed quantile of a histogram must stay at or below
    /// `max_value` (no samples in the window = no burn).
    Quantile {
        /// Histogram to read.
        histogram: MetricSelector,
        /// Quantile in `[0, 1]`, e.g. 0.99.
        q: f64,
        /// Highest acceptable quantile value.
        max_value: f64,
    },
}

/// One named rule: an objective plus the slow window's tick count (the
/// fast window is always the latest tick).
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Alert name, used as the `rule` label on counters and events.
    pub name: String,
    /// What to measure.
    pub objective: SloObjective,
    /// Slow-window width in ticks.
    pub slow_window: u64,
}

/// A set of rules evaluated together.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloPolicy {
    /// Rules, evaluated in order.
    pub rules: Vec<SloRule>,
}

impl SloPolicy {
    /// The fleet's default serving policy. Error budgets count **5xx
    /// only**: 404s (BFS probes) and 429s (rate-limiter answers) are
    /// by-design traffic in clean campaigns, while chaos faults surface
    /// as 500/503. Shed/accept-error/breaker-open budgets are zero —
    /// any occurrence is an alert — and the handler p99 ceiling is
    /// deliberately generous (it guards against pathology, not noise,
    /// on a 1-CPU debug-build container).
    pub fn fleet_default() -> SloPolicy {
        SloPolicy {
            rules: vec![
                SloRule {
                    name: "error_rate_5xx".into(),
                    objective: SloObjective::ErrorRate {
                        bad: vec![
                            MetricSelector::new(
                                "marketscope_net_responses_total",
                                &[("status", "500")],
                            ),
                            MetricSelector::new(
                                "marketscope_net_responses_total",
                                &[("status", "503")],
                            ),
                        ],
                        total: MetricSelector::new("marketscope_net_responses_total", &[]),
                        max_ratio: 0.02,
                    },
                    slow_window: 5,
                },
                SloRule {
                    name: "connections_shed".into(),
                    objective: SloObjective::Budget {
                        events: MetricSelector::new("marketscope_net_connections_shed_total", &[]),
                        max_per_tick: 0.0,
                    },
                    slow_window: 5,
                },
                SloRule {
                    name: "accept_errors".into(),
                    objective: SloObjective::Budget {
                        events: MetricSelector::new("marketscope_net_accept_errors_total", &[]),
                        max_per_tick: 0.0,
                    },
                    slow_window: 5,
                },
                SloRule {
                    name: "breaker_opens".into(),
                    objective: SloObjective::Budget {
                        events: MetricSelector::new(
                            "marketscope_net_client_breaker_transitions_total",
                            &[("to", "open")],
                        ),
                        max_per_tick: 0.0,
                    },
                    slow_window: 5,
                },
                SloRule {
                    name: "handler_p99".into(),
                    objective: SloObjective::Quantile {
                        histogram: MetricSelector::new("marketscope_net_handler_nanos", &[]),
                        q: 0.99,
                        max_value: 1_000_000_000.0,
                    },
                    slow_window: 5,
                },
            ],
        }
    }
}

/// Where an alert currently sits in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Never fired (or not since construction).
    Ok,
    /// Both windows are burning.
    Firing,
    /// Fired at least once and has since recovered.
    Resolved,
}

impl AlertState {
    /// Lowercase state name, as rendered in JSON and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }
}

/// The per-rule outcome of the latest evaluation tick.
#[derive(Debug, Clone, PartialEq)]
pub struct SloVerdict {
    /// Rule name.
    pub rule: String,
    /// Current alert state.
    pub state: AlertState,
    /// Burn measured over the fast (latest-tick) window.
    pub fast_burn: f64,
    /// Burn measured over the slow (N-tick) window.
    pub slow_burn: f64,
    /// The rule's ceiling, in the same unit as the burns.
    pub threshold: f64,
    /// Times this alert has fired over the evaluator's lifetime.
    pub fired: u64,
    /// Times this alert has resolved over the evaluator's lifetime.
    pub resolved: u64,
}

struct RuleStatus {
    state: AlertState,
    fired: u64,
    resolved: u64,
    instruments: Option<RuleInstruments>,
}

struct RuleInstruments {
    fired: Arc<Counter>,
    resolved: Arc<Counter>,
    firing: Arc<Gauge>,
}

/// Evaluates an [`SloPolicy`] against a [`SeriesStore`] tick by tick,
/// holding the alert state machines and the latest verdicts.
pub struct SloEvaluator {
    rules: Vec<SloRule>,
    status: Vec<RuleStatus>,
    verdicts: Vec<SloVerdict>,
    log: Option<Arc<EventLog>>,
}

impl std::fmt::Debug for SloEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloEvaluator")
            .field("rules", &self.rules.len())
            .field("firing", &self.any_firing())
            .finish()
    }
}

impl SloEvaluator {
    /// Build an evaluator over `policy` with no instrumentation.
    pub fn new(policy: SloPolicy) -> SloEvaluator {
        let status = policy
            .rules
            .iter()
            .map(|_| RuleStatus {
                state: AlertState::Ok,
                fired: 0,
                resolved: 0,
                instruments: None,
            })
            .collect();
        SloEvaluator {
            rules: policy.rules,
            status,
            verdicts: Vec::new(),
            log: None,
        }
    }

    /// Register per-rule alert counters
    /// (`marketscope_slo_alerts_{fired,resolved}_total{rule=...}`) and a
    /// `marketscope_slo_alerts_firing{rule=...}` gauge in `registry`.
    pub fn instrumented(mut self, registry: &Registry) -> SloEvaluator {
        for (rule, status) in self.rules.iter().zip(self.status.iter_mut()) {
            let labels = [("rule", rule.name.as_str())];
            status.instruments = Some(RuleInstruments {
                fired: registry.counter("marketscope_slo_alerts_fired_total", &labels),
                resolved: registry.counter("marketscope_slo_alerts_resolved_total", &labels),
                firing: registry.gauge("marketscope_slo_alerts_firing", &labels),
            });
        }
        self
    }

    /// Record alert transitions to `log` (with whatever trace context is
    /// active on the evaluating thread).
    pub fn with_log(mut self, log: Arc<EventLog>) -> SloEvaluator {
        self.log = Some(log);
        self
    }

    /// Evaluate every rule against the store's current rings and step
    /// the alert state machines. Returns the fresh verdicts.
    pub fn evaluate(&mut self, store: &SeriesStore) -> Vec<SloVerdict> {
        let mut verdicts = Vec::with_capacity(self.rules.len());
        for (rule, status) in self.rules.iter().zip(self.status.iter_mut()) {
            let fast = measure(&rule.objective, store, 1);
            let slow = measure(&rule.objective, store, rule.slow_window);
            let threshold = objective_threshold(&rule.objective);
            let burning = fast > threshold && slow > threshold;
            match status.state {
                AlertState::Ok | AlertState::Resolved if burning => {
                    status.state = AlertState::Firing;
                    status.fired += 1;
                    if let Some(instruments) = &status.instruments {
                        instruments.fired.inc();
                        instruments.firing.set(1);
                    }
                    if let Some(log) = &self.log {
                        log.record(
                            LogLevel::Warn,
                            "telemetry.slo",
                            "slo alert fired",
                            &[
                                ("rule", rule.name.as_str()),
                                ("fast_burn", &format!("{fast:.4}")),
                                ("slow_burn", &format!("{slow:.4}")),
                                ("threshold", &format!("{threshold:.4}")),
                            ],
                        );
                    }
                }
                AlertState::Firing if fast <= threshold => {
                    status.state = AlertState::Resolved;
                    status.resolved += 1;
                    if let Some(instruments) = &status.instruments {
                        instruments.resolved.inc();
                        instruments.firing.set(0);
                    }
                    if let Some(log) = &self.log {
                        log.record(
                            LogLevel::Info,
                            "telemetry.slo",
                            "slo alert resolved",
                            &[
                                ("rule", rule.name.as_str()),
                                ("fast_burn", &format!("{fast:.4}")),
                            ],
                        );
                    }
                }
                _ => {}
            }
            verdicts.push(SloVerdict {
                rule: rule.name.clone(),
                state: status.state,
                fast_burn: fast,
                slow_burn: slow,
                threshold,
                fired: status.fired,
                resolved: status.resolved,
            });
        }
        self.verdicts = verdicts.clone();
        verdicts
    }

    /// The verdicts from the most recent [`evaluate`](Self::evaluate)
    /// call (empty before the first tick).
    pub fn verdicts(&self) -> Vec<SloVerdict> {
        self.verdicts.clone()
    }

    /// True while any alert is in the `Firing` state.
    pub fn any_firing(&self) -> bool {
        self.status.iter().any(|s| s.state == AlertState::Firing)
    }
}

fn objective_threshold(objective: &SloObjective) -> f64 {
    match objective {
        SloObjective::ErrorRate { max_ratio, .. } => *max_ratio,
        SloObjective::Budget { max_per_tick, .. } => *max_per_tick,
        SloObjective::Quantile { max_value, .. } => *max_value,
    }
}

/// Measure one objective's burn over the newest `window` ticks.
fn measure(objective: &SloObjective, store: &SeriesStore, window: u64) -> f64 {
    match objective {
        SloObjective::ErrorRate { bad, total, .. } => {
            let total_sum =
                store.counter_window_sum(&total.name, &total.label_refs(), window) as f64;
            if total_sum == 0.0 {
                return 0.0;
            }
            let bad_sum: u64 = bad
                .iter()
                .map(|sel| store.counter_window_sum(&sel.name, &sel.label_refs(), window))
                .sum();
            bad_sum as f64 / total_sum
        }
        SloObjective::Budget { events, .. } => {
            let sum = store.counter_window_sum(&events.name, &events.label_refs(), window);
            let span = window.max(1).min(store.ticks().max(1));
            sum as f64 / span as f64
        }
        SloObjective::Quantile { histogram, q, .. } => store
            .window_quantile(&histogram.name, &histogram.label_refs(), *q, window)
            .map(|v| v as f64)
            .unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn error_rate_policy() -> SloPolicy {
        SloPolicy {
            rules: vec![SloRule {
                name: "errors".into(),
                objective: SloObjective::ErrorRate {
                    bad: vec![MetricSelector::new("resp_total", &[("status", "503")])],
                    total: MetricSelector::new("resp_total", &[]),
                    max_ratio: 0.05,
                },
                slow_window: 3,
            }],
        }
    }

    /// Drive a synthetic workload through registry → store → evaluator.
    struct Rig {
        registry: Registry,
        store: SeriesStore,
    }

    impl Rig {
        fn new() -> Rig {
            Rig {
                registry: Registry::new(),
                store: SeriesStore::new(16),
            }
        }

        fn tick(&mut self, eval: &mut SloEvaluator, ok: u64, bad: u64) -> SloVerdict {
            self.registry
                .counter("resp_total", &[("status", "200")])
                .add(ok);
            self.registry
                .counter("resp_total", &[("status", "503")])
                .add(bad);
            self.store.observe(&self.registry.snapshot());
            eval.evaluate(&self.store).remove(0)
        }
    }

    #[test]
    fn fires_only_when_both_windows_burn_then_resolves() {
        let mut eval = SloEvaluator::new(error_rate_policy());
        let mut rig = Rig::new();
        // Clean traffic: no burn.
        let v = rig.tick(&mut eval, 100, 0);
        assert_eq!(v.state, AlertState::Ok);
        // Sustained burn: 50% errors — fast and slow both exceed 5%.
        let v = rig.tick(&mut eval, 50, 50);
        assert_eq!(v.state, AlertState::Firing);
        assert_eq!(v.fired, 1);
        // Still burning: no re-fire while already firing.
        let v = rig.tick(&mut eval, 50, 50);
        assert_eq!(v.state, AlertState::Firing);
        assert_eq!(v.fired, 1);
        // Recovery tick: fast window clean, alert resolves.
        let v = rig.tick(&mut eval, 100, 0);
        assert_eq!(v.state, AlertState::Resolved);
        assert_eq!(v.resolved, 1);
        // Re-arms: a new sustained burn fires again.
        let v = rig.tick(&mut eval, 10, 90);
        assert_eq!(v.state, AlertState::Firing);
        assert_eq!(v.fired, 2);
    }

    #[test]
    fn one_tick_blip_does_not_fire_when_slow_window_is_clean() {
        let mut policy = error_rate_policy();
        policy.rules[0].slow_window = 4;
        let mut eval = SloEvaluator::new(policy);
        let mut rig = Rig::new();
        // Three clean, heavy ticks establish a clean slow window.
        for _ in 0..3 {
            rig.tick(&mut eval, 1000, 0);
        }
        // One small burst: fast window burns (100%), slow window stays
        // under 5% (10 bad / >3000 total).
        let v = rig.tick(&mut eval, 0, 10);
        assert!(v.fast_burn > 0.05);
        assert!(v.slow_burn < 0.05);
        assert_eq!(v.state, AlertState::Ok);
        assert_eq!(v.fired, 0);
    }

    #[test]
    fn zero_budget_fires_on_any_event_and_counters_track() {
        let registry = Registry::new();
        let policy = SloPolicy {
            rules: vec![SloRule {
                name: "shed".into(),
                objective: SloObjective::Budget {
                    events: MetricSelector::new("shed_total", &[]),
                    max_per_tick: 0.0,
                },
                slow_window: 3,
            }],
        };
        let mut eval = SloEvaluator::new(policy).instrumented(&registry);
        let mut store = SeriesStore::new(16);
        let shed = registry.counter("shed_total", &[]);
        store.observe(&registry.snapshot());
        let v = eval.evaluate(&store).remove(0);
        assert_eq!(v.state, AlertState::Ok);
        shed.inc();
        store.observe(&registry.snapshot());
        let v = eval.evaluate(&store).remove(0);
        assert_eq!(v.state, AlertState::Firing);
        assert!(eval.any_firing());
        store.observe(&registry.snapshot());
        let v = eval.evaluate(&store).remove(0);
        assert_eq!(v.state, AlertState::Resolved);
        assert!(!eval.any_firing());
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_sum("marketscope_slo_alerts_fired_total", &[("rule", "shed")]),
            1
        );
        assert_eq!(
            snap.counter_sum("marketscope_slo_alerts_resolved_total", &[("rule", "shed")]),
            1
        );
    }

    #[test]
    fn alert_transitions_emit_log_events() {
        let log = Arc::new(EventLog::new(16));
        let mut eval = SloEvaluator::new(error_rate_policy()).with_log(Arc::clone(&log));
        let mut rig = Rig::new();
        rig.tick(&mut eval, 100, 0);
        rig.tick(&mut eval, 0, 100);
        rig.tick(&mut eval, 100, 0);
        let snap = log.snapshot();
        let messages: Vec<&str> = snap.events.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(messages, vec!["slo alert fired", "slo alert resolved"]);
        assert_eq!(snap.events[0].level, LogLevel::Warn);
        assert!(snap.events[0]
            .fields
            .iter()
            .any(|(k, v)| k == "rule" && v == "errors"));
    }

    #[test]
    fn fleet_default_policy_is_well_formed() {
        let policy = SloPolicy::fleet_default();
        assert!(policy.rules.len() >= 4);
        let mut eval = SloEvaluator::new(policy);
        let store = SeriesStore::new(4);
        // Evaluating an empty store burns nothing.
        let verdicts = eval.evaluate(&store);
        assert!(verdicts
            .iter()
            .all(|v| v.state == AlertState::Ok && v.fast_burn == 0.0));
    }
}
