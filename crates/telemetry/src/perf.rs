//! Resource profiling: allocation accounting, RSS / thread sampling, and
//! the build-info gauge.
//!
//! The perf layer answers the question the latency instruments cannot:
//! *what did the run cost the process*? Three pieces:
//!
//! * **Allocation accounting** — process-wide atomic counters
//!   ([`alloc_stats`]) fed by [`CountingAlloc`], a wrapper around the
//!   system allocator compiled only under the `alloc-profile` feature
//!   (counting every allocation costs a few percent, so it is opt-in).
//!   Binaries install it with `#[global_allocator]`; without the feature
//!   (or without installation) every counter reads zero and
//!   [`AllocPhase`] deltas are zero — callers need no cfg of their own.
//! * **Process sampling** — [`rss_bytes`] and [`thread_count`] read
//!   `/proc/self/status`, and [`ResourceSampler`] polls them on a
//!   background thread into registry gauges, tracking peaks for the
//!   BENCH report.
//! * **Build info** — [`register_build_info`] publishes a constant
//!   `marketscope_build_info{version=...,profile=...} 1` gauge so every
//!   exposition and BENCH file records which binary produced it.

use crate::counter::Gauge;
use crate::registry::Registry;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Allocations since process start (never decremented).
static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Deallocations since process start.
static FREES: AtomicU64 = AtomicU64::new(0);
/// Bytes handed out since process start.
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);
/// Bytes returned since process start.
static BYTES_FREED: AtomicU64 = AtomicU64::new(0);
/// High-water mark of `BYTES_ALLOCATED - BYTES_FREED`.
static PEAK_LIVE_BYTES: AtomicU64 = AtomicU64::new(0);

/// A point-in-time copy of the process-wide allocation counters.
///
/// All zeros unless [`CountingAlloc`] is installed as the global
/// allocator (which requires the `alloc-profile` feature).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocations performed.
    pub allocs: u64,
    /// Deallocations performed.
    pub frees: u64,
    /// Total bytes allocated (monotonic).
    pub bytes_allocated: u64,
    /// Total bytes freed (monotonic).
    pub bytes_freed: u64,
    /// High-water mark of live heap bytes.
    pub peak_live_bytes: u64,
}

impl AllocStats {
    /// Live heap bytes at snapshot time (allocated minus freed;
    /// saturating, since the two counters are read non-atomically).
    pub fn live_bytes(&self) -> u64 {
        self.bytes_allocated.saturating_sub(self.bytes_freed)
    }
}

/// Read the process-wide allocation counters.
pub fn alloc_stats() -> AllocStats {
    AllocStats {
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
        bytes_allocated: BYTES_ALLOCATED.load(Ordering::Relaxed),
        bytes_freed: BYTES_FREED.load(Ordering::Relaxed),
        peak_live_bytes: PEAK_LIVE_BYTES.load(Ordering::Relaxed),
    }
}

/// Record one allocation of `size` bytes. Public so the feature-gated
/// allocator (and tests) can drive the counters; hot-path cheap: three
/// relaxed atomic ops.
#[inline]
pub fn note_alloc(size: u64) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    let allocated = BYTES_ALLOCATED.fetch_add(size, Ordering::Relaxed) + size;
    let live = allocated.saturating_sub(BYTES_FREED.load(Ordering::Relaxed));
    PEAK_LIVE_BYTES.fetch_max(live, Ordering::Relaxed);
}

/// Record one deallocation of `size` bytes.
#[inline]
pub fn note_free(size: u64) {
    FREES.fetch_add(1, Ordering::Relaxed);
    BYTES_FREED.fetch_add(size, Ordering::Relaxed);
}

/// The difference between two [`AllocStats`] snapshots: what one phase
/// of work allocated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocDelta {
    /// Allocations performed during the phase.
    pub allocs: u64,
    /// Bytes allocated during the phase.
    pub bytes_allocated: u64,
    /// Deallocations performed during the phase.
    pub frees: u64,
    /// Bytes freed during the phase.
    pub bytes_freed: u64,
}

/// Per-phase allocation accounting: capture the counters at phase start,
/// ask for the [`AllocDelta`] at the end.
///
/// ```
/// let phase = marketscope_telemetry::perf::AllocPhase::start();
/// let v: Vec<u8> = Vec::with_capacity(4096);
/// drop(v);
/// let delta = phase.delta(); // zeros unless CountingAlloc is installed
/// # let _ = delta;
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AllocPhase {
    start: AllocStats,
}

impl AllocPhase {
    /// Begin a phase at the current counter values.
    pub fn start() -> AllocPhase {
        AllocPhase {
            start: alloc_stats(),
        }
    }

    /// Allocation work since [`AllocPhase::start`].
    pub fn delta(&self) -> AllocDelta {
        let now = alloc_stats();
        AllocDelta {
            allocs: now.allocs.saturating_sub(self.start.allocs),
            bytes_allocated: now
                .bytes_allocated
                .saturating_sub(self.start.bytes_allocated),
            frees: now.frees.saturating_sub(self.start.frees),
            bytes_freed: now.bytes_freed.saturating_sub(self.start.bytes_freed),
        }
    }
}

#[cfg(feature = "alloc-profile")]
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};

    /// A counting wrapper around the system allocator. Install in a
    /// binary with:
    ///
    /// ```ignore
    /// #[global_allocator]
    /// static ALLOC: marketscope_telemetry::perf::CountingAlloc =
    ///     marketscope_telemetry::perf::CountingAlloc;
    /// ```
    ///
    /// Every allocation then feeds [`super::alloc_stats`]. Only compiled
    /// under the `alloc-profile` feature.
    pub struct CountingAlloc;

    #[allow(unsafe_code)]
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                super::note_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            super::note_free(layout.size() as u64);
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc_zeroed(layout);
            if !p.is_null() {
                super::note_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                super::note_free(layout.size() as u64);
                super::note_alloc(new_size as u64);
            }
            p
        }
    }
}

#[cfg(feature = "alloc-profile")]
pub use counting_alloc::CountingAlloc;

/// Resident-set size of this process in bytes (`VmRSS` from
/// `/proc/self/status`). `None` off Linux or if the field is missing.
pub fn rss_bytes() -> Option<u64> {
    proc_status_field("VmRSS:").map(|kb| kb * 1024)
}

/// Number of OS threads in this process (`Threads` from
/// `/proc/self/status`). `None` off Linux.
pub fn thread_count() -> Option<u64> {
    proc_status_field("Threads:")
}

/// Parse one numeric field out of `/proc/self/status`.
fn proc_status_field(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    line[field.len()..].split_whitespace().next()?.parse().ok()
}

/// Peaks observed by a [`ResourceSampler`] over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourcePeaks {
    /// Highest sampled resident-set size, bytes (0 when unreadable).
    pub rss_peak_bytes: u64,
    /// Highest sampled OS thread count (0 when unreadable).
    pub threads_peak: u64,
    /// Samples taken.
    pub samples: u64,
}

#[derive(Default)]
struct PeakState {
    rss_peak: AtomicU64,
    threads_peak: AtomicU64,
    samples: AtomicU64,
}

/// A background thread sampling process RSS and thread count into
/// registry gauges:
///
/// * `marketscope_process_rss_bytes` / `marketscope_process_rss_peak_bytes`
/// * `marketscope_process_threads` / `marketscope_process_threads_peak`
///
/// One sample is taken synchronously at spawn, so even a short-lived
/// sampler reports real peaks. [`ResourceSampler::stop`] joins the
/// thread and returns the peaks.
pub struct ResourceSampler {
    stop: Arc<AtomicBool>,
    peaks: Arc<PeakState>,
    handle: Option<JoinHandle<()>>,
}

impl ResourceSampler {
    /// Start sampling every `interval` into `registry`.
    pub fn spawn(registry: Arc<Registry>, interval: Duration) -> ResourceSampler {
        let stop = Arc::new(AtomicBool::new(false));
        let peaks = Arc::new(PeakState::default());
        let rss = registry.gauge("marketscope_process_rss_bytes", &[]);
        let rss_peak = registry.gauge("marketscope_process_rss_peak_bytes", &[]);
        let threads = registry.gauge("marketscope_process_threads", &[]);
        let threads_peak = registry.gauge("marketscope_process_threads_peak", &[]);
        let sample = {
            let peaks = Arc::clone(&peaks);
            move || {
                if let Some(v) = rss_bytes() {
                    rss.set(v as i64);
                    let peak = peaks.rss_peak.fetch_max(v, Ordering::Relaxed).max(v);
                    rss_peak.set(peak as i64);
                }
                if let Some(v) = thread_count() {
                    threads.set(v as i64);
                    let peak = peaks.threads_peak.fetch_max(v, Ordering::Relaxed).max(v);
                    threads_peak.set(peak as i64);
                }
                peaks.samples.fetch_add(1, Ordering::Relaxed);
            }
        };
        sample();
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("perf-sampler".to_owned())
            .spawn(move || {
                while !thread_stop.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    sample();
                }
            })
            // The OS refusing a thread degrades to the initial sample only.
            .ok();
        ResourceSampler {
            stop,
            peaks,
            handle,
        }
    }

    /// Peaks so far, without stopping.
    pub fn peaks(&self) -> ResourcePeaks {
        ResourcePeaks {
            rss_peak_bytes: self.peaks.rss_peak.load(Ordering::Relaxed),
            threads_peak: self.peaks.threads_peak.load(Ordering::Relaxed),
            samples: self.peaks.samples.load(Ordering::Relaxed),
        }
    }

    /// Stop the sampling thread and return the observed peaks.
    pub fn stop(mut self) -> ResourcePeaks {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.peaks()
    }
}

impl Drop for ResourceSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The build profile this crate was compiled under.
pub fn build_profile() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

/// Register the constant `marketscope_build_info{version,profile} 1`
/// gauge: exposition scrapes and BENCH files record which binary
/// produced them. Idempotent (same labels return the same gauge).
pub fn register_build_info(registry: &Registry, version: &str, profile: &str) -> Arc<Gauge> {
    let g = registry.gauge(
        "marketscope_build_info",
        &[("version", version), ("profile", profile)],
    );
    g.set(1);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_counters_accumulate_and_phase_deltas_subtract() {
        let before = alloc_stats();
        note_alloc(1024);
        note_alloc(512);
        note_free(512);
        let after = alloc_stats();
        assert_eq!(after.allocs - before.allocs, 2);
        assert_eq!(after.bytes_allocated - before.bytes_allocated, 1536);
        assert_eq!(after.frees - before.frees, 1);
        assert!(after.peak_live_bytes >= 1024);

        let phase = AllocPhase::start();
        note_alloc(64);
        let d = phase.delta();
        assert_eq!(d.allocs, 1);
        assert_eq!(d.bytes_allocated, 64);
    }

    #[test]
    fn proc_sampling_reads_this_process() {
        // Linux-only assertions; both return None elsewhere.
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(rss_bytes().unwrap() > 0);
            assert!(thread_count().unwrap() >= 1);
        }
    }

    #[test]
    fn sampler_tracks_peaks_into_gauges() {
        let registry = Arc::new(Registry::new());
        let sampler = ResourceSampler::spawn(Arc::clone(&registry), Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(20));
        let peaks = sampler.stop();
        assert!(peaks.samples >= 1);
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peaks.rss_peak_bytes > 0);
            assert!(peaks.threads_peak >= 1);
            let snap = registry.snapshot();
            assert!(
                snap.gauge_value("marketscope_process_rss_peak_bytes", &[])
                    .unwrap()
                    > 0
            );
            assert!(
                snap.gauge_value("marketscope_process_threads", &[])
                    .unwrap()
                    >= 1
            );
        }
    }

    #[test]
    fn build_info_gauge_renders_in_exposition() {
        let registry = Registry::new();
        register_build_info(&registry, "1.2.3", "release");
        let snap = registry.snapshot();
        assert_eq!(
            snap.gauge_value(
                "marketscope_build_info",
                &[("version", "1.2.3"), ("profile", "release")]
            ),
            Some(1)
        );
        assert!(registry.render().contains("marketscope_build_info"));
    }

    #[test]
    fn build_profile_matches_compilation() {
        let p = build_profile();
        assert!(p == "debug" || p == "release");
    }
}
