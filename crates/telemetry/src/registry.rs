//! The instrument registry: named, labelled instruments with get-or-create
//! semantics and whole-registry snapshots.

use crate::counter::{Counter, Gauge};
use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, RwLock};

/// The identity of one instrument: a metric name plus a sorted label set.
///
/// Two registrations with the same name and labels return the same
/// underlying instrument; labels are sorted at construction so label order
/// at the call site does not matter.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct InstrumentId {
    /// Metric name (`marketscope_<crate>_<name>` by convention).
    pub name: String,
    /// Label key/value pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl InstrumentId {
    /// Build an id from a name and label pairs.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> InstrumentId {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        labels.sort();
        InstrumentId {
            name: name.to_owned(),
            labels,
        }
    }

    /// The value of one label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Whether this id carries exactly the given label pairs (in any
    /// order) among its labels.
    pub fn has_labels(&self, labels: &[(&str, &str)]) -> bool {
        labels.iter().all(|(k, v)| self.label(k) == Some(*v))
    }
}

impl fmt::Display for InstrumentId {
    /// Prometheus series syntax, with label values escaped per the text
    /// exposition format (`\` → `\\`, `"` → `\"`, newline → `\n`) so the
    /// output always parses back ([`crate::exposition::parse`] reverses
    /// the escaping).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.labels.is_empty() {
            write!(f, "{{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{k}=\"")?;
                for c in v.chars() {
                    match c {
                        '\\' => write!(f, "\\\\")?,
                        '"' => write!(f, "\\\"")?,
                        '\n' => write!(f, "\\n")?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<InstrumentId, Arc<Counter>>,
    gauges: BTreeMap<InstrumentId, Arc<Gauge>>,
    histograms: BTreeMap<InstrumentId, Arc<Histogram>>,
}

/// A registry of named instruments.
///
/// Registration (get-or-create) takes a short `RwLock` critical section;
/// the returned `Arc` is then recorded against lock-free. Hot paths should
/// resolve their instruments once, up front, and keep the `Arc`s.
#[derive(Default)]
pub struct Registry {
    inner: RwLock<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let id = InstrumentId::new(name, labels);
        if let Some(c) = self
            .inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .counters
            .get(&id)
        {
            return Arc::clone(c);
        }
        let mut inner = self
            .inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(inner.counters.entry(id).or_default())
    }

    /// Get or create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let id = InstrumentId::new(name, labels);
        if let Some(g) = self
            .inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .gauges
            .get(&id)
        {
            return Arc::clone(g);
        }
        let mut inner = self
            .inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(inner.gauges.entry(id).or_default())
    }

    /// Get or create the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let id = InstrumentId::new(name, labels);
        if let Some(h) = self
            .inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .histograms
            .get(&id)
        {
            return Arc::clone(h);
        }
        let mut inner = self
            .inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(inner.histograms.entry(id).or_default())
    }

    /// A point-in-time copy of every instrument's value.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self
            .inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        RegistrySnapshot {
            captured_unix_nanos: crate::log::unix_nanos_now(),
            captured_mono_nanos: crate::trace::epoch_nanos(),
            counters: inner
                .counters
                .iter()
                .map(|(id, c)| (id.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(id, g)| (id.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(id, h)| (id.clone(), h.snapshot()))
                .collect(),
        }
    }

    /// Render the current state as a Prometheus-style text exposition.
    pub fn render(&self) -> String {
        self.snapshot().render()
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self
            .inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

/// A point-in-time copy of a whole [`Registry`]: mergeable and renderable.
///
/// Snapshots are stamped with both clocks at capture time so delta/rate
/// math over successive snapshots has a principled time base: the
/// monotonic stamp (nanos since this process's trace epoch) orders
/// snapshots within one process, while the wall-clock stamp aligns
/// snapshots captured by different processes. Equality compares
/// instrument contents only, never capture times — two captures of the
/// same values taken an instant apart are equal.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Wall-clock capture time, nanoseconds since the unix epoch.
    pub captured_unix_nanos: u64,
    /// Monotonic capture time, nanoseconds since the process trace epoch.
    pub captured_mono_nanos: u64,
    /// Counter values by id.
    pub counters: BTreeMap<InstrumentId, u64>,
    /// Gauge values by id.
    pub gauges: BTreeMap<InstrumentId, i64>,
    /// Histogram snapshots by id.
    pub histograms: BTreeMap<InstrumentId, HistogramSnapshot>,
}

impl PartialEq for RegistrySnapshot {
    /// Contents-only equality: capture stamps are metadata, not state.
    fn eq(&self, other: &RegistrySnapshot) -> bool {
        self.counters == other.counters
            && self.gauges == other.gauges
            && self.histograms == other.histograms
    }
}

impl RegistrySnapshot {
    /// Merge another snapshot into this one: counters and gauges add,
    /// histograms merge bucket-wise, and the later capture stamp wins
    /// (the merged view is only as fresh as its newest constituent).
    /// Used to combine per-component registries (fleet + crawler) into
    /// one ops view.
    pub fn merge(mut self, other: &RegistrySnapshot) -> RegistrySnapshot {
        self.captured_unix_nanos = self.captured_unix_nanos.max(other.captured_unix_nanos);
        self.captured_mono_nanos = self.captured_mono_nanos.max(other.captured_mono_nanos);
        for (id, v) in &other.counters {
            *self.counters.entry(id.clone()).or_insert(0) += v;
        }
        for (id, v) in &other.gauges {
            *self.gauges.entry(id.clone()).or_insert(0) += v;
        }
        for (id, h) in &other.histograms {
            let entry = self.histograms.entry(id.clone()).or_default();
            *entry = entry.merge(h);
        }
        self
    }

    /// Override the capture stamps (multi-process tests pin these to
    /// align per-shard snapshots on a shared tick schedule).
    pub fn stamped(mut self, unix_nanos: u64, mono_nanos: u64) -> RegistrySnapshot {
        self.captured_unix_nanos = unix_nanos;
        self.captured_mono_nanos = mono_nanos;
        self
    }

    /// Value of the counter `name{labels}`, if registered.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters.get(&InstrumentId::new(name, labels)).copied()
    }

    /// Value of the gauge `name{labels}`, if registered.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.gauges.get(&InstrumentId::new(name, labels)).copied()
    }

    /// Snapshot of the histogram `name{labels}`, if registered.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.histograms.get(&InstrumentId::new(name, labels))
    }

    /// Sum of every counter called `name` whose labels include `labels`
    /// (e.g. all `status` variants of one market's response counter).
    pub fn counter_sum(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .iter()
            .filter(|(id, _)| id.name == name && id.has_labels(labels))
            .map(|(_, v)| v)
            .sum()
    }

    /// Every distinct value of `label_key` across all instruments, sorted.
    pub fn label_values(&self, label_key: &str) -> Vec<String> {
        let mut out: Vec<String> = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .filter_map(|id| id.label(label_key).map(str::to_owned))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Render as a Prometheus-style text exposition.
    pub fn render(&self) -> String {
        crate::exposition::render(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_id_returns_same_instrument() {
        let r = Registry::new();
        let a = r.counter("x_total", &[("m", "a"), ("s", "2")]);
        let b = r.counter("x_total", &[("s", "2"), ("m", "a")]); // order-insensitive
        a.inc();
        assert_eq!(b.get(), 1);
        let other = r.counter("x_total", &[("m", "b")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn snapshot_captures_all_kinds() {
        let r = Registry::new();
        r.counter("c_total", &[]).add(3);
        r.gauge("g", &[]).set(-2);
        r.histogram("h_nanos", &[]).record(100);
        let s = r.snapshot();
        assert_eq!(s.counter_value("c_total", &[]), Some(3));
        assert_eq!(s.gauge_value("g", &[]), Some(-2));
        assert_eq!(s.histogram("h_nanos", &[]).unwrap().count(), 1);
        assert_eq!(s.counter_value("missing", &[]), None);
    }

    #[test]
    fn merge_adds_and_merges() {
        let r1 = Registry::new();
        r1.counter("c_total", &[("m", "x")]).add(2);
        r1.histogram("h_nanos", &[]).record(10);
        let r2 = Registry::new();
        r2.counter("c_total", &[("m", "x")]).add(5);
        r2.counter("c_total", &[("m", "y")]).add(1);
        r2.histogram("h_nanos", &[]).record(20);
        let merged = r1.snapshot().merge(&r2.snapshot());
        assert_eq!(merged.counter_value("c_total", &[("m", "x")]), Some(7));
        assert_eq!(merged.counter_value("c_total", &[("m", "y")]), Some(1));
        assert_eq!(merged.histogram("h_nanos", &[]).unwrap().count(), 2);
        assert_eq!(merged.counter_sum("c_total", &[]), 8);
    }

    #[test]
    fn label_values_are_deduped_and_sorted() {
        let r = Registry::new();
        r.counter("a_total", &[("market", "zhushou")]).inc();
        r.counter("b_total", &[("market", "baidu")]).inc();
        r.gauge("g", &[("market", "baidu")]).inc();
        assert_eq!(
            r.snapshot().label_values("market"),
            vec!["baidu", "zhushou"]
        );
    }

    #[test]
    fn display_renders_prometheus_style() {
        let id = InstrumentId::new("x_total", &[("status", "200"), ("market", "hm")]);
        assert_eq!(id.to_string(), "x_total{market=\"hm\",status=\"200\"}");
        assert_eq!(InstrumentId::new("bare", &[]).to_string(), "bare");
    }
}
