//! Bounded structured event log with overwrite-oldest semantics.
//!
//! The [`EventLog`] is the narrative complement to the numeric registry:
//! where counters say *how often* something happened, log events say
//! *what* happened, *where*, and — because the active trace context is
//! attached automatically via [`trace::current`](crate::trace::current) —
//! *within which request*. The ring mirrors the trace journal's design:
//! a fixed slot vector claimed by an atomic cursor, so recording is
//! wait-free apart from one uncontended per-slot mutex, and the oldest
//! event is silently overwritten when the ring wraps. Snapshots are
//! mergeable across processes: events are sorted by capture time and the
//! recorded/overwritten tallies add, so a sharded fleet can pool its logs
//! into one timeline.

use crate::trace;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{SystemTime, UNIX_EPOCH};

/// Severity of a log event, ordered from chattiest to loudest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Diagnostic detail, usually uninteresting.
    Debug,
    /// Normal lifecycle milestones.
    Info,
    /// Something degraded but survivable.
    Warn,
    /// Something failed.
    Error,
}

impl LogLevel {
    /// Lowercase level name, as rendered in logs and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }
}

/// One structured event: a level, a dotted target (component path), a
/// human message, and a flat key=value field list. Trace/span ids are
/// captured from the recording thread's active span, when one exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEvent {
    /// Wall-clock capture time, nanoseconds since the unix epoch.
    pub unix_nanos: u64,
    /// Monotonic capture time, nanoseconds since the process trace epoch.
    pub mono_nanos: u64,
    /// Per-log claim sequence; unique within one `EventLog`.
    pub seq: u64,
    /// Severity.
    pub level: LogLevel,
    /// Dotted component path, e.g. `net.fault` or `telemetry.slo`.
    pub target: String,
    /// Human-readable message.
    pub message: String,
    /// Flat key=value context fields, in recording order.
    pub fields: Vec<(String, String)>,
    /// Trace id of the span active on the recording thread, if any.
    pub trace_id: Option<u64>,
    /// Span id of the span active on the recording thread, if any.
    pub span_id: Option<u64>,
}

/// Bounded, mergeable snapshot of an [`EventLog`]. `recorded` counts
/// every event ever recorded; `overwritten` counts those the ring
/// dropped, so `events.len() == recorded - overwritten` for a
/// single-process snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogSnapshot {
    /// Retained events, oldest first.
    pub events: Vec<LogEvent>,
    /// Total events recorded over the log's lifetime.
    pub recorded: u64,
    /// Events lost to ring overwrite.
    pub overwritten: u64,
}

impl LogSnapshot {
    /// Pool another snapshot into this one. Events are re-sorted into one
    /// timeline and the tallies add; the result is independent of merge
    /// order.
    pub fn merge(mut self, other: &LogSnapshot) -> LogSnapshot {
        self.events.extend(other.events.iter().cloned());
        sort_events(&mut self.events);
        self.recorded += other.recorded;
        self.overwritten += other.overwritten;
        self
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The newest `k` events, oldest first.
    pub fn tail(&self, k: usize) -> &[LogEvent] {
        let start = self.events.len().saturating_sub(k);
        &self.events[start..]
    }
}

/// Total order on events so cross-process merges are order-insensitive:
/// capture time first, then sequence, then content.
fn sort_events(events: &mut [LogEvent]) {
    events.sort_by(|a, b| {
        (
            a.unix_nanos,
            a.mono_nanos,
            a.seq,
            &a.target,
            &a.message,
            a.level,
        )
            .cmp(&(
                b.unix_nanos,
                b.mono_nanos,
                b.seq,
                &b.target,
                &b.message,
                b.level,
            ))
    });
}

/// Lock-free-claim bounded event ring. Recording claims a slot with one
/// atomic `fetch_add` and writes it under a per-slot mutex; when the
/// cursor laps the ring the oldest event is overwritten. Safe to share
/// across threads behind an `Arc`.
#[derive(Debug)]
pub struct EventLog {
    slots: Vec<Mutex<Option<LogEvent>>>,
    cursor: AtomicU64,
}

impl EventLog {
    /// Create a log retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> EventLog {
        let capacity = capacity.max(1);
        EventLog {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Record one event. The active trace/span ids on the calling thread
    /// (if any) are attached automatically.
    pub fn record(&self, level: LogLevel, target: &str, message: &str, fields: &[(&str, &str)]) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let (trace_id, span_id) = match trace::current() {
            Some(ctx) => (Some(ctx.trace_id), Some(ctx.span_id)),
            None => (None, None),
        };
        let event = LogEvent {
            unix_nanos: unix_nanos_now(),
            mono_nanos: trace::epoch_nanos(),
            seq,
            level,
            target: target.to_owned(),
            message: message.to_owned(),
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            trace_id,
            span_id,
        };
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot]
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(event);
    }

    /// Total events recorded over the log's lifetime.
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Copy out the retained events, oldest first.
    pub fn snapshot(&self) -> LogSnapshot {
        let mut events: Vec<LogEvent> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(PoisonError::into_inner).clone())
            .collect();
        sort_events(&mut events);
        let recorded = self.recorded();
        let overwritten = recorded.saturating_sub(events.len() as u64);
        LogSnapshot {
            events,
            recorded,
            overwritten,
        }
    }
}

/// Wall-clock nanoseconds since the unix epoch (0 if the clock is
/// before 1970, which only happens on badly misconfigured hosts).
pub(crate) fn unix_nanos_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Tracer, TracerConfig};
    use std::sync::Arc;

    #[test]
    fn records_and_snapshots_in_order() {
        let log = EventLog::new(8);
        log.record(LogLevel::Info, "test", "first", &[("k", "v")]);
        log.record(LogLevel::Warn, "test", "second", &[]);
        let snap = log.snapshot();
        assert_eq!(snap.recorded, 2);
        assert_eq!(snap.overwritten, 0);
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].message, "first");
        assert_eq!(snap.events[0].fields, vec![("k".into(), "v".into())]);
        assert_eq!(snap.events[1].level, LogLevel::Warn);
        assert!(snap.events[0].seq < snap.events[1].seq);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let log = EventLog::new(4);
        for i in 0..10 {
            log.record(LogLevel::Debug, "test", &format!("e{i}"), &[]);
        }
        let snap = log.snapshot();
        assert_eq!(snap.recorded, 10);
        assert_eq!(snap.overwritten, 6);
        let kept: Vec<&str> = snap.events.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(kept, vec!["e6", "e7", "e8", "e9"]);
    }

    #[test]
    fn attaches_active_trace_context() {
        let tracer = Arc::new(Tracer::new(TracerConfig::always(16)));
        let log = EventLog::new(4);
        let span = tracer.root_span("test", "op");
        let ctx = span.context().expect("always-sampled span has context");
        log.record(LogLevel::Info, "test", "inside", &[]);
        span.finish();
        log.record(LogLevel::Info, "test", "outside", &[]);
        let snap = log.snapshot();
        assert_eq!(snap.events[0].trace_id, Some(ctx.trace_id));
        assert_eq!(snap.events[0].span_id, Some(ctx.span_id));
        assert_eq!(snap.events[1].trace_id, None);
    }

    #[test]
    fn concurrent_recording_loses_nothing_below_capacity() {
        let log = Arc::new(EventLog::new(256));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..32 {
                        log.record(LogLevel::Info, "test", &format!("t{t}-{i}"), &[]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("recorder thread");
        }
        let snap = log.snapshot();
        assert_eq!(snap.recorded, 128);
        assert_eq!(snap.overwritten, 0);
        assert_eq!(snap.events.len(), 128);
    }

    #[test]
    fn tail_returns_newest_k() {
        let log = EventLog::new(8);
        for i in 0..5 {
            log.record(LogLevel::Info, "test", &format!("e{i}"), &[]);
        }
        let snap = log.snapshot();
        let tail: Vec<&str> = snap.tail(2).iter().map(|e| e.message.as_str()).collect();
        assert_eq!(tail, vec!["e3", "e4"]);
        assert_eq!(snap.tail(99).len(), 5);
    }
}
