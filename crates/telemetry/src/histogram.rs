//! Fixed-bucket log2 histograms.
//!
//! 64 buckets cover the whole `u64` range: bucket 0 holds the value 0 and
//! bucket `i` (`i ≥ 1`) holds values in `[2^(i-1), 2^i)`, with the last
//! bucket absorbing everything from `2^62` up. Recording a value is two
//! relaxed `fetch_add`s (bucket + running sum) — no locks, no allocation —
//! so histograms sit directly on request hot paths.

use crate::span::Span;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 buckets (one per bit of `u64`).
pub const BUCKET_COUNT: usize = 64;

/// Bucket index for a value: 0 for 0, else `1 + floor(log2 v)`, capped.
#[inline]
fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKET_COUNT - 1)
}

/// Inclusive lower bound of bucket `i`.
fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKET_COUNT - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free log2 histogram of `u64` observations (latencies in
/// nanoseconds, sizes in bytes, ...).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation. Lock-free: two relaxed `fetch_add`s plus
    /// a relaxed `fetch_max` tracking the exact maximum.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds (saturating past ~584 years).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Start a [`Span`] that records its elapsed time here when dropped.
    pub fn start_span(&self) -> Span<'_> {
        Span::start(self)
    }

    /// Total observations so far.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket array.
    ///
    /// Taken bucket-by-bucket with relaxed loads, so under concurrent
    /// recording the snapshot may tear by a handful of in-flight
    /// observations — fine for monitoring, and exact once writers quiesce.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a histogram: mergeable, quantile-answering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub buckets: [u64; BUCKET_COUNT],
    /// Sum of all observed values.
    pub sum: u64,
    /// Exact maximum observed value (0 when empty). Log2 buckets lose
    /// the true maximum, so it is tracked separately; `quantile` clamps
    /// its bucket-bound estimates by it.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKET_COUNT],
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) by rank-walking the
    /// buckets and interpolating linearly inside the winning bucket. The
    /// estimate is always within the winning bucket's bounds, so the
    /// relative error is bounded by the log2 bucket width (< 2×).
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= target {
                let lo = bucket_lower(i);
                // The exact max caps the top bucket: quantile(1.0)
                // returns the true maximum instead of a bucket bound.
                let hi = bucket_upper(i).min(self.max.max(lo));
                let frac = (target - cum) as f64 / c as f64;
                return lo + ((hi - lo) as f64 * frac) as u64;
            }
            cum += c;
        }
        bucket_upper(BUCKET_COUNT - 1)
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge two snapshots: the result is exactly the snapshot that a
    /// single histogram would hold after both recording histories.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            sum: self.sum + other.sum,
            max: self.max.max(other.max),
        }
    }

    /// Cumulative counts per bucket upper bound, for exposition rendering:
    /// `(le, cumulative_count)` pairs up to the last non-empty bucket.
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let last = self
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or(0)
            .min(BUCKET_COUNT - 2);
        let mut cum = 0u64;
        let mut out = Vec::with_capacity(last + 1);
        for i in 0..=last {
            cum += self.buckets[i];
            out.push((bucket_upper(i), cum));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn bucket_bounds_partition_the_range() {
        for i in 1..BUCKET_COUNT {
            assert_eq!(bucket_lower(i), bucket_upper(i - 1) + 1, "bucket {i}");
            assert!(bucket_lower(i) <= bucket_upper(i));
            assert_eq!(bucket_index(bucket_lower(i)), i);
            if i < BUCKET_COUNT - 1 {
                assert_eq!(bucket_index(bucket_upper(i)), i);
            }
        }
    }

    #[test]
    fn count_and_sum_track_recordings() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 7, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1_001_009);
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.sum, 1_001_009);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(100); // bucket [64,127]
        }
        for _ in 0..10 {
            h.record(10_000); // bucket [8192,16383]
        }
        let s = h.snapshot();
        let p50 = s.p50();
        assert!((64..=127).contains(&p50), "p50={p50}");
        let p99 = s.p99();
        assert!((8192..=16383).contains(&p99), "p99={p99}");
        // Quantiles never decrease in q.
        let mut prev = 0;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let v = s.quantile(q);
            assert!(v >= prev, "quantile({q})={v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.cumulative(), vec![(0, 0)]);
    }

    #[test]
    fn merge_is_exact() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for v in [3u64, 5, 1000] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 9, 70_000] {
            b.record(v);
            both.record(v);
        }
        assert_eq!(a.snapshot().merge(&b.snapshot()), both.snapshot());
    }

    #[test]
    fn cumulative_is_monotone_and_ends_at_count() {
        let h = Histogram::new();
        for v in [1u64, 2, 4, 8, 16, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let cum = s.cumulative();
        let mut prev = 0;
        for &(_, c) in &cum {
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(prev, s.count());
    }

    #[test]
    fn max_is_exact_not_a_bucket_bound() {
        let h = Histogram::new();
        for v in [100u64, 5000, 77_777] {
            h.record(v);
        }
        assert_eq!(h.max(), 77_777);
        let s = h.snapshot();
        assert_eq!(s.max, 77_777);
        // quantile(1.0) returns the true maximum, not the bucket upper
        // bound (which would be 131071 for 77777).
        assert_eq!(s.quantile(1.0), 77_777);
    }

    #[test]
    fn merge_takes_the_larger_max() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(9_999);
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.max, 9_999);
        assert_eq!(m.quantile(1.0), 9_999);
    }

    #[test]
    fn empty_snapshot_max_is_zero() {
        assert_eq!(Histogram::new().snapshot().max, 0);
    }

    #[test]
    fn record_duration_uses_nanos() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(3));
        assert_eq!(h.sum(), 3_000);
    }
}
