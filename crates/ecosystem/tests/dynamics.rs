//! Ground-truth invariants of the generated world: publishing dynamics,
//! metadata coupling, and misbehaviour structure — checked directly on
//! the world (no crawl), at a moderately large scale so rates are tight.

use marketscope_core::{MarketId, SimDate};
use marketscope_ecosystem::{generate, profile, Provenance, Scale, ThreatTier, WorldConfig};
use std::collections::{HashMap, HashSet};

fn world() -> marketscope_ecosystem::World {
    generate(WorldConfig {
        seed: 0xD15C0,
        scale: Scale { divisor: 2_000 },
        ..WorldConfig::default()
    })
}

#[test]
fn single_store_shares_track_profiles() {
    let w = world();
    let mut stores_per_app: HashMap<u32, usize> = HashMap::new();
    for l in &w.listings {
        *stores_per_app.entry(l.app.0).or_insert(0) += 1;
    }
    // Google Play: ~77% single-store; Wandoujia/Meizu ≈1%.
    let single_share = |m: MarketId| {
        let ids = w.market_listings(m);
        let singles = ids
            .iter()
            .filter(|l| stores_per_app[&w.listing(**l).app.0] == 1)
            .count();
        singles as f64 / ids.len() as f64
    };
    let gp = single_share(MarketId::GooglePlay);
    assert!((0.6..0.9).contains(&gp), "GP single-store {gp}");
    // Planted misbehaviour apps (clones, fakes) are single-market, so the
    // measured share sits above the planted original share; the paper's
    // per-market ordering (AnZhi/OPPO high, Wandoujia/Meizu low) is the
    // preserved shape.
    assert!(
        single_share(MarketId::Wandoujia) < single_share(MarketId::AnZhi),
        "Wandoujia {} vs AnZhi {}",
        single_share(MarketId::Wandoujia),
        single_share(MarketId::AnZhi)
    );
    assert!(single_share(MarketId::MeizuMarket) < single_share(MarketId::OppoMarket));
}

#[test]
fn popular_apps_reach_more_markets() {
    let w = world();
    let mut stores_per_app: HashMap<u32, usize> = HashMap::new();
    for l in &w.listings {
        *stores_per_app.entry(l.app.0).or_insert(0) += 1;
    }
    let mean_reach = |lo: f64, hi: f64| {
        let (mut total, mut n) = (0usize, 0usize);
        for (i, a) in w.apps.iter().enumerate() {
            if matches!(a.provenance, Provenance::Original)
                && a.popularity >= lo
                && a.popularity < hi
            {
                total += stores_per_app.get(&(i as u32)).copied().unwrap_or(0);
                n += 1;
            }
        }
        total as f64 / n.max(1) as f64
    };
    let unpopular = mean_reach(0.0, 0.5);
    let popular = mean_reach(0.97, 1.0);
    assert!(
        popular > unpopular * 1.5,
        "popular reach {popular} vs unpopular {unpopular}"
    );
}

#[test]
fn min_sdk_is_coupled_to_release_age() {
    let w = world();
    let cutoff = SimDate::from_ymd(2017, 1, 1).unwrap();
    let (mut old_low, mut old_n, mut new_low, mut new_n) = (0usize, 0usize, 0usize, 0usize);
    for a in &w.apps {
        if a.base_date < cutoff {
            old_n += 1;
            if a.min_sdk < 9 {
                old_low += 1;
            }
        } else {
            new_n += 1;
            if a.min_sdk < 9 {
                new_low += 1;
            }
        }
    }
    let old_rate = old_low as f64 / old_n.max(1) as f64;
    let new_rate = new_low as f64 / new_n.max(1) as f64;
    assert!(old_rate > 0.3, "old apps low-API rate {old_rate}");
    assert!(new_rate < 0.1, "recent apps low-API rate {new_rate}");
}

#[test]
fn outdated_listings_have_older_dates() {
    let w = world();
    for l in &w.listings {
        let a = w.app(l.app);
        if l.version < a.version_count {
            assert!(
                l.updated <= a.base_date,
                "outdated copy dated {} after base {}",
                l.updated,
                a.base_date
            );
        }
    }
}

#[test]
fn clones_never_share_a_developer_with_their_victim() {
    let w = world();
    for a in &w.apps {
        let victim = match a.provenance {
            Provenance::SigClone { of }
            | Provenance::CodeClone { of }
            | Provenance::Fake { of } => w.app(of),
            Provenance::Original => continue,
        };
        assert_ne!(
            w.developer(a.developer).key,
            w.developer(victim.developer).key,
            "{} clones its own developer",
            a.package
        );
    }
}

#[test]
fn fakes_always_have_a_popular_victim() {
    let w = world();
    let mut found = 0;
    for a in &w.apps {
        if let Provenance::Fake { of } = a.provenance {
            let victim = w.app(of);
            assert!(
                victim.popularity > 0.95,
                "fake victim pop {}",
                victim.popularity
            );
            assert_eq!(victim.label, a.label);
            found += 1;
        }
    }
    assert!(found >= 10, "only {found} fakes at this scale");
}

#[test]
fn grayware_and_malware_rates_scale_with_profiles() {
    let w = world();
    for m in [
        MarketId::PcOnline,
        MarketId::GooglePlay,
        MarketId::TencentMyapp,
    ] {
        let ids = w.market_listings(m);
        let mal = ids
            .iter()
            .filter(|l| {
                w.app(w.listing(**l).app)
                    .infection
                    .is_some_and(|i| i.tier != ThreatTier::Grayware)
            })
            .count() as f64
            / ids.len() as f64;
        let target = profile(m).av10_rate;
        assert!(
            (mal - target).abs() < target.max(0.02) * 0.8 + 0.02,
            "{m}: planted {mal} vs target {target}"
        );
    }
}

#[test]
fn benchmark_specials_exist_exactly_once() {
    let w = world();
    let mut eicar_count = 0;
    let mut seen: HashSet<&str> = HashSet::new();
    for a in &w.apps {
        if a.package.as_str().contains("eicar") {
            eicar_count += 1;
        }
        if a.package.as_str() == "com.ypt.merchant" {
            assert!(seen.insert("ypt"), "duplicate special");
            let markets: Vec<MarketId> = w
                .listings
                .iter()
                .filter(|l| w.app(l.app).package.as_str() == "com.ypt.merchant")
                .map(|l| l.market)
                .collect();
            assert_eq!(markets.len(), 5, "{markets:?}");
        }
    }
    assert_eq!(eicar_count, 2, "two EICAR benchmark apps");
}

#[test]
fn removal_only_touches_what_the_market_hosts() {
    let w = world();
    // Removed listings must be real listings, and clean-app churn is
    // rare (~1%).
    let mut clean_removed = 0usize;
    let mut clean_total = 0usize;
    for l in &w.listings {
        if w.app(l.app).infection.is_none() {
            clean_total += 1;
            if l.removed_in_second_crawl {
                clean_removed += 1;
            }
        }
    }
    let churn = clean_removed as f64 / clean_total.max(1) as f64;
    assert!((0.002..0.03).contains(&churn), "clean churn {churn}");
}

#[test]
fn listings_reference_valid_apps_and_versions() {
    let w = world();
    for l in &w.listings {
        let a = w.app(l.app);
        assert!(
            l.version >= 1 && l.version <= a.version_count,
            "{}",
            a.package
        );
        assert!(l.rating >= 0.0 && l.rating <= 5.0);
        if let Some(d) = l.downloads {
            assert!(d <= 5_000_000_000, "absurd download counter {d}");
        } else {
            assert!(
                !profile(l.market).reports_installs,
                "{} must report installs",
                l.market
            );
        }
    }
}
