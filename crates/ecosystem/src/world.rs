//! The synthetic world: developers, apps, per-market listings, and the
//! deterministic APK assembly that turns them into bytes.

use crate::libs::{LibCatalog, LibCategory, LibUse};
use crate::profiles::Scale;
use crate::threat::{Infection, ThreatDb};
use marketscope_apk::apicalls::ApiCallId;
use marketscope_apk::builder::ApkBuilder;
use marketscope_apk::dex::{ClassDef, DexFile, MethodDef, MethodRef};
use marketscope_apk::manifest::{Component, ComponentKind, Manifest};
use marketscope_core::hash::mix64;
use marketscope_core::rng::DetRng;
use marketscope_core::{Category, DeveloperKey, MarketId, PackageName, SimDate, VersionCode};

/// Index of an app in [`World::apps`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppId(pub u32);

/// Index of a developer in [`World::developers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DevId(pub u32);

/// Index of a listing in [`World::listings`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ListingId(pub u32);

/// How an app came to exist (ground truth for the misbehaviour analyses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// A legitimate original.
    Original,
    /// A fake: mimics the display name of `of` under a new package.
    Fake {
        /// The mimicked app.
        of: AppId,
    },
    /// A signature-based clone: same package as `of`, different key.
    SigClone {
        /// The repackaged app.
        of: AppId,
    },
    /// A code-based clone: renamed package, near-identical code.
    CodeClone {
        /// The plagiarized app.
        of: AppId,
    },
}

/// A planted privacy leak (ground truth for the taint analysis).
///
/// The own root method reads the private source; where the sink call
/// lands depends on `via_tpl`: host code (the far end of the own-code
/// chain, so the flow is genuinely interprocedural) or an appended
/// class under a bundled third-party library's namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlantedLeak {
    /// The private-data read (e.g. a device-id API).
    pub source: ApiCallId,
    /// The exfiltration call (network send or log write).
    pub sink: ApiCallId,
    /// Whether the sink site lives in third-party-library namespace
    /// (a supply-chain leak) rather than host code.
    pub via_tpl: bool,
}

/// A developer identity.
#[derive(Debug, Clone)]
pub struct Developer {
    /// Key-derivation label (stable across runs).
    pub label: String,
    /// The signing key (what the paper extracts with ApkSigner).
    pub key: DeveloperKey,
    /// Store-visible display name.
    pub display_name: String,
}

/// One unique application (a package signed by one developer).
#[derive(Debug, Clone)]
pub struct App {
    /// Package name. **Not** unique across [`World::apps`]: signature-based
    /// clones reuse their victim's package.
    pub package: PackageName,
    /// Display name ("app name"). Fakes mimic this.
    pub label: String,
    /// Signing developer.
    pub developer: DevId,
    /// True category.
    pub category: Category,
    /// Global popularity quantile in `[0,1)`: drives downloads in every
    /// market the app is listed in, rating presence, and multi-store reach.
    pub popularity: f64,
    /// Date of the latest release.
    pub base_date: SimDate,
    /// Declared minimum SDK.
    pub min_sdk: u8,
    /// Number of released versions (version codes `1..=version_count`).
    pub version_count: u32,
    /// Embedded third-party libraries.
    pub libs: Vec<LibUse>,
    /// Seed for the app's own code.
    pub own_code_seed: u64,
    /// Root path of the app's own classes (differs from `package` for
    /// code clones, which rename).
    pub own_package: String,
    /// Number of own classes.
    pub own_class_count: u32,
    /// Optional mutation applied to own code (clones perturb the victim's
    /// code slightly).
    pub code_mutation: Option<u64>,
    /// Declared manifest permissions (used ∪ over-privileged extras).
    pub declared_permissions: Vec<String>,
    /// Planted privacy leak, if any (originals only).
    pub leak: Option<PlantedLeak>,
    /// Planted infection, if any.
    pub infection: Option<Infection>,
    /// Ground-truth provenance.
    pub provenance: Provenance,
}

/// One (market, app) listing with store metadata.
#[derive(Debug, Clone)]
pub struct Listing {
    /// The hosting market.
    pub market: MarketId,
    /// The listed app.
    pub app: AppId,
    /// The version carried by this store (`<= version_count`; lower means
    /// the store copy is outdated).
    pub version: u32,
    /// Raw install counter (`None` where the store reports none).
    pub downloads: Option<u64>,
    /// Store rating in `[0,5]`; `0.0` means unrated unless the store
    /// plants a default.
    pub rating: f64,
    /// Release/update date as reported by this store.
    pub updated: SimDate,
    /// The developer-supplied category string (possibly junk).
    pub raw_category: String,
    /// Whether this listing disappears by the second crawl.
    pub removed_in_second_crawl: bool,
}

/// Per-market ground-truth counters recorded while planting.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Planted fake listings per market.
    pub fakes: [u32; 17],
    /// Planted signature-clone listings per market.
    pub sig_clones: [u32; 17],
    /// Planted code-clone listings per market.
    pub code_clones: [u32; 17],
    /// Planted malware-tier listings per market (expected AV-rank ≥ 10).
    pub malware: [u32; 17],
    /// Planted grayware-tier listings per market (AV-rank 1–9).
    pub grayware: [u32; 17],
    /// Planted host-code privacy-leak listings per market.
    pub leaks_host: [u32; 17],
    /// Planted third-party-library privacy-leak listings per market.
    pub leaks_tpl: [u32; 17],
}

/// The generated world.
#[derive(Debug)]
pub struct World {
    /// Generation seed.
    pub seed: u64,
    /// Generation scale.
    pub scale: Scale,
    /// Third-party library catalog.
    pub libraries: LibCatalog,
    /// Threat signature database.
    pub threat_db: ThreatDb,
    /// All developers.
    pub developers: Vec<Developer>,
    /// All apps.
    pub apps: Vec<App>,
    /// All listings.
    pub listings: Vec<Listing>,
    /// Ground-truth counters.
    pub ground_truth: GroundTruth,
    pub(crate) per_market: Vec<Vec<ListingId>>,
}

impl World {
    /// Listing ids for a market's catalog.
    pub fn market_listings(&self, market: MarketId) -> &[ListingId] {
        &self.per_market[market.index()]
    }

    /// A listing by id.
    pub fn listing(&self, id: ListingId) -> &Listing {
        &self.listings[id.0 as usize]
    }

    /// An app by id.
    pub fn app(&self, id: AppId) -> &App {
        &self.apps[id.0 as usize]
    }

    /// A developer by id.
    pub fn developer(&self, id: DevId) -> &Developer {
        &self.developers[id.0 as usize]
    }

    /// Total number of listings.
    pub fn listing_count(&self) -> usize {
        self.listings.len()
    }

    /// Deterministically build the APK bytes for `(app, version)`.
    ///
    /// `obfuscated` applies the 360-Jiagubao-style wrapping the store
    /// mandates (Section 2.1): the app's *own* classes are renamed under
    /// a packer namespace and a stub loader class is added; library code
    /// and method bodies are untouched.
    ///
    /// The DEX carries a call graph rooted at the manifest-declared
    /// components. Originals invoke every library they bundle; fakes and
    /// clones keep the victim's library subtrees *unwired* — the
    /// repackager's dead cargo — so reachability-mode over-privilege and
    /// the dead-code stats diverge from the flat baseline exactly where
    /// the paper says they should.
    pub fn build_apk(&self, app_id: AppId, version: u32, obfuscated: bool) -> Vec<u8> {
        let app = self.app(app_id);
        let version = version.clamp(1, app.version_count);
        let mut classes = own_classes(
            app.own_code_seed,
            &app.own_package,
            app.own_class_count,
            version,
            app.code_mutation,
        );
        let own_len = classes.len();
        let mut lib_ranges = Vec::new();
        for lu in &app.libs {
            let start = classes.len();
            classes.extend(self.libraries.classes_for(*lu));
            lib_ranges.push((start, classes.len()));
        }
        let payload_range = app.infection.map(|inf| {
            let start = classes.len();
            classes.extend(payload_classes(&self.threat_db, inf, app.own_code_seed));
            (start, classes.len())
        });
        // Wrapping inserts the stub at index 0, shifting every class; the
        // call graph is wired afterwards so its indices are final.
        let shift = if obfuscated {
            jiagu_wrap(&mut classes, &app.own_package, app.own_code_seed);
            1
        } else {
            0
        };
        let wire_libs = matches!(app.provenance, Provenance::Original);
        wire_call_graph(
            &mut classes,
            shift,
            own_len,
            &lib_ranges,
            payload_range,
            wire_libs,
        );
        if let Some(leak) = app.leak {
            inject_leak(&mut classes, shift, own_len, leak, app, &self.libraries);
        }
        let mut components = Vec::new();
        if !classes.is_empty() {
            // The launcher activity: the stub loader when packed (which
            // bootstraps the real root), the own root class otherwise.
            components.push(Component {
                kind: ComponentKind::Activity,
                class: classes[0].name.clone(),
            });
            if own_len > 1 {
                components.push(Component {
                    kind: ComponentKind::Service,
                    class: classes[shift + own_len - 1].name.clone(),
                });
            }
        }
        let manifest = Manifest {
            package: app.package.clone(),
            version_code: VersionCode(version),
            version_name: format!("{}.{}.0", version / 10, version % 10),
            min_sdk: app.min_sdk,
            target_sdk: app.min_sdk.saturating_add(8).min(27),
            app_label: app.label.clone(),
            permissions: app.declared_permissions.clone(),
            category: app.category.label().to_owned(),
            components,
        };
        let dev = self.developer(app.developer);
        ApkBuilder::new(manifest, DexFile { classes })
            .build(dev.key)
            .unwrap_or_else(|e| unreachable!("generated apk is structurally valid: {e:?}"))
    }
}

/// Wire the app's intra-DEX call graph after assembly.
///
/// * Own code forms a chain (`K0 → K1 → …`) with each class's first
///   method fanning out to its siblings, so everything own is reachable
///   from the root.
/// * Each library subtree is internally coherent (root class fans out to
///   the rest), but the own→library-root edge is added only when
///   `wire_libs` is set: originals use the libraries they bundle, while
///   fakes and clones carry them as dead cargo.
/// * A malware payload is always invoked from the own root — planted
///   payloads run.
/// * Packed apps get a stub→root bootstrap edge.
///
/// `shift` is the index displacement introduced by the packer stub (1
/// when wrapped, 0 otherwise); all recorded ranges predate the stub.
fn wire_call_graph(
    classes: &mut [ClassDef],
    shift: usize,
    own_len: usize,
    lib_ranges: &[(usize, usize)],
    payload_range: Option<(usize, usize)>,
    wire_libs: bool,
) {
    fn edge(class: usize, method: usize) -> MethodRef {
        MethodRef {
            class: class as u16,
            method: method as u16,
        }
    }
    // A segment's first class fans out to the segment's other classes;
    // every class's first method fans out to its sibling methods.
    let wire_segment = |classes: &mut [ClassDef], start: usize, end: usize| {
        for ci in start..end {
            let abs = shift + ci;
            let sibs = classes[abs].methods.len();
            let mut inv: Vec<MethodRef> = (1..sibs).map(|mi| edge(abs, mi)).collect();
            if ci == start {
                inv.extend((start + 1..end).map(|c| edge(shift + c, 0)));
            }
            classes[abs].methods[0].invokes.extend(inv);
        }
    };
    // Own code: intra-class fan-out plus the K0 → K1 → … chain.
    for ci in 0..own_len {
        let abs = shift + ci;
        let sibs = classes[abs].methods.len();
        let mut inv: Vec<MethodRef> = (1..sibs).map(|mi| edge(abs, mi)).collect();
        if ci + 1 < own_len {
            inv.push(edge(shift + ci + 1, 0));
        }
        classes[abs].methods[0].invokes.extend(inv);
    }
    for (li, &(start, end)) in lib_ranges.iter().enumerate() {
        wire_segment(classes, start, end);
        if wire_libs && own_len > 0 {
            let host = shift + (li % own_len);
            let root = edge(shift + start, 0);
            classes[host].methods[0].invokes.push(root);
        }
    }
    if let Some((start, end)) = payload_range {
        wire_segment(classes, start, end);
        if own_len > 0 {
            let root = edge(shift + start, 0);
            classes[shift].methods[0].invokes.push(root);
        }
    }
    if shift == 1 && own_len > 0 {
        classes[0].methods[0].invokes.push(edge(shift, 0));
    }
}

/// The bundled library whose namespace hosts a TPL leak sink: ad
/// networks first (the paper's dominant leak vector), any library
/// otherwise.
pub(crate) fn leak_host_package(app: &App, libraries: &LibCatalog) -> Option<String> {
    let ad = app
        .libs
        .iter()
        .find(|lu| libraries.spec(lu.lib).category == LibCategory::Ad);
    let lu = ad.or_else(|| app.libs.first())?;
    Some(libraries.spec(lu.lib).package.clone())
}

/// Materialize a planted leak in the assembled DEX.
///
/// The source call lands in the own root method (reachable from the
/// launcher component, so entry-point-rooted taint passes see it). A
/// host leak sinks in the last own class. A TPL leak appends a fresh
/// class under a bundled library's namespace — in a unique subpackage,
/// so the class never clusters into the library itself — and wires it
/// from the own root.
fn inject_leak(
    classes: &mut Vec<ClassDef>,
    shift: usize,
    own_len: usize,
    leak: PlantedLeak,
    app: &App,
    libraries: &LibCatalog,
) {
    if own_len == 0 {
        return;
    }
    classes[shift].methods[0].api_calls.push(leak.source);
    let tpl_root = if leak.via_tpl {
        leak_host_package(app, libraries)
    } else {
        None
    };
    match tpl_root {
        Some(root) => {
            let ns = mix64(app.own_code_seed, 0x1eaf) & 0xFFFF;
            let path = root.replace('.', "/");
            let target = classes.len();
            classes.push(ClassDef {
                name: format!("L{path}/x{ns:x}/Leak;"),
                methods: vec![MethodDef {
                    api_calls: vec![leak.sink],
                    code_hash: mix64(app.own_code_seed, 0x5117),
                    invokes: vec![],
                }],
            });
            classes[shift].methods[0].invokes.push(MethodRef {
                class: target as u16,
                method: 0,
            });
        }
        None => {
            classes[shift + own_len - 1].methods[0]
                .api_calls
                .push(leak.sink);
        }
    }
}

/// Generate an app's own classes.
///
/// * `version` perturbs the code hashes of ~20% of classes (release
///   churn) while keeping API footprints stable;
/// * `mutation` models a repackager's edits: ~6% of methods get one API
///   call swapped and ~5% get their code hash changed, leaving the app
///   well inside WuKong's ≥85%-shared-segments clone band even after a
///   malware payload is attached.
pub(crate) fn own_classes(
    seed: u64,
    package_path_dotted: &str,
    count: u32,
    version: u32,
    mutation: Option<u64>,
) -> Vec<ClassDef> {
    let path = package_path_dotted.replace('.', "/");
    (0..count)
        .map(|ci| {
            let class_seed = mix64(seed, 0x0c1a_5500 + ci as u64);
            let churns = ci % 5 == 0;
            let mut r = DetRng::new(class_seed);
            let method_count = 1 + r.index(5);
            let methods = (0..method_count)
                .map(|mi| {
                    let call_count = r.index(8);
                    let mut api_calls: Vec<ApiCallId> = (0..call_count)
                        .map(|_| {
                            ApiCallId(
                                r.range_u64(0, marketscope_apk::apicalls::API_CALL_RANGE as u64)
                                    as u32,
                            )
                        })
                        .collect();
                    let mut code_hash = mix64(class_seed, 0xc0de_0000 + mi as u64);
                    if churns {
                        code_hash = mix64(code_hash, version as u64);
                    }
                    if let Some(mseed) = mutation {
                        let mrng = mix64(mseed, mix64(class_seed, mi as u64));
                        if mrng % 100 < 6 {
                            if let Some(first) = api_calls.first_mut() {
                                *first = ApiCallId(
                                    (mix64(mrng, 0xa1)
                                        % marketscope_apk::apicalls::API_DIMENSIONS as u64)
                                        as u32,
                                );
                            }
                        }
                        if mix64(mrng, 0xb2) % 100 < 5 {
                            code_hash = mix64(code_hash, mseed);
                        }
                    }
                    MethodDef {
                        api_calls,
                        code_hash,
                        invokes: vec![],
                    }
                })
                .collect();
            ClassDef {
                name: format!("L{path}/K{ci};"),
                methods,
            }
        })
        .collect()
}

/// Build a malware payload: a few classes under an obfuscated namespace
/// whose method code hashes carry the family's signatures.
pub(crate) fn payload_classes(db: &ThreatDb, infection: Infection, app_seed: u64) -> Vec<ClassDef> {
    let sigs = db.signatures(infection.family);
    let ns = mix64(app_seed, 0xbad0) % 0xFFFF;
    // 3–4 of the family's signature hashes appear in the payload. Kept
    // small so a repackaged-malware app stays inside the clone detector's
    // 85%-shared-segments band relative to its victim (the paper finds
    // 38.3% of malware is repackaged — those must be detectable as both).
    let take = 3 + (app_seed % 2) as usize;
    let mut classes = Vec::new();
    // Variant metadata: a marker class encoding how detectable this
    // particular variant is (see `threat::decode_detectability`).
    let step = ((infection.detectability * crate::threat::DETECTABILITY_STEPS as f64) as u8)
        .min(crate::threat::DETECTABILITY_STEPS - 1);
    classes.push(ClassDef {
        name: format!("La{ns:x}/v;"),
        methods: vec![MethodDef {
            api_calls: vec![],
            code_hash: crate::threat::detectability_marker(step),
            invokes: vec![],
        }],
    });
    for (ci, chunk) in sigs[..take.min(sigs.len())].chunks(3).enumerate() {
        let methods = chunk
            .iter()
            .enumerate()
            .map(|(mi, &sig)| MethodDef {
                api_calls: vec![
                    // SMS / phone-state flavoured API ids.
                    ApiCallId((mix64(sig, mi as u64) % 2_048) as u32),
                ],
                code_hash: sig,
                invokes: vec![],
            })
            .collect();
        classes.push(ClassDef {
            name: format!("La{ns:x}/b{ci};"),
            methods,
        });
    }
    classes
}

/// 360-style packer wrapping: rename own classes under `Lcom/jiagu/...`
/// and prepend a stub loader.
fn jiagu_wrap(classes: &mut Vec<ClassDef>, own_package_dotted: &str, seed: u64) {
    let own_path = format!("L{}/", own_package_dotted.replace('.', "/"));
    for c in classes.iter_mut() {
        if c.name.starts_with(&own_path) {
            let tail = c.name[own_path.len()..].trim_end_matches(';').to_owned();
            c.name = format!("Lcom/jiagu/p{:x}/{tail};", seed % 0xFFF);
        }
    }
    classes.insert(
        0,
        ClassDef {
            name: "Lcom/jiagu/StubLoader;".to_owned(),
            methods: vec![MethodDef {
                api_calls: vec![ApiCallId(1)],
                code_hash: mix64(seed, 0x360),
                invokes: vec![],
            }],
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threat::{ThreatTier, FAMILIES};

    #[test]
    fn own_classes_deterministic_and_versioned() {
        let a = own_classes(7, "com.x.y", 20, 3, None);
        let b = own_classes(7, "com.x.y", 20, 3, None);
        assert_eq!(a, b);
        let c = own_classes(7, "com.x.y", 20, 4, None);
        assert_ne!(a, c, "version must churn some code");
        // API footprints are version-stable.
        let calls = |cs: &[ClassDef]| {
            cs.iter()
                .flat_map(|c| &c.methods)
                .flat_map(|m| &m.api_calls)
                .count()
        };
        assert_eq!(calls(&a), calls(&c));
    }

    #[test]
    fn mutation_stays_in_clone_band() {
        let orig = own_classes(9, "com.a.b", 40, 1, None);
        let cloned = own_classes(9, "com.a.b", 40, 1, Some(0x5eed));
        let orig_hashes: std::collections::HashSet<u64> = orig
            .iter()
            .flat_map(|c| &c.methods)
            .map(|m| m.code_hash)
            .collect();
        let total = cloned.iter().map(|c| c.methods.len()).sum::<usize>();
        let shared = cloned
            .iter()
            .flat_map(|c| &c.methods)
            .filter(|m| orig_hashes.contains(&m.code_hash))
            .count();
        let ratio = shared as f64 / total as f64;
        assert!(ratio > 0.8 && ratio < 1.0, "similarity {ratio}");
    }

    #[test]
    fn payload_carries_family_signatures() {
        let db = ThreatDb::standard();
        let fam = db.family_by_name("kuguo").unwrap();
        let inf = Infection {
            family: fam,
            tier: ThreatTier::Malware,
            detectability: 0.3,
        };
        let classes = payload_classes(&db, inf, 1234);
        let hashes: Vec<u64> = classes
            .iter()
            .flat_map(|c| &c.methods)
            .map(|m| m.code_hash)
            .collect();
        let (found, matched) = db.scan(hashes.into_iter()).unwrap();
        assert_eq!(found, fam);
        assert!(matched >= 3);
    }

    #[test]
    fn family_table_is_nonempty() {
        assert!(FAMILIES.len() >= 15, "need the Figure 12 families");
    }

    #[test]
    fn jiagu_wrap_renames_only_own_code() {
        let mut classes = own_classes(3, "com.own.app", 10, 1, None);
        classes.push(ClassDef {
            name: "Lcom/umeng/C0;".into(),
            methods: vec![],
        });
        jiagu_wrap(&mut classes, "com.own.app", 3);
        assert_eq!(classes[0].name, "Lcom/jiagu/StubLoader;");
        assert!(
            classes
                .iter()
                .filter(|c| c.name.starts_with("Lcom/jiagu/p"))
                .count()
                == 10
        );
        assert!(classes.iter().any(|c| c.name == "Lcom/umeng/C0;"));
        assert!(!classes.iter().any(|c| c.name.starts_with("Lcom/own/")));
    }
}
