//! The third-party library catalog.
//!
//! Section 4.4 of the paper clusters 6 M apps into 5,102 libraries with
//! 672 K versions, labels the top 2,000, and contrasts Google Play's
//! Google-service-dominated library mix (Table 2, top half) with the
//! Chinese markets' mix of WeChat/Baidu/Umeng/Alipay SDKs (bottom half).
//!
//! Our catalog has the same two-part structure: a **head** of named,
//! hand-labelled libraries with per-region adoption probabilities straight
//! from Table 2, and a generated Zipf-popularity **tail**. Every
//! `(library, version)` pair deterministically expands to DEX classes, so
//! the same version embedded by two apps is byte-identical — the property
//! LibRadar-style clustering keys on.

use marketscope_apk::apicalls::{ApiCallId, API_CALL_RANGE};
use marketscope_apk::dex::{ClassDef, MethodDef};
use marketscope_core::hash::mix64;
use marketscope_core::rng::DetRng;

/// Functional category of a library (the paper's 5 labels plus the game
/// engines it lists in Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LibCategory {
    /// Ad networks (AdMob, Umeng's ad arm, Airpush...).
    Ad,
    /// Analytics/tracking SDKs.
    Analytics,
    /// Social-network SDKs (Facebook Graph, WeChat).
    SocialNetworking,
    /// General development tooling (gms, gson, apache commons).
    Development,
    /// Payment SDKs (Alipay, Play vending, Square).
    Payment,
    /// Game engines (Unity, FMOD).
    GameEngine,
}

/// Region affinity driving adoption probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adoption {
    /// Probability a Google-Play-homed app embeds this library.
    pub google_play: f64,
    /// Probability a Chinese-market-homed app embeds this library.
    pub chinese: f64,
}

/// One library in the catalog.
#[derive(Debug, Clone)]
pub struct LibSpec {
    /// Root Java package, e.g. `com.umeng`.
    pub package: String,
    /// Functional category.
    pub category: LibCategory,
    /// Adoption probabilities per region.
    pub adoption: Adoption,
    /// Number of released versions.
    pub versions: u32,
    /// Classes per version (size of the library).
    pub classes: u32,
}

/// Index of a library in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LibId(pub u32);

/// A concrete embedded dependency: library + version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LibUse {
    /// Which library.
    pub lib: LibId,
    /// Which version (0-based, < `LibSpec::versions`).
    pub version: u32,
}

/// The full catalog: named head + generated tail.
#[derive(Debug, Clone)]
pub struct LibCatalog {
    specs: Vec<LibSpec>,
    /// Number of head (hand-labelled) entries.
    head_len: usize,
}

/// Table 2 head entries: `(package, category, GP adoption, CN adoption)`.
/// Adoption values are the paper's usage percentages.
const HEAD: [(&str, LibCategory, f64, f64); 16] = [
    (
        "com.google.android.gms",
        LibCategory::Development,
        0.661,
        0.205,
    ),
    ("com.google.ads", LibCategory::Ad, 0.621, 0.257),
    ("com.facebook", LibCategory::SocialNetworking, 0.215, 0.107),
    ("org.apache", LibCategory::Development, 0.205, 0.241),
    ("com.squareup", LibCategory::Payment, 0.138, 0.04),
    ("com.google.gson", LibCategory::Development, 0.129, 0.163),
    ("com.android.vending", LibCategory::Payment, 0.125, 0.03),
    ("com.unity3d", LibCategory::GameEngine, 0.118, 0.09),
    ("org.fmod", LibCategory::GameEngine, 0.096, 0.07),
    ("com.google.firebase", LibCategory::Development, 0.090, 0.02),
    ("com.tencent.mm", LibCategory::SocialNetworking, 0.02, 0.173),
    ("com.baidu", LibCategory::Development, 0.015, 0.169),
    ("com.umeng", LibCategory::Analytics, 0.01, 0.165),
    ("com.alipay", LibCategory::Payment, 0.008, 0.110),
    ("com.nostra13", LibCategory::Development, 0.09, 0.106),
    ("com.qq.e", LibCategory::Ad, 0.004, 0.09),
];

impl LibCatalog {
    /// Build the catalog: the 16 named head libraries plus `tail_count`
    /// generated ones with Zipf-decaying adoption. Ad libraries make up a
    /// large tail slice because the Chinese ad ecosystem is decentralized
    /// ("more than 200 ad libraries compete for the remaining 20%").
    pub fn generate(rng: &DetRng, tail_count: usize) -> LibCatalog {
        let mut specs: Vec<LibSpec> = HEAD
            .iter()
            .map(|(pkg, cat, gp, cn)| LibSpec {
                package: (*pkg).to_owned(),
                category: *cat,
                adoption: Adoption {
                    google_play: *gp,
                    chinese: *cn,
                },
                versions: 12,
                classes: 10,
            })
            .collect();
        let mut r = rng.derive("lib-catalog");
        for i in 0..tail_count {
            // A flat tail: the long tail of small SDKs is collectively
            // large but individually small — no single tail library may
            // out-rank the Table 2 head in the recovered adoption table.
            let _rank = i + 1;
            let base = 0.010 + 0.004 * r.unit();
            // 40% of the tail are small ad networks; they skew Chinese
            // but are individually tiny — AdMob dominates Google Play's
            // ad share (~90%) and AdMob+Umeng hold ~80% in China, with
            // 200+ networks splitting the rest (Section 4.4).
            let (category, gp_mult, cn_mult) = if r.chance(0.4) {
                (LibCategory::Ad, 0.08, 0.10)
            } else if r.chance(0.2) {
                (LibCategory::Analytics, 0.3, 0.5)
            } else if r.chance(0.1) {
                (LibCategory::Payment, 0.2, 0.4)
            } else {
                (LibCategory::Development, 1.0, 0.9)
            };
            specs.push(LibSpec {
                package: format!("com.sdk{i}.{}", category_slug(category)),
                category,
                adoption: Adoption {
                    google_play: (base * gp_mult).min(0.2),
                    chinese: (base * cn_mult).min(0.2),
                },
                versions: 1 + r.index(8) as u32,
                classes: 4 + r.index(12) as u32,
            });
        }
        LibCatalog {
            specs,
            head_len: HEAD.len(),
        }
    }

    /// All library specs.
    pub fn specs(&self) -> &[LibSpec] {
        &self.specs
    }

    /// Spec by id.
    pub fn spec(&self, id: LibId) -> &LibSpec {
        &self.specs[id.0 as usize]
    }

    /// Number of libraries.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the catalog is empty (it never is after `generate`).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The hand-labelled head (Table 2 ground truth).
    pub fn head(&self) -> &[LibSpec] {
        &self.specs[..self.head_len]
    }

    /// Find a library whose root package is a prefix of `java_package`
    /// (e.g. `com.umeng.analytics` → `com.umeng`).
    pub fn find_by_package(&self, java_package: &str) -> Option<LibId> {
        self.specs
            .iter()
            .position(|s| {
                java_package == s.package
                    || (java_package.starts_with(&s.package)
                        && java_package.as_bytes().get(s.package.len()) == Some(&b'.'))
            })
            .map(|i| LibId(i as u32))
    }

    /// Deterministically expand a `(library, version)` into DEX classes.
    /// Two apps embedding the same version get byte-identical classes;
    /// different versions share most classes (real minor releases change
    /// a fraction of the code), which LibRadar-style clustering tolerates.
    pub fn classes_for(&self, u: LibUse) -> Vec<ClassDef> {
        let spec = self.spec(u.lib);
        let path = spec.package.replace('.', "/");
        (0..spec.classes)
            .map(|ci| {
                // Roughly a quarter of a library's classes are touched by
                // every release; the rest are stable across versions.
                let last_changed = if ci % 4 == 0 { u.version } else { 0 };
                let class_seed = mix64(
                    mix64(u.lib.0 as u64, 0x11b0 + ci as u64),
                    last_changed as u64,
                );
                let mut r = DetRng::new(class_seed);
                let method_count = 2 + (class_seed % 4) as usize;
                let methods = (0..method_count)
                    .map(|mi| {
                        let call_count = 1 + r.index(6);
                        let api_calls = (0..call_count)
                            .map(|_| ApiCallId(r.range_u64(0, API_CALL_RANGE as u64) as u32))
                            .collect();
                        MethodDef {
                            api_calls,
                            code_hash: mix64(class_seed, 0xae70 + mi as u64),
                            invokes: vec![],
                        }
                    })
                    .collect();
                ClassDef {
                    name: format!("L{path}/C{ci};"),
                    methods,
                }
            })
            .collect()
    }
}

fn category_slug(c: LibCategory) -> &'static str {
    match c {
        LibCategory::Ad => "ads",
        LibCategory::Analytics => "track",
        LibCategory::SocialNetworking => "social",
        LibCategory::Development => "dev",
        LibCategory::Payment => "pay",
        LibCategory::GameEngine => "engine",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> LibCatalog {
        LibCatalog::generate(&DetRng::new(42), 120)
    }

    #[test]
    fn head_matches_table2() {
        let c = catalog();
        assert_eq!(c.head().len(), 16);
        let gms = &c.head()[0];
        assert_eq!(gms.package, "com.google.android.gms");
        assert!(gms.adoption.google_play > gms.adoption.chinese);
        let umeng = c.head().iter().find(|s| s.package == "com.umeng").unwrap();
        assert!(umeng.adoption.chinese > umeng.adoption.google_play);
        assert_eq!(umeng.category, LibCategory::Analytics);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = LibCatalog::generate(&DetRng::new(1), 50);
        let b = LibCatalog::generate(&DetRng::new(1), 50);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.specs().iter().zip(b.specs()) {
            assert_eq!(x.package, y.package);
            assert_eq!(x.adoption, y.adoption);
        }
    }

    #[test]
    fn same_version_is_byte_identical_across_calls() {
        let c = catalog();
        let u = LibUse {
            lib: LibId(3),
            version: 5,
        };
        assert_eq!(c.classes_for(u), c.classes_for(u));
    }

    #[test]
    fn adjacent_versions_share_most_classes() {
        let c = catalog();
        let v5 = c.classes_for(LibUse {
            lib: LibId(0),
            version: 5,
        });
        let v6 = c.classes_for(LibUse {
            lib: LibId(0),
            version: 6,
        });
        let shared = v5.iter().filter(|cl| v6.contains(cl)).count();
        assert!(shared >= v5.len() / 2, "only {shared}/{} shared", v5.len());
        assert_ne!(v5, v6, "versions must differ somewhere");
    }

    #[test]
    fn distinct_libraries_have_distinct_code() {
        let c = catalog();
        let a = c.classes_for(LibUse {
            lib: LibId(0),
            version: 0,
        });
        let b = c.classes_for(LibUse {
            lib: LibId(1),
            version: 0,
        });
        assert!(a.iter().all(|cl| !b.contains(cl)));
    }

    #[test]
    fn find_by_package_prefix_semantics() {
        let c = catalog();
        let umeng = c.find_by_package("com.umeng").unwrap();
        assert_eq!(c.spec(umeng).package, "com.umeng");
        assert_eq!(c.find_by_package("com.umeng.analytics"), Some(umeng));
        // Prefix must respect package-segment boundaries.
        assert_eq!(c.find_by_package("com.umengx.evil"), None);
        assert_eq!(c.find_by_package("com.nosuchlib"), None);
    }

    #[test]
    fn tail_has_many_ad_networks() {
        let c = catalog();
        let tail_ads = c.specs()[16..]
            .iter()
            .filter(|s| s.category == LibCategory::Ad)
            .count();
        assert!(tail_ads > 25, "only {tail_ads} ad networks in tail");
    }

    #[test]
    fn class_names_live_under_lib_package() {
        let c = catalog();
        let classes = c.classes_for(LibUse {
            lib: LibId(12),
            version: 0,
        });
        for cl in &classes {
            assert!(cl.name.starts_with("Lcom/umeng/"), "{}", cl.name);
            assert_eq!(cl.java_package().unwrap(), "com.umeng");
        }
    }
}
