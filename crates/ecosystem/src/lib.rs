//! # marketscope-ecosystem
//!
//! The synthetic Android ecosystem standing in for the paper's 6.2 M-app
//! crawl. A single seed expands into developers, apps, per-market listings
//! and deterministic APK bytes, with every per-market ground truth the
//! paper measured planted at a configurable scale:
//!
//! * catalog sizes, developer counts and features (Table 1) — [`profiles`];
//! * download, rating, release-date and min-SDK distributions
//!   (Figures 2, 3, 4, 6);
//! * the third-party library catalog with its Google-Play vs Chinese-market
//!   adoption split (Table 2, Figure 5) — [`libs`];
//! * publishing dynamics: single/multi-store apps, developer market
//!   spread, outdated versions (Figures 7, 8, 9);
//! * fakes, signature clones, code clones (Table 3, Figure 10), malware
//!   families and AV detectability (Tables 4, 5; Figure 12) — [`threat`];
//! * second-crawl removal behaviour (Table 6).
//!
//! The analyses in the downstream crates never look at this ground truth —
//! they work from crawled bytes; the planted values exist so the pipeline's
//! *recovered* tables can be validated against what was planted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
pub mod libs;
pub mod names;
pub mod profiles;
pub mod threat;
pub mod world;

pub use generate::{generate, WorldConfig};
pub use libs::{LibCatalog, LibCategory, LibId, LibUse};
pub use profiles::{all_profiles, profile, MarketProfile, Scale};
pub use threat::{Family, FamilyId, Infection, ThreatDb, ThreatTier, FAMILIES};
pub use world::{
    App, AppId, DevId, Developer, GroundTruth, Listing, ListingId, PlantedLeak, Provenance, World,
};
