//! The threat model: malware families, payload signatures, detectability.
//!
//! The paper measures malware prevalence by uploading every APK to
//! VirusTotal and thresholding the **AV-rank** (how many of ~60 engines
//! flag a sample), then labels families with AVClass. We model the part of
//! that world that produces those observations:
//!
//! * a *family* is a named strain with a region bias (Figure 12: `kuguo`
//!   tops Chinese markets, `airpush`/`revmob` dominate Google Play);
//! * an infected app embeds a *payload*: DEX classes whose code-segment
//!   hashes come from the family's signature set (this is what scanners
//!   actually key on);
//! * each sample has a *detectability* in `[0,1]` — the probability that
//!   a random engine recognizes it — giving the AV-rank distribution its
//!   spread (grayware sits at rank 1–9, malware at 10+, EICAR-style
//!   benchmark files near the top of Table 5).
//!
//! [`ThreatDb`] is the shared signature database: the generator uses it to
//! build payloads, the AV simulator in `marketscope-analysis` uses it to
//! recognize them. Sharing it is realistic — AV vendors ship signature
//! databases of known strains.

use marketscope_core::hash::{fnv1a64, mix64};

/// Severity tier of an infection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreatTier {
    /// Flagged by a handful of engines (1–9): aggressive adware and other
    /// potentially-unwanted programs.
    Grayware,
    /// Flagged by ten or more engines: the paper's malware threshold.
    Malware,
    /// AV benchmark files (EICAR): flagged by nearly every engine.
    Benchmark,
}

/// A malware family known to the signature database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FamilyId(pub u16);

/// Region bias of a family's distribution (Figure 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyRegion {
    /// Predominantly found in Google Play (airpush, revmob, leadbolt...).
    GooglePlay,
    /// Predominantly found in Chinese markets (kuguo, dowgin, secapk...).
    Chinese,
    /// Found everywhere (smsreg, gappusin...).
    Both,
}

/// Static description of one family.
#[derive(Debug, Clone)]
pub struct Family {
    /// Canonical (AVClass-style) family name.
    pub name: &'static str,
    /// Distribution bias.
    pub region: FamilyRegion,
    /// Relative prevalence weight within its region.
    pub weight: f64,
    /// Default tier for samples of this family.
    pub tier: ThreatTier,
}

/// The family table. Weights follow Figure 12's ordering: `kuguo` leads
/// the Chinese markets (12.69% of malware there), `airpush` (29.04%) and
/// `revmob` (15.09%) lead Google Play.
pub const FAMILIES: [Family; 18] = [
    Family {
        name: "kuguo",
        region: FamilyRegion::Chinese,
        weight: 12.69,
        tier: ThreatTier::Malware,
    },
    Family {
        name: "dowgin",
        region: FamilyRegion::Chinese,
        weight: 7.2,
        tier: ThreatTier::Malware,
    },
    Family {
        name: "secapk",
        region: FamilyRegion::Chinese,
        weight: 6.0,
        tier: ThreatTier::Malware,
    },
    Family {
        name: "youmi",
        region: FamilyRegion::Chinese,
        weight: 5.2,
        tier: ThreatTier::Malware,
    },
    Family {
        name: "adwo",
        region: FamilyRegion::Chinese,
        weight: 4.1,
        tier: ThreatTier::Malware,
    },
    Family {
        name: "domob",
        region: FamilyRegion::Chinese,
        weight: 3.6,
        tier: ThreatTier::Malware,
    },
    Family {
        name: "commplat",
        region: FamilyRegion::Chinese,
        weight: 3.2,
        tier: ThreatTier::Malware,
    },
    Family {
        name: "adend",
        region: FamilyRegion::Chinese,
        weight: 2.7,
        tier: ThreatTier::Malware,
    },
    Family {
        name: "smspay",
        region: FamilyRegion::Chinese,
        weight: 2.4,
        tier: ThreatTier::Malware,
    },
    Family {
        name: "jiagu",
        region: FamilyRegion::Chinese,
        weight: 2.0,
        tier: ThreatTier::Malware,
    },
    Family {
        name: "ramnit",
        region: FamilyRegion::Chinese,
        weight: 1.6,
        tier: ThreatTier::Malware,
    },
    Family {
        name: "airpush",
        region: FamilyRegion::GooglePlay,
        weight: 29.04,
        tier: ThreatTier::Malware,
    },
    Family {
        name: "revmob",
        region: FamilyRegion::GooglePlay,
        weight: 15.09,
        tier: ThreatTier::Malware,
    },
    Family {
        name: "leadbolt",
        region: FamilyRegion::GooglePlay,
        weight: 6.5,
        tier: ThreatTier::Malware,
    },
    Family {
        name: "mofin",
        region: FamilyRegion::GooglePlay,
        weight: 1.2,
        tier: ThreatTier::Malware,
    },
    Family {
        name: "smsreg",
        region: FamilyRegion::Both,
        weight: 8.1,
        tier: ThreatTier::Malware,
    },
    Family {
        name: "gappusin",
        region: FamilyRegion::Both,
        weight: 6.3,
        tier: ThreatTier::Malware,
    },
    Family {
        name: "eicar",
        region: FamilyRegion::Both,
        weight: 0.01,
        tier: ThreatTier::Benchmark,
    },
];

/// Number of signature hashes per family.
const SIGNATURES_PER_FAMILY: usize = 16;

/// The shared signature database.
#[derive(Debug, Clone)]
pub struct ThreatDb {
    /// Per-family signature hash sets (indexed by `FamilyId.0`).
    signatures: Vec<[u64; SIGNATURES_PER_FAMILY]>,
}

impl ThreatDb {
    /// The standard database covering [`FAMILIES`]. Deterministic: both
    /// sides of the simulation construct the identical table.
    pub fn standard() -> ThreatDb {
        let signatures = FAMILIES
            .iter()
            .enumerate()
            .map(|(fi, fam)| {
                let base = fnv1a64(fam.name.as_bytes());
                let mut sigs = [0u64; SIGNATURES_PER_FAMILY];
                for (si, s) in sigs.iter_mut().enumerate() {
                    *s = mix64(base, (fi as u64) << 32 | si as u64 | 0x7437_0000_0000);
                }
                sigs
            })
            .collect();
        ThreatDb { signatures }
    }

    /// Look up a family id by canonical name.
    pub fn family_by_name(&self, name: &str) -> Option<FamilyId> {
        FAMILIES
            .iter()
            .position(|f| f.name == name)
            .map(|i| FamilyId(i as u16))
    }

    /// The family metadata for an id.
    pub fn family(&self, id: FamilyId) -> &'static Family {
        &FAMILIES[id.0 as usize]
    }

    /// The signature hashes of a family (what a payload embeds and what a
    /// scanner greps method code-hashes for).
    pub fn signatures(&self, id: FamilyId) -> &[u64] {
        &self.signatures[id.0 as usize]
    }

    /// Classify a set of method code-hashes: the family whose signatures
    /// appear, if any, and how many distinct signatures matched (more
    /// matches → higher-confidence detection).
    pub fn scan<'a>(
        &self,
        code_hashes: impl Iterator<Item = u64> + 'a,
    ) -> Option<(FamilyId, usize)> {
        use std::collections::HashSet;
        let hashes: HashSet<u64> = code_hashes.collect();
        let mut best: Option<(FamilyId, usize)> = None;
        for (fi, sigs) in self.signatures.iter().enumerate() {
            let matched = sigs.iter().filter(|s| hashes.contains(s)).count();
            if matched > 0 && best.map_or(true, |(_, m)| matched > m) {
                best = Some((FamilyId(fi as u16), matched));
            }
        }
        best
    }

    /// Number of families.
    pub fn family_count(&self) -> usize {
        self.signatures.len()
    }
}

/// Quantization steps for the detectability marker.
pub const DETECTABILITY_STEPS: u8 = 64;

/// The marker hash a payload embeds to encode its (quantized)
/// detectability — the residue of how well the variant is obfuscated.
/// Scanners decode it from bytes; nothing outside the APK is consulted.
pub fn detectability_marker(step: u8) -> u64 {
    mix64(
        0xD37E_C7AB_1117_55AA,
        step.min(DETECTABILITY_STEPS - 1) as u64,
    )
}

/// Decode a detectability marker from a sample's code hashes.
pub fn decode_detectability(code_hashes: &std::collections::HashSet<u64>) -> Option<f64> {
    (0..DETECTABILITY_STEPS)
        .find(|q| code_hashes.contains(&detectability_marker(*q)))
        .map(|q| (q as f64 + 0.5) / DETECTABILITY_STEPS as f64)
}

/// Ground-truth infection attached to an app by the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Infection {
    /// The family.
    pub family: FamilyId,
    /// Severity tier.
    pub tier: ThreatTier,
    /// Probability a random engine recognizes this particular variant.
    pub detectability: f64,
}

impl Infection {
    /// Typical detectability band for a tier: grayware lands at AV-rank
    /// 1–9, malware at 10–40, benchmarks at 44+ (matching Table 5's top
    /// ranks of 44–48, out of 60 engines).
    pub fn base_detectability(tier: ThreatTier) -> (f64, f64) {
        match tier {
            ThreatTier::Grayware => (0.03, 0.12),
            ThreatTier::Malware => (0.20, 0.62),
            ThreatTier::Benchmark => (0.74, 0.82),
        }
    }

    /// Sample a detectability within a tier's band. Malware skews toward
    /// the low end (cube law) so the AV-rank ≥ 20 share lands near the
    /// paper's ≈0.3 × (AV-rank ≥ 10) ratio.
    pub fn sample_detectability(tier: ThreatTier, unit: f64) -> f64 {
        let (lo, hi) = Self::base_detectability(tier);
        let u = match tier {
            ThreatTier::Malware => unit.powf(3.0),
            _ => unit,
        };
        lo + (hi - lo) * u
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_is_deterministic() {
        let a = ThreatDb::standard();
        let b = ThreatDb::standard();
        for i in 0..a.family_count() {
            assert_eq!(
                a.signatures(FamilyId(i as u16)),
                b.signatures(FamilyId(i as u16))
            );
        }
    }

    #[test]
    fn signatures_are_distinct_across_families() {
        let db = ThreatDb::standard();
        let mut all: Vec<u64> = (0..db.family_count())
            .flat_map(|i| db.signatures(FamilyId(i as u16)).to_vec())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "signature collision");
    }

    #[test]
    fn scan_recognizes_planted_payload() {
        let db = ThreatDb::standard();
        let kuguo = db.family_by_name("kuguo").unwrap();
        let sigs = db.signatures(kuguo);
        let code = vec![1u64, 2, sigs[0], sigs[3], 99];
        let (fam, matched) = db.scan(code.into_iter()).unwrap();
        assert_eq!(fam, kuguo);
        assert_eq!(matched, 2);
    }

    #[test]
    fn scan_clean_code_is_none() {
        let db = ThreatDb::standard();
        assert!(db.scan([1u64, 2, 3].into_iter()).is_none());
    }

    #[test]
    fn scan_prefers_strongest_match() {
        let db = ThreatDb::standard();
        let a = db.family_by_name("airpush").unwrap();
        let b = db.family_by_name("kuguo").unwrap();
        let mut code = db.signatures(a)[..1].to_vec();
        code.extend_from_slice(&db.signatures(b)[..3]);
        let (fam, _) = db.scan(code.into_iter()).unwrap();
        assert_eq!(fam, b);
    }

    #[test]
    fn family_regions_match_figure12() {
        let db = ThreatDb::standard();
        let kuguo = db.family(db.family_by_name("kuguo").unwrap());
        assert_eq!(kuguo.region, FamilyRegion::Chinese);
        let airpush = db.family(db.family_by_name("airpush").unwrap());
        assert_eq!(airpush.region, FamilyRegion::GooglePlay);
        assert!(airpush.weight > 25.0);
    }

    #[test]
    fn detectability_bands_are_ordered() {
        let (g_lo, g_hi) = Infection::base_detectability(ThreatTier::Grayware);
        let (m_lo, m_hi) = Infection::base_detectability(ThreatTier::Malware);
        let (b_lo, b_hi) = Infection::base_detectability(ThreatTier::Benchmark);
        assert!(g_lo < g_hi && g_hi <= m_lo + 0.1);
        assert!(m_lo < m_hi && m_hi < b_lo);
        assert!(b_lo < b_hi && b_hi < 1.0);
    }
}
