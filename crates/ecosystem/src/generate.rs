//! The world generator: plants every per-market ground truth the paper
//! measured, at a configurable scale, from a single seed.
//!
//! Generation order matters and mirrors the real ecosystem's causality:
//!
//! 1. **originals** — legitimate apps with developers, categories,
//!    popularity, release history, libraries and permissions, assigned to
//!    markets under per-market catalog quotas (single-store shares first,
//!    then multi-store apps whose reach grows with popularity);
//! 2. **fakes and clones** — parasitic apps derived from victims
//!    (Table 3 rates; Figure 10 origin mix);
//! 3. **malware** — infections over existing apps, preferring clones
//!    (the paper finds 38.3% of malware is repackaged), at Table 4 rates,
//!    plus the named Table 5 top-malware specials;
//! 4. **removal** — second-crawl disappearance at Table 6 rates.

use crate::libs::{LibCatalog, LibUse};
use crate::names::NameForge;
use crate::profiles::{all_profiles, profile, MarketProfile, Scale};
use crate::threat::{FamilyRegion, Infection, ThreatDb, ThreatTier, FAMILIES};
use crate::world::{
    own_classes, App, AppId, DevId, Developer, GroundTruth, Listing, ListingId, PlantedLeak,
    Provenance, World,
};
use marketscope_apk::permmap::{PermissionMap, SinkClass, SourceClass, PERMISSIONS};
use marketscope_core::rng::{DetRng, WeightedIndex};
use marketscope_core::{Category, DeveloperKey, MarketId, MarketKind, PackageName, SimDate};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct WorldConfig {
    /// Master seed; every byte of the world follows from it.
    pub seed: u64,
    /// Catalog scale.
    pub scale: Scale,
    /// Share of planted privacy leaks whose sink lives in a bundled
    /// third-party ad library; the rest sink in host code (Section 6
    /// extension — the host-vs-TPL attribution split).
    pub leak_tpl_share: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0x5eed_cafe,
            scale: Scale::SMALL,
            leak_tpl_share: 0.4,
        }
    }
}

/// Generate a world.
pub fn generate(config: WorldConfig) -> World {
    Generator::new(config).run()
}

/// Category weights for non-vendor markets (games ≈ half the catalog,
/// Figure 1).
const CATEGORY_WEIGHTS: [(Category, f64); 21] = [
    (Category::Game, 0.45),
    (Category::Lifestyle, 0.07),
    (Category::Personalization, 0.06),
    (Category::Tools, 0.06),
    (Category::Entertainment, 0.05),
    (Category::Education, 0.04),
    (Category::Video, 0.04),
    (Category::News, 0.03),
    (Category::Social, 0.03),
    (Category::Music, 0.03),
    (Category::Shopping, 0.03),
    (Category::Books, 0.025),
    (Category::Finance, 0.02),
    (Category::Photography, 0.02),
    (Category::Communication, 0.02),
    (Category::Health, 0.015),
    (Category::Business, 0.015),
    (Category::Location, 0.01),
    (Category::Browsers, 0.005),
    (Category::InputMethods, 0.005),
    (Category::Security, 0.005),
];

/// Vendor stores skew away from games toward personalization/tools.
const VENDOR_CATEGORY_WEIGHTS: [(Category, f64); 21] = [
    (Category::Game, 0.32),
    (Category::Personalization, 0.13),
    (Category::Tools, 0.10),
    (Category::Lifestyle, 0.08),
    (Category::Entertainment, 0.06),
    (Category::Education, 0.05),
    (Category::Video, 0.04),
    (Category::News, 0.04),
    (Category::Social, 0.03),
    (Category::Music, 0.03),
    (Category::Shopping, 0.03),
    (Category::Books, 0.03),
    (Category::Finance, 0.025),
    (Category::Photography, 0.02),
    (Category::Communication, 0.02),
    (Category::Health, 0.015),
    (Category::Business, 0.015),
    (Category::Location, 0.01),
    (Category::Browsers, 0.005),
    (Category::InputMethods, 0.005),
    (Category::Security, 0.005),
];

const JUNK_CATEGORIES: [&str; 5] = ["", "Unclassified", "102229", "9999", "未分类"];

/// Distribution of extra (unused) permissions for over-privileged apps
/// (Figure 11: mode at 3, tail beyond 9).
const EXTRA_PERM_WEIGHTS: [f64; 11] = [
    0.0, 0.12, 0.18, 0.22, 0.15, 0.10, 0.08, 0.05, 0.04, 0.03, 0.03,
];

/// Table 5's named top-malware apps: package, family, detectability,
/// hosting markets.
const SPECIALS: [(&str, &str, f64, &[MarketId]); 10] = [
    (
        "com.trustport.mobilesecurity_eicar_test_file",
        "eicar",
        0.80,
        &[MarketId::Wandoujia, MarketId::Pp25],
    ),
    ("games.hexalab.home", "mofin", 0.785, &[MarketId::Liqu]),
    (
        "com.wb.gc.ljfk.baidu",
        "ramnit",
        0.78,
        &[MarketId::BaiduMarket, MarketId::HiApk],
    ),
    (
        "com.ypt.merchant",
        "ramnit",
        0.775,
        &[
            MarketId::TencentMyapp,
            MarketId::Wandoujia,
            MarketId::OppoMarket,
            MarketId::Pp25,
            MarketId::Liqu,
        ],
    ),
    (
        "com.wsljtwinmobi",
        "ramnit",
        0.765,
        &[MarketId::TencentMyapp, MarketId::Pp25],
    ),
    (
        "com.wb.gc.ljfk.tx",
        "ramnit",
        0.755,
        &[MarketId::TencentMyapp],
    ),
    (
        "com.wgljd",
        "ramnit",
        0.75,
        &[MarketId::TencentMyapp, MarketId::Market360],
    ),
    (
        "com.zoner.android.eicar",
        "eicar",
        0.74,
        &[MarketId::GooglePlay, MarketId::Wandoujia, MarketId::Pp25],
    ),
    (
        "com.zhiyun.cnhyb.activity",
        "ramnit",
        0.735,
        &[MarketId::BaiduMarket],
    ),
    ("com.fai.shuiligongcheng", "ramnit", 0.73, &[MarketId::Pp25]),
];

struct Generator {
    config: WorldConfig,
    rng: DetRng,
    forge: NameForge,
    libraries: LibCatalog,
    threat_db: ThreatDb,
    permmap: PermissionMap,
    developers: Vec<Developer>,
    apps: Vec<App>,
    listings: Vec<Listing>,
    per_market: Vec<Vec<ListingId>>,
    ground_truth: GroundTruth,
    /// (market index, package) pairs already listed — a market never
    /// hosts two apps with the same package.
    market_packages: HashSet<(usize, String)>,
    /// Original apps per market (victim pools for clones).
    originals_by_market: Vec<Vec<AppId>>,
    /// Popular originals (fake victims need a >1M-install official app).
    popular_apps: Vec<AppId>,
    /// Apps already victimized by a signature clone (repackagers pile on
    /// the same popular targets — the paper's com.dino example has 11
    /// distinct cloner keys).
    sig_victims: Vec<AppId>,
    /// Apps already victimized by a code clone (same piling-on effect).
    code_victims: Vec<AppId>,
    /// Developer pools by region for reuse.
    dev_pool_gp: Vec<DevId>,
    dev_pool_cn: Vec<DevId>,
    dev_pool_both: Vec<DevId>,
    /// Cached per-library-use permission sets.
    lib_perm_cache: HashMap<LibUse, BTreeSet<&'static str>>,
}

impl Generator {
    fn new(config: WorldConfig) -> Self {
        let root = DetRng::new(config.seed);
        let libraries = LibCatalog::generate(&root, 150);
        Generator {
            forge: NameForge::new(root.derive("names")),
            rng: root.derive("generator"),
            libraries,
            threat_db: ThreatDb::standard(),
            permmap: PermissionMap::standard(),
            developers: Vec::new(),
            apps: Vec::new(),
            listings: Vec::new(),
            per_market: vec![Vec::new(); 17],
            ground_truth: GroundTruth::default(),
            market_packages: HashSet::new(),
            originals_by_market: vec![Vec::new(); 17],
            popular_apps: Vec::new(),
            sig_victims: Vec::new(),
            code_victims: Vec::new(),
            dev_pool_gp: Vec::new(),
            dev_pool_cn: Vec::new(),
            dev_pool_both: Vec::new(),
            lib_perm_cache: HashMap::new(),
            config,
        }
    }

    fn run(mut self) -> World {
        let scale = self.config.scale;
        // Per-market quota split: originals vs reserved misbehaviour.
        let mut base_quota = [0usize; 17];
        for p in all_profiles() {
            let quota = scale.catalog(p.id);
            let reserved = (quota as f64
                * (p.fake_rate + 0.75 * (p.sig_clone_rate + p.code_clone_rate)))
                .round() as usize;
            base_quota[p.id.index()] = quota.saturating_sub(reserved).max(4);
        }
        self.generate_originals(&base_quota);
        self.plant_fakes_and_clones(scale);
        self.plant_malware(scale);
        self.plant_specials();
        self.apply_removal();
        World {
            seed: self.config.seed,
            scale,
            libraries: self.libraries,
            threat_db: self.threat_db,
            developers: self.developers,
            apps: self.apps,
            listings: self.listings,
            ground_truth: self.ground_truth,
            per_market: self.per_market,
        }
    }

    // ----- phase 1: originals ------------------------------------------

    fn generate_originals(&mut self, base_quota: &[usize; 17]) {
        // Single-store apps first.
        for m in MarketId::ALL {
            let p = profile(m);
            let singles = (base_quota[m.index()] as f64 * p.single_store_share).round() as usize;
            for _ in 0..singles {
                // Popularity is a global *quantile*: keep it uniform so
                // downstream quantile-coupled draws (downloads, ratings)
                // reproduce each market's marginal distributions.
                let pop = self.rng.unit();
                self.create_original(m, vec![m], pop);
            }
        }
        // Multi-store apps until quotas drain.
        let mut remaining: Vec<usize> = MarketId::ALL
            .iter()
            .map(|m| {
                let p = profile(*m);
                base_quota[m.index()]
                    - ((base_quota[m.index()] as f64 * p.single_store_share).round() as usize)
            })
            .collect();
        let mut guard = 0usize;
        while remaining.iter().sum::<usize>() > 0 && guard < 10_000_000 {
            guard += 1;
            let weights: Vec<f64> = remaining.iter().map(|&r| r as f64).collect();
            if weights.iter().sum::<f64>() <= 0.0 {
                break;
            }
            let home_idx = WeightedIndex::new(&weights).sample(&mut self.rng);
            let home = MarketId::ALL[home_idx];
            let pop = self.rng.unit();
            let markets = self.choose_market_set(home, pop, &remaining);
            for m in &markets {
                remaining[m.index()] = remaining[m.index()].saturating_sub(1);
            }
            self.create_original(home, markets, pop);
        }
    }

    /// Choose the market set for a multi-store app: reach grows with
    /// popularity; Chinese-homed apps cluster within Chinese stores and
    /// cross into Google Play ~25% of the time (Section 5.2).
    fn choose_market_set(
        &mut self,
        home: MarketId,
        pop: f64,
        remaining: &[usize],
    ) -> Vec<MarketId> {
        let mut set = vec![home];
        let extra_cap = if pop > 0.97 {
            16
        } else if pop > 0.85 {
            7
        } else {
            3
        };
        let extra = 1 + self.rng.index(extra_cap);
        let include_gp = home != MarketId::GooglePlay && self.rng.chance(0.25);
        if include_gp && remaining[MarketId::GooglePlay.index()] > 0 {
            set.push(MarketId::GooglePlay);
        }
        let mut guard = 0;
        while set.len() < 1 + extra && guard < 64 {
            guard += 1;
            let weights: Vec<f64> = MarketId::ALL
                .iter()
                .map(|m| {
                    // GP inclusion was decided above, so it is excluded
                    // here alongside exhausted and already-chosen markets.
                    if set.contains(m) || remaining[m.index()] == 0 || *m == MarketId::GooglePlay {
                        0.0
                    } else {
                        remaining[m.index()] as f64
                    }
                })
                .collect();
            if weights.iter().sum::<f64>() <= 0.0 {
                break;
            }
            let idx = WeightedIndex::new(&weights).sample(&mut self.rng);
            set.push(MarketId::ALL[idx]);
        }
        set
    }

    fn create_original(&mut self, home: MarketId, markets: Vec<MarketId>, pop: f64) -> AppId {
        let package = self.forge.package();
        let label = self.forge.label(0.12);
        let category = self.sample_category(home);
        let (base_date, min_sdk) = self.sample_date_and_sdk(home);
        let version_count = self.sample_version_count();
        let libs = self.sample_libs(home);
        let own_code_seed = self
            .rng
            .derive_indexed("own-code", self.apps.len() as u64)
            .seed();
        let own_class_count = 16 + self.rng.index(32) as u32;
        let developer = self.pick_developer(&markets);
        let leak = self.sample_leak(home, &libs, self.apps.len() as u64);
        let mut app = App {
            package: PackageName::new(&package)
                .unwrap_or_else(|_| unreachable!("forge emits valid packages")),
            label,
            developer,
            category,
            popularity: pop,
            base_date,
            min_sdk,
            version_count,
            libs,
            own_code_seed,
            own_package: package.clone(),
            own_class_count,
            code_mutation: None,
            declared_permissions: Vec::new(),
            leak,
            infection: None,
            provenance: Provenance::Original,
        };
        app.declared_permissions = self.compute_permissions(&app, home);
        let id = AppId(self.apps.len() as u32);
        self.apps.push(app);
        if pop > 0.95 {
            self.popular_apps.push(id);
        }
        for m in markets {
            self.add_listing(m, id);
            self.originals_by_market[m.index()].push(id);
        }
        id
    }

    fn sample_category(&mut self, home: MarketId) -> Category {
        let table: &[(Category, f64)] = if home.kind() == MarketKind::Vendor {
            &VENDOR_CATEGORY_WEIGHTS
        } else {
            &CATEGORY_WEIGHTS
        };
        let weights: Vec<f64> = table.iter().map(|(_, w)| *w).collect();
        table[WeightedIndex::new(&weights).sample(&mut self.rng)].0
    }

    fn sample_date_and_sdk(&mut self, home: MarketId) -> (SimDate, u8) {
        let p = profile(home);
        let crawl = SimDate::FIRST_CRAWL;
        let u = self.rng.unit();
        let date = if u < p.old_release_share {
            // 2010 .. end of 2016.
            let lo = SimDate::from_ymd_const(2010, 1, 1).days();
            let hi = SimDate::from_ymd_const(2016, 12, 31).days();
            SimDate::from_days(self.rng.range_u64(0, (hi - lo) as u64 + 1) as i64 + lo)
                .unwrap_or_else(|_| unreachable!("2010..2016 days are in range"))
        } else if u < p.old_release_share + p.fresh_release_share {
            crawl.plus_days(-(self.rng.index(180) as i64))
        } else {
            let lo = SimDate::from_ymd_const(2017, 1, 1).days();
            let hi = crawl.plus_days(-180).days();
            SimDate::from_days(self.rng.range_u64(0, (hi - lo).max(1) as u64) as i64 + lo)
                .unwrap_or_else(|_| unreachable!("2017..crawl days are in range"))
        };
        let is_old = date.year() < 2017;
        // Condition low-API on age so the Figure 3 share lands at the
        // profile's target: P(low) = P(low|old)·P(old).
        let p_low_given_old = (p.low_api_share / p.old_release_share.max(0.05)).min(1.0);
        let min_sdk = if is_old && self.rng.chance(p_low_given_old) {
            *self.rng.pick(&[4u8, 5, 6, 7, 7, 8, 8, 8])
        } else if is_old {
            *self.rng.pick(&[9u8, 9, 10, 11, 14, 15, 16])
        } else {
            *self.rng.pick(&[9u8, 14, 16, 19, 19, 21, 21, 23])
        };
        (date, min_sdk)
    }

    fn sample_version_count(&mut self) -> u32 {
        // Figure 8(a): ~86% of package clusters carry one version; the
        // tail reaches 14.
        if self.rng.chance(0.86) {
            1
        } else {
            2 + self.rng.index(13).min(12) as u32
        }
    }

    fn sample_libs(&mut self, home: MarketId) -> Vec<LibUse> {
        let p = profile(home);
        if !self.rng.chance(p.tpl_presence) {
            return Vec::new();
        }
        let is_gp = home == MarketId::GooglePlay;
        let mut out = Vec::new();
        // Head libraries by their Table 2 adoption probabilities.
        for (i, spec) in self.libraries.head().iter().enumerate() {
            let pr = if is_gp {
                spec.adoption.google_play
            } else {
                spec.adoption.chinese
            };
            if self.rng.chance(pr) {
                let version = recent_version(&mut self.rng, spec.versions);
                out.push(LibUse {
                    lib: crate::libs::LibId(i as u32),
                    version,
                });
            }
        }
        // Fill toward the market's average library count from the tail,
        // sampling by relative adoption weight. The tail must stay
        // individually below the Table 2 head: no small SDK may out-rank
        // AdMob or WeChat in the recovered Table 2.
        let target = (p.avg_tpls * (0.5 + self.rng.unit())) as usize;
        let head_len = self.libraries.head().len();
        let weights: Vec<f64> = self.libraries.specs()[head_len..]
            .iter()
            .map(|s| {
                if is_gp {
                    s.adoption.google_play
                } else {
                    s.adoption.chinese
                }
            })
            .collect();
        let index = WeightedIndex::new(&weights);
        let mut guard = 0;
        while out.len() < target && guard < 200 {
            guard += 1;
            let idx = head_len + index.sample(&mut self.rng);
            let id = crate::libs::LibId(idx as u32);
            if out.iter().any(|u| u.lib == id) {
                continue;
            }
            let spec = &self.libraries.specs()[idx];
            let version = recent_version(&mut self.rng, spec.versions);
            out.push(LibUse { lib: id, version });
        }
        out
    }

    fn pick_developer(&mut self, markets: &[MarketId]) -> DevId {
        let has_gp = markets.contains(&MarketId::GooglePlay);
        let has_cn = markets.iter().any(|m| m.is_chinese());
        // Reuse probabilities tuned to Section 5.1: >50% of developers
        // appear on Google Play, 57% of those nowhere else, and ~48% of
        // all developers are Chinese-market-only. Cross-pool reuse is what
        // creates developers spanning both worlds.
        let choice = self.rng.unit();
        let pick_from = |pool: &[DevId], rng: &mut marketscope_core::rng::DetRng| {
            if pool.is_empty() {
                None
            } else {
                Some(pool[rng.index(pool.len())])
            }
        };
        let reused = match (has_gp, has_cn) {
            (true, false) => {
                if choice < 0.30 {
                    pick_from(&self.dev_pool_gp, &mut self.rng)
                } else if choice < 0.38 {
                    pick_from(&self.dev_pool_both, &mut self.rng)
                } else {
                    None
                }
            }
            (false, true) => {
                // A tenth of Chinese-market releases come from developers
                // already publishing (other apps) on Google Play — few
                // single apps span both worlds, but many *developers* do.
                if choice < 0.45 {
                    pick_from(&self.dev_pool_cn, &mut self.rng)
                } else if choice < 0.53 {
                    pick_from(&self.dev_pool_both, &mut self.rng)
                } else if choice < 0.75 {
                    pick_from(&self.dev_pool_gp, &mut self.rng)
                } else {
                    None
                }
            }
            _ => {
                // Apps spanning both worlds frequently come from
                // developers first seen on one side — this is what pulls
                // the GP-only share down toward the paper's 57%.
                if choice < 0.20 {
                    pick_from(&self.dev_pool_both, &mut self.rng)
                } else if choice < 0.52 {
                    pick_from(&self.dev_pool_gp, &mut self.rng)
                } else if choice < 0.80 {
                    pick_from(&self.dev_pool_cn, &mut self.rng)
                } else {
                    None
                }
            }
        };
        if let Some(id) = reused {
            return id;
        }
        let id = self.new_developer();
        match (has_gp, has_cn) {
            (true, false) => self.dev_pool_gp.push(id),
            (false, true) => self.dev_pool_cn.push(id),
            _ => self.dev_pool_both.push(id),
        }
        id
    }

    fn new_developer(&mut self) -> DevId {
        let label = format!("dev-{:06}", self.developers.len());
        let key = DeveloperKey::from_label(&label);
        let display_name = self.forge.developer_name();
        let id = DevId(self.developers.len() as u32);
        self.developers.push(Developer {
            label,
            key,
            display_name,
        });
        id
    }

    /// Decide whether this original leaks private data, and how.
    ///
    /// The decision runs on an independent per-app stream
    /// (`derive_indexed`) so adding the leak layer never perturbs the
    /// main generation stream. Device identifiers dominate the source
    /// mix (the paper's IMEI-centric leak reports) and most flows
    /// exfiltrate over the network; the rest land in logs. The sink
    /// sits in third-party-library code with probability
    /// `leak_tpl_share` — only possible when the app bundles one.
    fn sample_leak(
        &mut self,
        home: MarketId,
        libs: &[LibUse],
        app_index: u64,
    ) -> Option<PlantedLeak> {
        let mut r = self.rng.derive_indexed("leak", app_index);
        if !r.chance(profile(home).leak_rate) {
            return None;
        }
        let source_class = if r.chance(0.55) {
            SourceClass::DeviceId
        } else {
            *r.pick(&[
                SourceClass::Location,
                SourceClass::Contacts,
                SourceClass::Account,
            ])
        };
        let sink_class = if r.chance(0.8) {
            SinkClass::NetworkSend
        } else {
            SinkClass::LogExfil
        };
        let sources = self.permmap.source_apis(source_class);
        let sinks = self.permmap.sink_apis(sink_class);
        let source = sources[r.index(sources.len())];
        let sink = sinks[r.index(sinks.len())];
        let via_tpl = !libs.is_empty() && r.chance(self.config.leak_tpl_share);
        Some(PlantedLeak {
            source,
            sink,
            via_tpl,
        })
    }

    fn compute_permissions(&mut self, app: &App, home: MarketId) -> Vec<String> {
        // Used permissions: own code + every embedded library.
        let own = own_classes(
            app.own_code_seed,
            &app.own_package,
            app.own_class_count,
            app.version_count,
            app.code_mutation,
        );
        let mut used: BTreeSet<&'static str> = self
            .permmap
            .used_permissions(
                own.iter()
                    .flat_map(|c| c.methods.iter())
                    .flat_map(|m| m.api_calls.iter().copied()),
            )
            .into_iter()
            .map(|p| p.0)
            .collect();
        for lu in &app.libs {
            let cached = match self.lib_perm_cache.get(lu) {
                Some(c) => c.clone(),
                None => {
                    let classes = self.libraries.classes_for(*lu);
                    let set: BTreeSet<&'static str> = self
                        .permmap
                        .used_permissions(
                            classes
                                .iter()
                                .flat_map(|c| c.methods.iter())
                                .flat_map(|m| m.api_calls.iter().copied()),
                        )
                        .into_iter()
                        .map(|p| p.0)
                        .collect();
                    self.lib_perm_cache.insert(*lu, set.clone());
                    set
                }
            };
            used.extend(cached);
        }
        // The planted leak's calls are real uses: declare their
        // permissions so leaky apps don't read as under-declared.
        if let Some(leak) = app.leak {
            used.extend(
                self.permmap
                    .used_permissions([leak.source, leak.sink].into_iter())
                    .into_iter()
                    .map(|p| p.0),
            );
        }
        // Over-privilege extras (Figure 11).
        let p = profile(home);
        let overprivileged = if home == MarketId::GooglePlay {
            self.rng.chance(0.65)
        } else {
            self.rng.chance(0.82)
        };
        let _ = p;
        let mut declared: Vec<String> = used.iter().map(|s| (*s).to_owned()).collect();
        if overprivileged {
            let count = WeightedIndex::new(&EXTRA_PERM_WEIGHTS)
                .sample(&mut self.rng)
                .max(1);
            let unused: Vec<&'static str> = PERMISSIONS
                .iter()
                .copied()
                .filter(|p| !used.contains(p))
                .collect();
            let mut weights: Vec<f64> = unused
                .iter()
                .map(|p| match *p {
                    // The paper's most over-requested permissions.
                    "android.permission.READ_PHONE_STATE" => 3.0,
                    "android.permission.ACCESS_COARSE_LOCATION" => 2.0,
                    "android.permission.ACCESS_FINE_LOCATION" => 2.0,
                    "android.permission.CAMERA" => 1.5,
                    _ => 1.0,
                })
                .collect();
            for _ in 0..count.min(unused.len()) {
                if weights.iter().sum::<f64>() <= 0.0 {
                    break;
                }
                let idx = WeightedIndex::new(&weights).sample(&mut self.rng);
                declared.push(unused[idx].to_owned());
                weights[idx] = 0.0;
            }
        }
        declared.sort();
        declared.dedup();
        declared
    }

    // ----- listings -----------------------------------------------------

    fn add_listing(&mut self, market: MarketId, app_id: AppId) -> Option<ListingId> {
        let pkg = self.apps[app_id.0 as usize].package.as_str().to_owned();
        if !self.market_packages.insert((market.index(), pkg)) {
            return None; // market already lists this package
        }
        let p = profile(market);
        let app = &self.apps[app_id.0 as usize];
        let (app_versions, app_pop, app_date) = (app.version_count, app.popularity, app.base_date);
        // Version skew (Figure 9): single-version apps are trivially
        // current; multi-version apps are outdated here with the market's
        // complement probability.
        let version = if app_versions == 1 || self.rng.chance(p.up_to_date_share) {
            app_versions
        } else {
            1 + self.rng.index(app_versions as usize - 1) as u32
        };
        let downloads = self.sample_downloads(p, app_pop);
        let rating = self.sample_rating(p, app_pop, market);
        let updated = if version == app_versions {
            app_date
        } else {
            let lag = 40 * (app_versions - version) as i64 + self.rng.index(60) as i64;
            let d = app_date.plus_days(-lag);
            let floor = SimDate::from_ymd_const(2009, 1, 1);
            if d < floor {
                floor
            } else {
                d
            }
        };
        let raw_category = if self.rng.chance(p.junk_category_share) {
            (*self.rng.pick(&JUNK_CATEGORIES)).to_owned()
        } else {
            self.apps[app_id.0 as usize].category.label().to_owned()
        };
        let listing = Listing {
            market,
            app: app_id,
            version,
            downloads,
            rating,
            updated,
            raw_category,
            removed_in_second_crawl: false,
        };
        let id = ListingId(self.listings.len() as u32);
        self.listings.push(listing);
        self.per_market[market.index()].push(id);
        Some(id)
    }

    fn sample_downloads(&mut self, p: &MarketProfile, popularity: f64) -> Option<u64> {
        if !p.reports_installs {
            return None;
        }
        // Quantile-coupled bucket draw: the app's global popularity plus
        // noise is pushed through the market's Figure 2 inverse CDF, so
        // each market's bucket distribution matches its profile while an
        // app stays consistently popular (or not) across stores.
        let noise = (self.rng.unit() - 0.5) * 0.24;
        let q = (popularity + noise).clamp(0.0, 0.999_999);
        let mut acc = 0.0;
        let mut bucket = 6usize;
        let total: f64 = p.download_dist.iter().sum();
        for (i, share) in p.download_dist.iter().enumerate() {
            acc += share / total;
            if q < acc {
                bucket = i;
                break;
            }
        }
        let range = marketscope_core::InstallRange::ALL[bucket];
        let lo = range.lower_bound().max(1);
        let value = match range.upper_bound() {
            Some(hi) => {
                // Log-uniform within the bucket.
                let u = self.rng.unit();
                let v = (lo as f64) * ((hi as f64 / lo as f64).powf(u));
                (v as u64).clamp(range.lower_bound(), hi - 1)
            }
            None => {
                // Heavy Pareto tail above 1M: the top 0.1% of apps must
                // carry the bulk of total downloads (Section 4.2).
                marketscope_core::rng::pareto_u64(&mut self.rng, 1.0e6, 0.5, 5_000_000_000)
            }
        };
        Some(value)
    }

    fn sample_rating(&mut self, p: &MarketProfile, popularity: f64, market: MarketId) -> f64 {
        // Unpopular apps go unrated; couple to popularity with noise.
        let q = (popularity + (self.rng.unit() - 0.5) * 0.3).clamp(0.0, 1.0);
        if q < p.unrated_share {
            return p.default_rating;
        }
        let r = if market == MarketId::GooglePlay {
            // >50% of rated GP apps sit above 4.
            3.0 + 2.0 * self.rng.unit().powf(0.6)
        } else {
            1.5 + 3.5 * self.rng.unit().powf(0.9)
        };
        (r.min(5.0) * 10.0).round() / 10.0
    }

    // ----- phase 2: fakes and clones ------------------------------------

    fn plant_fakes_and_clones(&mut self, scale: Scale) {
        for m in MarketId::ALL {
            let p = profile(m);
            let quota = scale.catalog(m);
            // At tiny scales a nonzero paper rate must still plant at
            // least one specimen, or rate-recovery tests lose the signal.
            let at_least_one = |x: f64| {
                if x > 0.0 {
                    (x.round() as usize).max(1)
                } else {
                    0
                }
            };
            // Calibration: the detectors count *both* sides of a clone
            // relation, and victims spread across markets; planting at
            // roughly half (SB) / 85% (CB) of the paper's rate makes the
            // *measured* rates land on Table 3.
            let fakes = at_least_one(quota as f64 * p.fake_rate);
            let sigs = at_least_one(quota as f64 * p.sig_clone_rate * 0.5);
            let codes = at_least_one(quota as f64 * p.code_clone_rate * 0.6);
            for _ in 0..fakes {
                self.plant_fake(m);
            }
            for _ in 0..sigs {
                self.plant_sig_clone(m);
            }
            for _ in 0..codes {
                self.plant_code_clone(m);
            }
        }
    }

    fn plant_fake(&mut self, market: MarketId) {
        let Some(&victim) = pick_opt(&mut self.rng, &self.popular_apps) else {
            return;
        };
        let v = &self.apps[victim.0 as usize];
        let label = v.label.clone();
        let category = v.category;
        let package = self.forge.package();
        let (base_date, min_sdk) = self.sample_date_and_sdk(market);
        let developer = self.new_developer();
        let own_code_seed = self
            .rng
            .derive_indexed("fake-code", self.apps.len() as u64)
            .seed();
        let mut app = App {
            package: PackageName::new(&package)
                .unwrap_or_else(|_| unreachable!("forge emits valid packages")),
            label,
            developer,
            category,
            popularity: 0.02 + self.rng.unit() * 0.05,
            base_date,
            min_sdk,
            version_count: 1,
            libs: self.sample_libs(market),
            own_code_seed,
            own_package: package,
            own_class_count: 4 + self.rng.index(8) as u32,
            code_mutation: None,
            declared_permissions: Vec::new(),
            leak: None,
            infection: None,
            provenance: Provenance::Fake { of: victim },
        };
        app.declared_permissions = self.compute_permissions(&app, market);
        let id = AppId(self.apps.len() as u32);
        self.apps.push(app);
        if self.add_listing(market, id).is_some() {
            // Fakes must sit below the heuristic's 1,000-install bar.
            if let Some(l) = self.per_market[market.index()].last() {
                let lst = &mut self.listings[l.0 as usize];
                if lst.downloads.is_some() {
                    lst.downloads = Some(self.rng.range_u64(0, 900));
                }
                lst.rating = profile(market).default_rating;
            }
            self.ground_truth.fakes[market.index()] += 1;
        }
    }

    /// Victim-market mix for clones (Figure 10): Google Play is the
    /// premier source; intra-market cloning is also common.
    fn pick_clone_victim(&mut self, dest: MarketId) -> Option<AppId> {
        for _ in 0..12 {
            let u = self.rng.unit();
            let origin = if u < 0.35 {
                MarketId::GooglePlay
            } else if u < 0.65 {
                dest
            } else {
                let weights: Vec<f64> = MarketId::ALL
                    .iter()
                    .map(|m| {
                        if m.is_chinese() {
                            self.originals_by_market[m.index()].len() as f64
                        } else {
                            0.0
                        }
                    })
                    .collect();
                if weights.iter().sum::<f64>() <= 0.0 {
                    continue;
                }
                MarketId::ALL[WeightedIndex::new(&weights).sample(&mut self.rng)]
            };
            let pool = &self.originals_by_market[origin.index()];
            if pool.is_empty() {
                continue;
            }
            // Popularity-biased victim choice: clone what users search for.
            let idx = self.rng.index(pool.len());
            let cand = pool[idx];
            if self.apps[cand.0 as usize].popularity > 0.3 || self.rng.chance(0.3) {
                return Some(cand);
            }
        }
        None
    }

    fn plant_sig_clone(&mut self, market: MarketId) {
        for _ in 0..8 {
            // Re-victimize an already-cloned app 60% of the time: the
            // per-market clone rate then grows without linearly growing
            // the victim-side spread across markets.
            let victim = if !self.sig_victims.is_empty() && self.rng.chance(0.6) {
                self.sig_victims[self.rng.index(self.sig_victims.len())]
            } else {
                match self.pick_clone_victim(market) {
                    Some(v) => v,
                    None => return,
                }
            };
            let v = self.apps[victim.0 as usize].clone();
            // A market cannot host two apps with one package: skip victims
            // already listed in `market` under this package.
            if self
                .market_packages
                .contains(&(market.index(), v.package.as_str().to_owned()))
            {
                continue;
            }
            let developer = self.new_developer();
            let mut app = App {
                package: v.package.clone(),
                label: v.label.clone(),
                developer,
                category: v.category,
                popularity: v.popularity * (0.2 + 0.4 * self.rng.unit()),
                base_date: v.base_date,
                min_sdk: v.min_sdk,
                version_count: v.version_count,
                libs: v.libs.clone(),
                own_code_seed: v.own_code_seed,
                own_package: v.own_package.clone(),
                own_class_count: v.own_class_count,
                code_mutation: Some(
                    self.rng
                        .derive_indexed("sigmut", self.apps.len() as u64)
                        .seed(),
                ),
                declared_permissions: Vec::new(),
                leak: None,
                infection: None,
                provenance: Provenance::SigClone { of: victim },
            };
            app.declared_permissions = self.compute_permissions(&app, market);
            let id = AppId(self.apps.len() as u32);
            self.apps.push(app);
            if self.add_listing(market, id).is_some() {
                self.ground_truth.sig_clones[market.index()] += 1;
                self.sig_victims.push(victim);
            }
            return;
        }
    }

    fn plant_code_clone(&mut self, market: MarketId) {
        // Repackagers pile onto the same attractive victims: 70% of code
        // clones re-target an already-cloned app. Without this the victim
        // population grows linearly with scale and its cross-market
        // spread inflates every market's measured clone rate.
        let victim = if !self.code_victims.is_empty() && self.rng.chance(0.7) {
            self.code_victims[self.rng.index(self.code_victims.len())]
        } else {
            match self.pick_clone_victim(market) {
                Some(v) => v,
                None => return,
            }
        };
        let v = self.apps[victim.0 as usize].clone();
        let package = self.forge.repackage_of(v.package.as_str());
        let developer = self.new_developer();
        let label = if self.rng.chance(0.5) {
            v.label.clone()
        } else {
            format!("{} Free", v.label)
        };
        let mut app = App {
            package: PackageName::new(&package)
                .unwrap_or_else(|_| unreachable!("forge emits valid packages")),
            label,
            developer,
            category: v.category,
            popularity: v.popularity * (0.1 + 0.4 * self.rng.unit()),
            base_date: v.base_date,
            min_sdk: v.min_sdk,
            // Repackagers work from the victim's current release; matching
            // the version keeps the shared code segments aligned.
            version_count: v.version_count,
            libs: v.libs.clone(),
            own_code_seed: v.own_code_seed,
            own_package: package.clone(),
            own_class_count: v.own_class_count,
            code_mutation: Some(
                self.rng
                    .derive_indexed("cbmut", self.apps.len() as u64)
                    .seed(),
            ),
            declared_permissions: Vec::new(),
            leak: None,
            infection: None,
            provenance: Provenance::CodeClone { of: victim },
        };
        app.declared_permissions = self.compute_permissions(&app, market);
        let id = AppId(self.apps.len() as u32);
        self.apps.push(app);
        if self.add_listing(market, id).is_some() {
            self.ground_truth.code_clones[market.index()] += 1;
            self.code_victims.push(victim);
        }
    }

    // ----- phase 3: malware ----------------------------------------------

    fn plant_malware(&mut self, scale: Scale) {
        // Process markets by ascending malware rate: the clean markets
        // (Google Play first) plant their few, region-typical infections
        // before cross-market spillover from the dirty markets can fill
        // their quotas with foreign families.
        let mut order: Vec<MarketId> = MarketId::ALL.to_vec();
        order.sort_by(|a, b| {
            profile(*a)
                .av10_rate
                .partial_cmp(&profile(*b).av10_rate)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for tier_pass in [ThreatTier::Malware, ThreatTier::Grayware] {
            for &m in &order {
                let p = profile(m);
                let quota = scale.catalog(m);
                let target = match tier_pass {
                    ThreatTier::Malware => (quota as f64 * p.av10_rate).round() as usize,
                    // Grayware also spreads through multi-market apps;
                    // plant slightly under target to land on Table 4's
                    // ≥1 column after the spill.
                    _ => (quota as f64 * (p.av1_rate - p.av10_rate) * 0.85).round() as usize,
                };
                let current = self.infected_in_market(m, tier_pass);
                let needed = target.saturating_sub(current);
                self.infect_in_market(m, tier_pass, needed);
            }
        }
    }

    fn infected_in_market(&self, m: MarketId, tier: ThreatTier) -> usize {
        self.per_market[m.index()]
            .iter()
            .filter(|l| {
                let app = &self.apps[self.listings[l.0 as usize].app.0 as usize];
                match app.infection {
                    Some(inf) => match tier {
                        ThreatTier::Grayware => inf.tier == ThreatTier::Grayware,
                        _ => inf.tier != ThreatTier::Grayware,
                    },
                    None => false,
                }
            })
            .count()
    }

    fn infect_in_market(&mut self, m: MarketId, tier: ThreatTier, needed: usize) {
        if needed == 0 {
            return;
        }
        let m_self = m;
        // Candidates: uninfected apps listed in m, cheapest collateral
        // first (fewest other listings), clones preferred for malware
        // (38.3% of the paper's malware is repackaged).
        let mut listing_count: HashMap<AppId, usize> = HashMap::new();
        for l in &self.listings {
            *listing_count.entry(l.app).or_insert(0) += 1;
        }
        let mut candidates: Vec<AppId> = self.per_market[m.index()]
            .iter()
            .map(|l| self.listings[l.0 as usize].app)
            .filter(|a| self.apps[a.0 as usize].infection.is_none())
            .collect();
        candidates.sort_by_key(|a| a.0);
        candidates.dedup();
        // Vetting coupling: an app listed in a strictly-vetted store
        // (Google Play, Huawei, Lenovo...) would have been caught there,
        // so infections avoid such apps — that selection effect, not
        // random chance, is what keeps the clean stores clean while they
        // share catalogs with the dirty ones.
        let mut app_markets: HashMap<AppId, Vec<MarketId>> = HashMap::new();
        for l in &self.listings {
            app_markets.entry(l.app).or_default().push(l.market);
        }
        let mut scored: Vec<(f64, AppId)> = candidates
            .into_iter()
            .map(|a| {
                let is_clone = !matches!(self.apps[a.0 as usize].provenance, Provenance::Original);
                let spread = listing_count.get(&a).copied().unwrap_or(1) as f64;
                // Prefer clones for malware, but only enough that ~38% of
                // the malware population ends up repackaged (Section 6.4).
                let clone_bonus =
                    if is_clone && tier == ThreatTier::Malware && self.rng.chance(0.05) {
                        -2.0
                    } else {
                        0.0
                    };
                let vet_penalty: f64 = app_markets
                    .get(&a)
                    .map(|ms| {
                        ms.iter()
                            .filter(|m| **m != m_self)
                            .map(|m| (0.14 - profile(*m).av10_rate).max(0.0) * 40.0)
                            .sum()
                    })
                    .unwrap_or(0.0);
                (
                    spread + clone_bonus + vet_penalty + self.rng.unit() * 1.5,
                    a,
                )
            })
            .collect();
        scored.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap_or(std::cmp::Ordering::Equal));
        // A second ordering for *spread* infections: widely published in
        // the lax markets, never touching the strictly-vetted ones.
        // Section 7 finds 11,623 Google Play malware samples also hosted
        // by Chinese stores (the GPRM overlap), so Google Play's pass
        // draws from this list almost half the time.
        let mut spread_order: Vec<AppId> = scored
            .iter()
            .map(|(_, a)| *a)
            .filter(|a| {
                app_markets.get(a).is_some_and(|ms| {
                    ms.iter()
                        .all(|m2| *m2 == m_self || profile(*m2).av10_rate >= 0.08)
                        && ms.len() >= 2
                })
            })
            .collect();
        spread_order.sort_by_key(|a| std::cmp::Reverse(app_markets.get(a).map_or(0, Vec::len)));
        let spread_p = if m == MarketId::GooglePlay {
            0.45
        } else {
            0.04
        };
        let mut infected = 0usize;
        let mut cursor = 0usize;
        let mut spread_cursor = 0usize;
        while infected < needed && cursor < scored.len() {
            let app_id = if self.rng.chance(spread_p) && spread_cursor < spread_order.len() {
                let a = spread_order[spread_cursor];
                spread_cursor += 1;
                a
            } else {
                let a = scored[cursor].1;
                cursor += 1;
                a
            };
            if self.apps[app_id.0 as usize].infection.is_some() {
                continue; // already taken by the other ordering
            }
            let family = self.pick_family(m);
            let detectability = Infection::sample_detectability(tier, self.rng.unit());
            self.apps[app_id.0 as usize].infection = Some(Infection {
                family,
                tier,
                detectability,
            });
            infected += 1;
        }
        // Ground truth per market is tallied later in one recount pass,
        // because infections spill across markets.
    }

    fn pick_family(&mut self, m: MarketId) -> crate::threat::FamilyId {
        let is_gp = m == MarketId::GooglePlay;
        let weights: Vec<f64> = FAMILIES
            .iter()
            .map(|f| {
                if f.tier == ThreatTier::Benchmark {
                    return 0.0;
                }
                match f.region {
                    FamilyRegion::GooglePlay => {
                        if is_gp {
                            f.weight
                        } else {
                            f.weight * 0.02
                        }
                    }
                    FamilyRegion::Chinese => {
                        if is_gp {
                            f.weight * 0.05
                        } else {
                            f.weight
                        }
                    }
                    FamilyRegion::Both => f.weight,
                }
            })
            .collect();
        crate::threat::FamilyId(WeightedIndex::new(&weights).sample(&mut self.rng) as u16)
    }

    // ----- phase 4: Table 5 specials -------------------------------------

    fn plant_specials(&mut self) {
        for (pkg, family_name, detectability, markets) in SPECIALS {
            let family = self
                .threat_db
                .family_by_name(family_name)
                .unwrap_or_else(|| unreachable!("SPECIALS families exist in the threat db"));
            let tier = self.threat_db.family(family).tier;
            let developer = self.new_developer();
            let own_code_seed = self
                .rng
                .derive_indexed("special", self.apps.len() as u64)
                .seed();
            let (base_date, min_sdk) = self.sample_date_and_sdk(markets[0]);
            let mut app = App {
                package: PackageName::new(pkg)
                    .unwrap_or_else(|_| unreachable!("table 5 packages are valid")),
                label: pkg.rsplit('.').next().unwrap_or("app").to_owned(),
                developer,
                category: Category::Tools,
                popularity: 0.3,
                base_date,
                min_sdk,
                version_count: 1,
                libs: Vec::new(),
                own_code_seed,
                own_package: pkg.to_owned(),
                own_class_count: 6,
                code_mutation: None,
                declared_permissions: Vec::new(),
                leak: None,
                infection: Some(Infection {
                    family,
                    tier,
                    detectability,
                }),
                provenance: Provenance::Original,
            };
            app.declared_permissions = self.compute_permissions(&app, markets[0]);
            let id = AppId(self.apps.len() as u32);
            self.apps.push(app);
            for m in markets {
                self.add_listing(*m, id);
            }
        }
    }

    // ----- phase 5: removal ----------------------------------------------

    fn apply_removal(&mut self) {
        // Recount ground truth (infections spread across markets) and
        // apply Table 6 removal rates to malware-tier listings.
        for i in 0..self.listings.len() {
            let market = self.listings[i].market;
            let app = &self.apps[self.listings[i].app.0 as usize];
            let p = profile(market);
            match app.infection {
                Some(inf) if inf.tier == ThreatTier::Grayware => {
                    self.ground_truth.grayware[market.index()] += 1;
                }
                Some(_) => {
                    self.ground_truth.malware[market.index()] += 1;
                    let rate = p.malware_removal_rate.unwrap_or(0.0);
                    if self.rng.chance(rate) {
                        self.listings[i].removed_in_second_crawl = true;
                    }
                }
                None => {
                    // Background churn: ~1% of clean apps disappear too.
                    if self.rng.chance(0.01) {
                        self.listings[i].removed_in_second_crawl = true;
                    }
                }
            }
            if let Some(leak) = self.apps[self.listings[i].app.0 as usize].leak {
                if leak.via_tpl {
                    self.ground_truth.leaks_tpl[market.index()] += 1;
                } else {
                    self.ground_truth.leaks_host[market.index()] += 1;
                }
            }
        }
    }
}

/// Apps overwhelmingly ship one of a library's three most recent
/// versions; without this concentration, version fragmentation starves
/// the clustering detector of recurrences at small corpus scales.
fn recent_version(rng: &mut DetRng, versions: u32) -> u32 {
    let window = versions.min(3);
    versions - 1 - rng.index(window as usize) as u32
}

fn pick_opt<'a, T>(rng: &mut DetRng, items: &'a [T]) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.index(items.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_world() -> World {
        generate(WorldConfig {
            seed: 7,
            scale: Scale { divisor: 20_000 },
            ..WorldConfig::default()
        })
    }

    #[test]
    fn planted_leaks_materialize_in_digests() {
        let w = tiny_world();
        let mut checked_tpl = false;
        let mut checked_host = false;
        for (i, app) in w.apps.iter().enumerate() {
            let Some(leak) = app.leak else { continue };
            if checked_tpl && checked_host {
                break;
            }
            let bytes = w.build_apk(AppId(i as u32), app.version_count, false);
            let d = marketscope_apk::digest::ApkDigest::from_bytes(&bytes).unwrap();
            assert!(!d.flows.is_empty(), "planted leak produced no taint flow");
            if leak.via_tpl {
                let root = crate::world::leak_host_package(app, &w.libraries).unwrap();
                assert!(
                    d.flows.iter().any(|f| f
                        .sink_package
                        .as_deref()
                        .is_some_and(|p| p.starts_with(&root))),
                    "TPL leak must sink under {root}"
                );
                checked_tpl = true;
            } else {
                assert!(
                    d.flows
                        .iter()
                        .any(|f| f.sink_package.as_deref() == Some(app.own_package.as_str())),
                    "host leak must sink in own code"
                );
                checked_host = true;
            }
        }
        assert!(checked_tpl, "no TPL leak planted at this scale");
        assert!(checked_host, "no host leak planted at this scale");
    }

    #[test]
    fn ground_truth_counts_leaks_per_market() {
        let w = tiny_world();
        let host: u32 = w.ground_truth.leaks_host.iter().sum();
        let tpl: u32 = w.ground_truth.leaks_tpl.iter().sum();
        assert!(host > 0, "no host leaks tallied");
        assert!(tpl > 0, "no TPL leaks tallied");
        // The realized TPL share sits near the configured 0.4 coin;
        // library-less apps can only leak from host code, pulling it
        // below the raw rate.
        let share = f64::from(tpl) / f64::from(host + tpl);
        assert!((0.15..0.55).contains(&share), "tpl share {share}");
        // Only originals leak, so every tally row is bounded by the
        // market's listing count.
        let planted: u32 = host + tpl;
        assert!((planted as usize) < w.listing_count());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny_world();
        let b = tiny_world();
        assert_eq!(a.apps.len(), b.apps.len());
        assert_eq!(a.listings.len(), b.listings.len());
        for (x, y) in a.apps.iter().zip(&b.apps) {
            assert_eq!(x.package, y.package);
            assert_eq!(x.own_code_seed, y.own_code_seed);
        }
        // And the bytes agree.
        let apk_a = a.build_apk(AppId(0), 1, false);
        let apk_b = b.build_apk(AppId(0), 1, false);
        assert_eq!(apk_a, apk_b);
    }

    #[test]
    fn catalog_sizes_roughly_match_scale() {
        let w = tiny_world();
        for m in MarketId::ALL {
            let want = w.scale.catalog(m);
            let got = w.market_listings(m).len();
            // Tiny floor-sized markets pick up absolute spill from
            // multi-store assignment and misbehaviour floors.
            assert!(
                (got as f64) > want as f64 * 0.7 && (got as f64) < want as f64 * 1.4 + 6.0,
                "{m}: want ~{want}, got {got}"
            );
        }
    }

    #[test]
    fn google_play_is_largest_market() {
        let w = tiny_world();
        let gp = w.market_listings(MarketId::GooglePlay).len();
        for m in MarketId::chinese() {
            if m != MarketId::Pp25 {
                assert!(gp > w.market_listings(m).len(), "{m}");
            }
        }
    }

    #[test]
    fn no_market_hosts_duplicate_packages() {
        let w = tiny_world();
        for m in MarketId::ALL {
            let mut seen = HashSet::new();
            for l in w.market_listings(m) {
                let pkg = w.app(w.listing(*l).app).package.clone();
                assert!(seen.insert(pkg.as_str().to_owned()), "{m} duplicates {pkg}");
            }
        }
    }

    #[test]
    fn sig_clones_share_package_with_distinct_keys() {
        let w = tiny_world();
        let mut found = 0;
        for app in &w.apps {
            if let Provenance::SigClone { of } = app.provenance {
                let victim = w.app(of);
                assert_eq!(victim.package, app.package);
                let vk = w.developer(victim.developer).key;
                let ck = w.developer(app.developer).key;
                assert_ne!(vk, ck);
                found += 1;
            }
        }
        assert!(found > 0, "no sig clones planted");
    }

    #[test]
    fn code_clones_rename_but_reuse_code() {
        let w = tiny_world();
        let mut found = 0;
        for app in &w.apps {
            if let Provenance::CodeClone { of } = app.provenance {
                let victim = w.app(of);
                assert_ne!(victim.package, app.package);
                assert_eq!(victim.own_code_seed, app.own_code_seed);
                assert!(app.code_mutation.is_some());
                found += 1;
            }
        }
        assert!(found > 0, "no code clones planted");
    }

    #[test]
    fn fakes_mimic_popular_labels_with_low_downloads() {
        let w = tiny_world();
        let mut found = 0;
        for (i, app) in w.apps.iter().enumerate() {
            if let Provenance::Fake { of } = app.provenance {
                let victim = w.app(of);
                assert_eq!(victim.label, app.label);
                assert_ne!(victim.package, app.package);
                for l in &w.listings {
                    if l.app.0 as usize == i {
                        if let Some(d) = l.downloads {
                            assert!(d < 1000, "fake with {d} downloads");
                        }
                    }
                }
                found += 1;
            }
        }
        assert!(found > 0, "no fakes planted");
    }

    #[test]
    fn malware_rates_track_profiles() {
        let w = generate(WorldConfig {
            seed: 11,
            scale: Scale { divisor: 5_000 },
            ..WorldConfig::default()
        });
        // PC Online must be dirtier than Google Play, Huawei cleaner than
        // OPPO — the orderings Section 6.4 highlights.
        let rate = |m: MarketId| {
            let listings = w.market_listings(m);
            let mal = listings
                .iter()
                .filter(|l| {
                    w.app(w.listing(**l).app)
                        .infection
                        .is_some_and(|i| i.tier != ThreatTier::Grayware)
                })
                .count();
            mal as f64 / listings.len() as f64
        };
        assert!(rate(MarketId::PcOnline) > rate(MarketId::GooglePlay) * 3.0);
        assert!(rate(MarketId::OppoMarket) > rate(MarketId::HuaweiMarket));
    }

    #[test]
    fn specials_exist_in_their_markets() {
        let w = tiny_world();
        let eicar = w
            .apps
            .iter()
            .position(|a| a.package.as_str() == "com.zoner.android.eicar")
            .expect("eicar benchmark planted");
        let markets: Vec<MarketId> = w
            .listings
            .iter()
            .filter(|l| l.app.0 as usize == eicar)
            .map(|l| l.market)
            .collect();
        assert!(markets.contains(&MarketId::GooglePlay));
        assert!(markets.contains(&MarketId::Wandoujia));
        assert!(markets.contains(&MarketId::Pp25));
    }

    #[test]
    fn removal_follows_table6_ordering() {
        let w = generate(WorldConfig {
            seed: 3,
            scale: Scale { divisor: 2_000 },
            ..WorldConfig::default()
        });
        let removal_rate = |m: MarketId| {
            let (mut mal, mut removed) = (0usize, 0usize);
            for l in w.market_listings(m) {
                let lst = w.listing(*l);
                let infected = w
                    .app(lst.app)
                    .infection
                    .is_some_and(|i| i.tier != ThreatTier::Grayware);
                if infected {
                    mal += 1;
                    if lst.removed_in_second_crawl {
                        removed += 1;
                    }
                }
            }
            removed as f64 / mal.max(1) as f64
        };
        assert!(removal_rate(MarketId::GooglePlay) > 0.6);
        assert!(removal_rate(MarketId::PcOnline) < 0.1);
    }

    #[test]
    fn apk_bytes_parse_back() {
        let w = tiny_world();
        for id in [0u32, 5, 20] {
            let app = &w.apps[id as usize];
            let bytes = w.build_apk(AppId(id), app.version_count, false);
            let parsed = marketscope_apk::ParsedApk::parse(&bytes).unwrap();
            assert_eq!(parsed.manifest.package, app.package);
            assert!(parsed.signature_valid);
            assert_eq!(parsed.developer(), w.developer(app.developer).key);
        }
    }

    #[test]
    fn originals_are_fully_wired_but_clones_carry_dead_libs() {
        let w = tiny_world();
        let find = |want_original: bool| {
            w.apps.iter().position(|a| {
                matches!(a.provenance, Provenance::Original) == want_original
                    && !a.libs.is_empty()
                    && a.infection.is_none()
            })
        };
        // Originals invoke every library they bundle: nothing is dead.
        let orig = find(true).expect("an original with libraries");
        let bytes = w.build_apk(AppId(orig as u32), 1, false);
        let d = marketscope_apk::ApkDigest::from_bytes(&bytes).unwrap();
        assert!(d.component_count > 0);
        assert_eq!(d.dead_code_share(), 0.0, "original app has dead code");
        // Fakes and clones keep the victim's libraries as dead cargo.
        let clone = find(false).expect("a fake or clone with libraries");
        let bytes = w.build_apk(AppId(clone as u32), 1, false);
        let d = marketscope_apk::ApkDigest::from_bytes(&bytes).unwrap();
        assert!(d.dead_code_share() > 0.0, "clone libraries must be dead");
        assert!(d.dead_packages().count() >= 1);
        // The flat footprint still sees the dead libraries' API calls.
        assert!(d.api_calls().count() >= d.reachable_api_calls().count());
    }

    #[test]
    fn packed_apps_stay_fully_reachable_via_the_stub() {
        let w = tiny_world();
        let orig = w
            .apps
            .iter()
            .position(|a| matches!(a.provenance, Provenance::Original) && !a.libs.is_empty())
            .unwrap();
        let bytes = w.build_apk(AppId(orig as u32), 1, true);
        let d = marketscope_apk::ApkDigest::from_bytes(&bytes).unwrap();
        assert_eq!(d.dead_code_share(), 0.0, "stub must bootstrap the root");
    }

    #[test]
    fn obfuscated_build_keeps_identity() {
        let w = tiny_world();
        let bytes = w.build_apk(AppId(0), 1, true);
        let parsed = marketscope_apk::ParsedApk::parse(&bytes).unwrap();
        assert_eq!(parsed.manifest.package, w.apps[0].package);
        assert!(parsed
            .dex
            .classes
            .iter()
            .any(|c| c.name.starts_with("Lcom/jiagu/")));
    }

    #[test]
    fn downloads_follow_figure2_shape() {
        let w = generate(WorldConfig {
            seed: 5,
            scale: Scale { divisor: 2_000 },
            ..WorldConfig::default()
        });
        // OPPO's modal bucket is 100-1K (84.31%); Tencent's is 0-10.
        let modal = |m: MarketId| {
            let mut h = marketscope_core::installs::InstallHistogram::new();
            for l in w.market_listings(m) {
                if let Some(d) = w.listing(*l).downloads {
                    h.record(d);
                }
            }
            let shares = h.shares();
            shares
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        };
        assert_eq!(modal(MarketId::OppoMarket), 2);
        assert_eq!(modal(MarketId::TencentMyapp), 0);
        // Xiaomi reports nothing.
        assert!(w
            .market_listings(MarketId::XiaomiMarket)
            .iter()
            .all(|l| w.listing(*l).downloads.is_none()));
    }

    #[test]
    fn ratings_respect_store_defaults() {
        let w = tiny_world();
        let pco: Vec<f64> = w
            .market_listings(MarketId::PcOnline)
            .iter()
            .map(|l| w.listing(*l).rating)
            .collect();
        assert!(pco.contains(&3.0), "PC Online default rating missing");
        let gp_unrated = w
            .market_listings(MarketId::GooglePlay)
            .iter()
            .filter(|l| w.listing(**l).rating == 0.0)
            .count() as f64
            / w.market_listings(MarketId::GooglePlay).len() as f64;
        assert!(gp_unrated < 0.3, "GP unrated share {gp_unrated}");
    }
}
