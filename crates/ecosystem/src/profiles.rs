//! Per-market ground-truth profiles.
//!
//! Each profile encodes what the paper *measured* for one market (Tables
//! 1, 3, 4 and 6; Figures 2, 4, 5 and 9) as generation targets. The
//! synthetic world plants these rates; the analysis pipeline must then
//! *recover* them from crawled bytes — that closed loop is what makes the
//! reproduction meaningful at any scale.

use marketscope_core::MarketId;

/// How many listings to generate: paper catalog sizes divided by
/// `divisor`, so all per-market proportions are preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Paper catalog size divisor.
    pub divisor: u32,
}

impl Scale {
    /// Test scale: ~1/4000 of the paper (≈1.6 K listings).
    pub const SMALL: Scale = Scale { divisor: 4000 };
    /// Bench/report scale: ~1/400 of the paper (≈15.7 K listings).
    pub const MEDIUM: Scale = Scale { divisor: 400 };
    /// Stress scale: ~1/100 of the paper (≈63 K listings).
    pub const LARGE: Scale = Scale { divisor: 100 };

    /// Scaled catalog size for a market (at least 8 so every market has
    /// enough listings for rate planting even at tiny scales).
    pub fn catalog(self, market: MarketId) -> usize {
        (profile(market).paper_catalog_size / self.divisor as u64).max(8) as usize
    }

    /// Total scaled listings across all markets.
    pub fn total_listings(self) -> usize {
        MarketId::ALL.iter().map(|m| self.catalog(*m)).sum()
    }
}

/// Ground-truth generation targets for one market.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketProfile {
    /// Which market this profile describes.
    pub id: MarketId,
    /// Table 1 "Size (#Apps)".
    pub paper_catalog_size: u64,
    /// Table 1 "#Developers".
    pub paper_developers: u64,
    /// Table 1 "% Unique Developers".
    pub unique_dev_pct: f64,
    /// Table 1: requires a software copyright certificate.
    pub copyright_check: bool,
    /// Table 1: app vetting before publication.
    pub app_vetting: bool,
    /// Table 1: explicit security checks.
    pub security_check: bool,
    /// Table 1: vetting time in days (`None` where the paper reports N/A).
    pub vetting_days: Option<f64>,
    /// Table 1: rates app quality.
    pub quality_rating: bool,
    /// Table 1: requires a privacy policy.
    pub privacy_policy: bool,
    /// Table 1: informs users about ads.
    pub reports_ads: bool,
    /// Table 1: informs users about in-app purchases.
    pub reports_iap: bool,
    /// Whether the store reports install counts at all (Xiaomi and App
    /// China do not — Section 4.2).
    pub reports_installs: bool,
    /// Figure 2 row: target share of listings per install bucket.
    pub download_dist: [f64; 7],
    /// Figure 6: share of listings with no user rating.
    pub unrated_share: f64,
    /// Figure 6: the store's default rating for unrated apps (PC Online
    /// plants 3.0; everyone else effectively 0).
    pub default_rating: f64,
    /// Figure 4: share of listings released/updated before 2017.
    pub old_release_share: f64,
    /// Figure 4: share released within 6 months of the first crawl.
    pub fresh_release_share: f64,
    /// Figure 3: share of listings declaring min SDK < 9.
    pub low_api_share: f64,
    /// Figure 5a: share of apps embedding at least one third-party library.
    pub tpl_presence: f64,
    /// Figure 5a: mean third-party libraries per app.
    pub avg_tpls: f64,
    /// Figure 5b: share of apps embedding at least one ad library.
    pub ad_presence: f64,
    /// Section 4.1: share of listings whose store category is junk
    /// (NULL or non-descriptive).
    pub junk_category_share: f64,
    /// Table 3: share of fake apps.
    pub fake_rate: f64,
    /// Table 3: share of signature-based clones.
    pub sig_clone_rate: f64,
    /// Table 3: share of code-based clones.
    pub code_clone_rate: f64,
    /// Table 4 "≥1": share flagged by at least one AV engine.
    pub av1_rate: f64,
    /// Table 4 "≥10": share flagged by at least ten engines (malware).
    pub av10_rate: f64,
    /// Table 4 "≥20".
    pub av20_rate: f64,
    /// Section 6 extension: share of listings planted with a privacy
    /// leak (a taint flow from a private source to an exfiltration
    /// sink). Tracks the market's general hygiene — clean stores vet
    /// SDK behaviour, grey markets do not.
    pub leak_rate: f64,
    /// Table 6: share of identified malware removed by the second crawl
    /// (`None` for markets excluded from the post-analysis).
    pub malware_removal_rate: Option<f64>,
    /// Figure 9: share of this store's multi-store apps carrying the
    /// highest version seen anywhere.
    pub up_to_date_share: f64,
    /// Section 5.2: share of the catalog published only in this store.
    pub single_store_share: f64,
    /// 360 requires Jiagubao obfuscation before upload (Section 2.1).
    pub requires_obfuscation: bool,
    /// Google Play rate-limits APK downloads (Section 3.1).
    pub rate_limited_downloads: bool,
    /// Baidu indexes apps by sequential integer (Section 3).
    pub incremental_index: bool,
}

/// The profile for a market.
pub fn profile(market: MarketId) -> &'static MarketProfile {
    &PROFILES[market.index()]
}

/// All 17 profiles in [`MarketId::ALL`] order.
pub fn all_profiles() -> &'static [MarketProfile; 17] {
    &PROFILES
}

macro_rules! pct {
    ($v:expr) => {
        $v / 100.0
    };
}

/// One static profile per market; values transcribed from the paper.
// One AV rate happens to equal 3.14% — measured data, not an approximation
// of a mathematical constant.
#[allow(clippy::approx_constant)]
static PROFILES: [MarketProfile; 17] = [
    MarketProfile {
        id: MarketId::GooglePlay,
        paper_catalog_size: 2_031_946,
        paper_developers: 538_283,
        unique_dev_pct: pct!(57.04),
        copyright_check: true,
        app_vetting: true,
        security_check: true,
        vetting_days: Some(0.2),
        quality_rating: false,
        privacy_policy: true,
        reports_ads: true,
        reports_iap: true,
        reports_installs: true,
        download_dist: [0.0405, 0.1790, 0.3052, 0.2538, 0.1515, 0.0562, 0.0121],
        unrated_share: pct!(9.3),
        default_rating: 0.0,
        old_release_share: pct!(66.0),
        fresh_release_share: pct!(23.0),
        low_api_share: pct!(22.0),
        tpl_presence: pct!(94.0),
        avg_tpls: 8.0,
        ad_presence: pct!(70.0),
        junk_category_share: pct!(2.0),
        fake_rate: pct!(0.03),
        sig_clone_rate: pct!(4.01),
        code_clone_rate: pct!(17.82),
        av1_rate: pct!(17.03),
        av10_rate: pct!(2.09),
        av20_rate: pct!(0.32),
        leak_rate: pct!(8.0),
        malware_removal_rate: Some(pct!(84.0)),
        up_to_date_share: pct!(95.4),
        single_store_share: pct!(77.0),
        requires_obfuscation: false,
        rate_limited_downloads: true,
        incremental_index: false,
    },
    MarketProfile {
        id: MarketId::TencentMyapp,
        paper_catalog_size: 636_265,
        paper_developers: 294_950,
        unique_dev_pct: pct!(10.61),
        copyright_check: true,
        app_vetting: true,
        security_check: true,
        vetting_days: Some(1.0),
        quality_rating: true,
        privacy_policy: false,
        reports_ads: true,
        reports_iap: false,
        reports_installs: true,
        download_dist: [0.5587, 0.1237, 0.1550, 0.1038, 0.0421, 0.0121, 0.0035],
        unrated_share: pct!(80.0),
        default_rating: 0.0,
        old_release_share: pct!(90.0),
        fresh_release_share: pct!(5.0),
        low_api_share: pct!(63.0),
        tpl_presence: pct!(92.0),
        avg_tpls: 12.0,
        ad_presence: pct!(55.0),
        junk_category_share: pct!(40.0),
        fake_rate: pct!(0.53),
        sig_clone_rate: pct!(8.24),
        code_clone_rate: pct!(22.73),
        av1_rate: pct!(34.15),
        av10_rate: pct!(11.16),
        av20_rate: pct!(3.45),
        leak_rate: pct!(18.0),
        malware_removal_rate: Some(pct!(8.75)),
        up_to_date_share: pct!(89.4),
        single_store_share: pct!(15.0),
        requires_obfuscation: false,
        rate_limited_downloads: false,
        incremental_index: false,
    },
    MarketProfile {
        id: MarketId::BaiduMarket,
        paper_catalog_size: 227_454,
        paper_developers: 107_698,
        unique_dev_pct: pct!(15.10),
        copyright_check: true,
        app_vetting: true,
        security_check: true,
        vetting_days: Some(2.0),
        quality_rating: false,
        privacy_policy: false,
        reports_ads: true,
        reports_iap: false,
        reports_installs: true,
        download_dist: [0.0, 0.3498, 0.2591, 0.2321, 0.0765, 0.0540, 0.0226],
        unrated_share: pct!(60.0),
        default_rating: 0.0,
        old_release_share: pct!(90.0),
        fresh_release_share: pct!(5.0),
        low_api_share: pct!(63.0),
        tpl_presence: pct!(91.0),
        avg_tpls: 11.0,
        ad_presence: pct!(54.0),
        junk_category_share: pct!(5.0),
        fake_rate: pct!(0.48),
        sig_clone_rate: pct!(10.98),
        code_clone_rate: pct!(17.38),
        av1_rate: pct!(42.77),
        av10_rate: pct!(12.24),
        av20_rate: pct!(3.30),
        leak_rate: pct!(22.0),
        malware_removal_rate: Some(pct!(23.99)),
        up_to_date_share: pct!(52.9),
        single_store_share: pct!(8.0),
        requires_obfuscation: false,
        rate_limited_downloads: false,
        incremental_index: true,
    },
    MarketProfile {
        id: MarketId::Market360,
        paper_catalog_size: 163_121,
        paper_developers: 90_226,
        unique_dev_pct: pct!(6.80),
        copyright_check: true,
        app_vetting: true,
        security_check: true,
        vetting_days: Some(1.0),
        quality_rating: true,
        privacy_policy: false,
        reports_ads: true,
        reports_iap: true,
        reports_installs: true,
        download_dist: [0.1654, 0.1608, 0.1925, 0.2579, 0.1278, 0.0724, 0.0197],
        unrated_share: pct!(55.0),
        default_rating: 0.0,
        old_release_share: pct!(90.0),
        fresh_release_share: pct!(5.0),
        low_api_share: pct!(63.0),
        tpl_presence: pct!(93.0),
        avg_tpls: 20.0,
        ad_presence: pct!(56.0),
        junk_category_share: pct!(40.0),
        fake_rate: pct!(0.50),
        sig_clone_rate: pct!(5.43),
        code_clone_rate: pct!(23.26),
        av1_rate: pct!(41.40),
        av10_rate: pct!(12.35),
        av20_rate: pct!(3.10),
        leak_rate: pct!(21.0),
        malware_removal_rate: Some(pct!(43.0)),
        up_to_date_share: pct!(82.5),
        single_store_share: pct!(10.0),
        requires_obfuscation: true,
        rate_limited_downloads: false,
        incremental_index: false,
    },
    MarketProfile {
        id: MarketId::OppoMarket,
        paper_catalog_size: 426_419,
        paper_developers: 209_197,
        unique_dev_pct: pct!(14.37),
        copyright_check: true,
        app_vetting: true,
        security_check: true,
        vetting_days: Some(2.0),
        quality_rating: false,
        privacy_policy: false,
        reports_ads: true,
        reports_iap: false,
        reports_installs: true,
        download_dist: [0.0, 0.0, 0.8431, 0.1047, 0.0316, 0.0155, 0.0043],
        unrated_share: pct!(82.0),
        default_rating: 0.0,
        old_release_share: pct!(90.0),
        fresh_release_share: pct!(5.0),
        low_api_share: pct!(63.0),
        tpl_presence: pct!(92.0),
        avg_tpls: 12.0,
        ad_presence: pct!(52.0),
        junk_category_share: pct!(40.0),
        fake_rate: pct!(0.38),
        sig_clone_rate: pct!(5.85),
        code_clone_rate: pct!(20.94),
        av1_rate: pct!(42.97),
        av10_rate: pct!(16.43),
        av20_rate: pct!(6.00),
        leak_rate: pct!(22.0),
        malware_removal_rate: None, // OPPO became app-only before the 2nd crawl
        up_to_date_share: pct!(90.2),
        single_store_share: pct!(22.0),
        requires_obfuscation: false,
        rate_limited_downloads: false,
        incremental_index: false,
    },
    MarketProfile {
        id: MarketId::XiaomiMarket,
        paper_catalog_size: 91_190,
        paper_developers: 55_669,
        unique_dev_pct: pct!(5.78),
        copyright_check: true,
        app_vetting: true,
        security_check: true,
        vetting_days: Some(2.0),
        quality_rating: false,
        privacy_policy: false,
        reports_ads: false,
        reports_iap: false,
        reports_installs: false,
        download_dist: [0.0; 7],
        unrated_share: pct!(45.0),
        default_rating: 0.0,
        old_release_share: pct!(88.0),
        fresh_release_share: pct!(6.0),
        low_api_share: pct!(60.0),
        tpl_presence: pct!(92.0),
        avg_tpls: 11.0,
        ad_presence: pct!(52.0),
        junk_category_share: pct!(5.0),
        fake_rate: 0.0,
        sig_clone_rate: pct!(8.00),
        code_clone_rate: pct!(20.11),
        av1_rate: pct!(55.11),
        av10_rate: pct!(9.12),
        av20_rate: pct!(1.82),
        leak_rate: pct!(27.0),
        malware_removal_rate: Some(pct!(32.50)),
        up_to_date_share: pct!(63.9),
        single_store_share: pct!(5.0),
        requires_obfuscation: false,
        rate_limited_downloads: false,
        incremental_index: false,
    },
    MarketProfile {
        id: MarketId::MeizuMarket,
        paper_catalog_size: 80_573,
        paper_developers: 50_451,
        unique_dev_pct: pct!(0.58),
        copyright_check: true,
        app_vetting: true,
        security_check: true,
        vetting_days: Some(2.0),
        quality_rating: false,
        privacy_policy: false,
        reports_ads: false,
        reports_iap: false,
        reports_installs: true,
        download_dist: [0.0763, 0.1350, 0.4537, 0.1954, 0.0797, 0.0428, 0.0142],
        unrated_share: pct!(50.0),
        default_rating: 0.0,
        old_release_share: pct!(88.0),
        fresh_release_share: pct!(6.0),
        low_api_share: pct!(58.0),
        tpl_presence: pct!(90.0),
        avg_tpls: 10.0,
        ad_presence: pct!(50.0),
        junk_category_share: pct!(4.0),
        fake_rate: pct!(1.14),
        sig_clone_rate: pct!(6.65),
        code_clone_rate: pct!(18.42),
        av1_rate: pct!(51.40),
        av10_rate: pct!(10.70),
        av20_rate: pct!(3.14),
        leak_rate: pct!(25.0),
        malware_removal_rate: Some(pct!(29.18)),
        up_to_date_share: pct!(69.1),
        single_store_share: pct!(0.9),
        requires_obfuscation: false,
        rate_limited_downloads: false,
        incremental_index: false,
    },
    MarketProfile {
        id: MarketId::HuaweiMarket,
        paper_catalog_size: 51_303,
        paper_developers: 32_927,
        unique_dev_pct: pct!(5.66),
        copyright_check: true,
        app_vetting: true,
        security_check: true,
        vetting_days: Some(4.0),
        quality_rating: false,
        privacy_policy: false,
        reports_ads: true,
        reports_iap: false,
        reports_installs: true,
        download_dist: [0.0010, 0.0, 0.3805, 0.2733, 0.1764, 0.1173, 0.0416],
        unrated_share: pct!(35.0),
        default_rating: 0.0,
        old_release_share: pct!(85.0),
        fresh_release_share: pct!(8.0),
        low_api_share: pct!(55.0),
        tpl_presence: pct!(91.0),
        avg_tpls: 10.0,
        ad_presence: pct!(52.0),
        junk_category_share: pct!(3.0),
        fake_rate: pct!(0.33),
        sig_clone_rate: pct!(11.54),
        code_clone_rate: pct!(18.76),
        av1_rate: pct!(57.48),
        av10_rate: pct!(4.71),
        av20_rate: pct!(0.57),
        leak_rate: pct!(24.0),
        malware_removal_rate: Some(pct!(26.92)),
        up_to_date_share: pct!(72.7),
        single_store_share: pct!(4.0),
        requires_obfuscation: false,
        rate_limited_downloads: false,
        incremental_index: false,
    },
    MarketProfile {
        id: MarketId::LenovoMm,
        paper_catalog_size: 37_716,
        paper_developers: 24_565,
        unique_dev_pct: pct!(0.79),
        copyright_check: true,
        app_vetting: true,
        security_check: false,
        vetting_days: Some(2.0),
        quality_rating: false,
        privacy_policy: false,
        reports_ads: false,
        reports_iap: false,
        reports_installs: true,
        download_dist: [0.0004, 0.1470, 0.0, 0.5354, 0.1678, 0.1102, 0.0319],
        unrated_share: pct!(45.0),
        default_rating: 0.0,
        old_release_share: pct!(88.0),
        fresh_release_share: pct!(5.0),
        low_api_share: pct!(60.0),
        tpl_presence: pct!(89.0),
        avg_tpls: 10.0,
        ad_presence: pct!(50.0),
        junk_category_share: pct!(4.0),
        fake_rate: pct!(0.67),
        sig_clone_rate: pct!(7.81),
        code_clone_rate: pct!(16.37),
        av1_rate: pct!(54.20),
        av10_rate: pct!(7.53),
        av20_rate: pct!(1.52),
        leak_rate: pct!(26.0),
        malware_removal_rate: Some(pct!(22.75)),
        up_to_date_share: pct!(60.4),
        single_store_share: pct!(2.0),
        requires_obfuscation: false,
        rate_limited_downloads: false,
        incremental_index: false,
    },
    MarketProfile {
        id: MarketId::Pp25,
        paper_catalog_size: 1_013_208,
        paper_developers: 470_073,
        unique_dev_pct: pct!(19.06),
        copyright_check: true,
        app_vetting: true,
        security_check: true,
        vetting_days: Some(2.0),
        quality_rating: false,
        privacy_policy: false,
        reports_ads: true,
        reports_iap: false,
        reports_installs: true,
        download_dist: [0.0027, 0.0463, 0.6802, 0.2034, 0.0482, 0.0149, 0.0037],
        unrated_share: pct!(83.0),
        default_rating: 0.0,
        old_release_share: pct!(92.0),
        fresh_release_share: pct!(4.0),
        low_api_share: pct!(65.0),
        tpl_presence: pct!(92.0),
        avg_tpls: 12.0,
        ad_presence: pct!(54.0),
        junk_category_share: pct!(40.0),
        fake_rate: pct!(0.35),
        sig_clone_rate: pct!(7.16),
        code_clone_rate: pct!(24.08),
        av1_rate: pct!(32.36),
        av10_rate: pct!(8.26),
        av20_rate: pct!(2.06),
        leak_rate: pct!(19.0),
        malware_removal_rate: Some(pct!(19.63)),
        up_to_date_share: pct!(91.8),
        single_store_share: pct!(21.0),
        requires_obfuscation: false,
        rate_limited_downloads: false,
        incremental_index: false,
    },
    MarketProfile {
        id: MarketId::Wandoujia,
        paper_catalog_size: 554_138,
        paper_developers: 291_114,
        unique_dev_pct: pct!(0.97),
        copyright_check: true,
        app_vetting: true,
        security_check: true,
        vetting_days: Some(2.0),
        quality_rating: false,
        privacy_policy: false,
        reports_ads: false,
        reports_iap: false,
        reports_installs: true,
        download_dist: [0.0196, 0.0474, 0.4366, 0.3524, 0.1217, 0.0177, 0.0038],
        unrated_share: pct!(70.0),
        default_rating: 0.0,
        old_release_share: pct!(91.0),
        fresh_release_share: pct!(4.5),
        low_api_share: pct!(64.0),
        tpl_presence: pct!(91.0),
        avg_tpls: 11.0,
        ad_presence: pct!(53.0),
        junk_category_share: pct!(6.0),
        fake_rate: pct!(0.39),
        sig_clone_rate: pct!(5.98),
        code_clone_rate: pct!(21.23),
        av1_rate: pct!(31.99),
        av10_rate: pct!(7.98),
        av20_rate: pct!(2.19),
        leak_rate: pct!(18.0),
        malware_removal_rate: Some(pct!(34.51)),
        up_to_date_share: pct!(90.0),
        single_store_share: pct!(0.8),
        requires_obfuscation: false,
        rate_limited_downloads: false,
        incremental_index: false,
    },
    MarketProfile {
        id: MarketId::HiApk,
        paper_catalog_size: 246_023,
        paper_developers: 115_191,
        unique_dev_pct: pct!(3.65),
        copyright_check: false,
        app_vetting: false,
        security_check: false,
        vetting_days: None,
        quality_rating: false,
        privacy_policy: false,
        reports_ads: false,
        reports_iap: false,
        reports_installs: true,
        download_dist: [0.0, 0.0, 0.7824, 0.1315, 0.0593, 0.0205, 0.0053],
        unrated_share: pct!(72.0),
        default_rating: 0.0,
        old_release_share: pct!(93.0),
        fresh_release_share: pct!(3.0),
        low_api_share: pct!(67.0),
        tpl_presence: pct!(90.0),
        avg_tpls: 11.0,
        ad_presence: pct!(53.0),
        junk_category_share: pct!(7.0),
        fake_rate: pct!(0.64),
        sig_clone_rate: pct!(7.51),
        code_clone_rate: pct!(20.08),
        av1_rate: pct!(41.89),
        av10_rate: pct!(11.12),
        av20_rate: pct!(2.72),
        leak_rate: pct!(22.0),
        malware_removal_rate: None, // HiApk discontinued service by end of 2017
        up_to_date_share: pct!(66.6),
        single_store_share: pct!(6.0),
        requires_obfuscation: false,
        rate_limited_downloads: false,
        incremental_index: false,
    },
    MarketProfile {
        id: MarketId::AnZhi,
        paper_catalog_size: 223_043,
        paper_developers: 74_145,
        unique_dev_pct: pct!(21.93),
        copyright_check: true,
        app_vetting: true,
        security_check: true,
        vetting_days: Some(2.0),
        quality_rating: false,
        privacy_policy: false,
        reports_ads: false,
        reports_iap: false,
        reports_installs: true,
        download_dist: [0.0010, 0.0135, 0.4972, 0.4283, 0.0486, 0.0084, 0.0023],
        unrated_share: pct!(68.0),
        default_rating: 0.0,
        old_release_share: pct!(91.0),
        fresh_release_share: pct!(4.0),
        low_api_share: pct!(64.0),
        tpl_presence: pct!(90.0),
        avg_tpls: 11.0,
        ad_presence: pct!(53.0),
        junk_category_share: pct!(6.0),
        fake_rate: pct!(0.57),
        sig_clone_rate: pct!(4.92),
        code_clone_rate: pct!(20.71),
        av1_rate: pct!(55.32),
        av10_rate: pct!(11.37),
        av20_rate: pct!(2.41),
        leak_rate: pct!(26.0),
        malware_removal_rate: Some(pct!(27.61)),
        up_to_date_share: pct!(75.9),
        single_store_share: pct!(23.0),
        requires_obfuscation: false,
        rate_limited_downloads: false,
        incremental_index: false,
    },
    MarketProfile {
        id: MarketId::Liqu,
        paper_catalog_size: 179_147,
        paper_developers: 101_336,
        unique_dev_pct: pct!(6.10),
        copyright_check: true,
        app_vetting: true,
        security_check: true,
        vetting_days: None,
        quality_rating: false,
        privacy_policy: false,
        reports_ads: false,
        reports_iap: false,
        reports_installs: true,
        download_dist: [0.0001, 0.0003, 0.0001, 0.7183, 0.2232, 0.0514, 0.0061],
        unrated_share: pct!(70.0),
        default_rating: 0.0,
        old_release_share: pct!(92.0),
        fresh_release_share: pct!(3.5),
        low_api_share: pct!(65.0),
        tpl_presence: pct!(90.0),
        avg_tpls: 11.0,
        ad_presence: pct!(53.0),
        junk_category_share: pct!(7.0),
        fake_rate: pct!(0.40),
        sig_clone_rate: pct!(5.32),
        code_clone_rate: pct!(16.68),
        av1_rate: pct!(45.91),
        av10_rate: pct!(13.00),
        av20_rate: pct!(4.27),
        leak_rate: pct!(23.0),
        malware_removal_rate: Some(pct!(14.08)),
        up_to_date_share: pct!(79.7),
        single_store_share: pct!(7.0),
        requires_obfuscation: false,
        rate_limited_downloads: false,
        incremental_index: false,
    },
    MarketProfile {
        id: MarketId::PcOnline,
        paper_catalog_size: 134_863,
        paper_developers: 65_225,
        unique_dev_pct: pct!(2.58),
        copyright_check: false,
        app_vetting: false,
        security_check: false,
        vetting_days: None,
        quality_rating: false,
        privacy_policy: false,
        reports_ads: false,
        reports_iap: false,
        reports_installs: true,
        download_dist: [0.1307, 0.7419, 0.0862, 0.0298, 0.0091, 0.0021, 0.0002],
        unrated_share: pct!(75.0),
        default_rating: 3.0,
        old_release_share: pct!(93.0),
        fresh_release_share: pct!(2.5),
        low_api_share: pct!(68.0),
        tpl_presence: pct!(85.0),
        avg_tpls: 9.0,
        ad_presence: pct!(50.0),
        junk_category_share: pct!(8.0),
        fake_rate: pct!(1.89),
        sig_clone_rate: pct!(8.60),
        code_clone_rate: pct!(23.34),
        av1_rate: pct!(55.93),
        av10_rate: pct!(24.01),
        av20_rate: pct!(8.37),
        leak_rate: pct!(28.0),
        malware_removal_rate: Some(pct!(0.01)),
        up_to_date_share: pct!(84.1),
        single_store_share: pct!(9.0),
        requires_obfuscation: false,
        rate_limited_downloads: false,
        incremental_index: false,
    },
    MarketProfile {
        id: MarketId::Sougou,
        paper_catalog_size: 128_403,
        paper_developers: 66_759,
        unique_dev_pct: pct!(4.04),
        copyright_check: true,
        app_vetting: true,
        security_check: true,
        vetting_days: Some(1.0),
        quality_rating: false,
        privacy_policy: false,
        reports_ads: true,
        reports_iap: false,
        reports_installs: true,
        download_dist: [0.0077, 0.1783, 0.5513, 0.2227, 0.0251, 0.0115, 0.0031],
        unrated_share: pct!(70.0),
        default_rating: 0.0,
        old_release_share: pct!(92.0),
        fresh_release_share: pct!(3.0),
        low_api_share: pct!(66.0),
        tpl_presence: pct!(89.0),
        avg_tpls: 10.0,
        ad_presence: pct!(52.0),
        junk_category_share: pct!(7.0),
        fake_rate: pct!(1.83),
        sig_clone_rate: pct!(4.86),
        code_clone_rate: pct!(18.28),
        av1_rate: pct!(52.41),
        av10_rate: pct!(16.53),
        av20_rate: pct!(4.59),
        leak_rate: pct!(27.0),
        malware_removal_rate: Some(pct!(24.24)),
        up_to_date_share: pct!(69.3),
        single_store_share: pct!(5.0),
        requires_obfuscation: false,
        rate_limited_downloads: false,
        incremental_index: false,
    },
    MarketProfile {
        id: MarketId::AppChina,
        paper_catalog_size: 42_435,
        paper_developers: 23_699,
        unique_dev_pct: pct!(3.22),
        copyright_check: true,
        app_vetting: true,
        security_check: true,
        vetting_days: Some(2.0),
        quality_rating: false,
        privacy_policy: false,
        reports_ads: true,
        reports_iap: false,
        reports_installs: false,
        download_dist: [0.0; 7],
        unrated_share: pct!(65.0),
        default_rating: 0.0,
        old_release_share: pct!(92.0),
        fresh_release_share: pct!(3.0),
        low_api_share: pct!(66.0),
        tpl_presence: pct!(88.0),
        avg_tpls: 10.0,
        ad_presence: pct!(51.0),
        junk_category_share: pct!(6.0),
        fake_rate: 0.0,
        sig_clone_rate: pct!(10.17),
        code_clone_rate: pct!(13.23),
        av1_rate: pct!(48.55),
        av10_rate: pct!(14.13),
        av20_rate: pct!(4.27),
        leak_rate: pct!(24.0),
        malware_removal_rate: Some(pct!(20.51)),
        up_to_date_share: pct!(77.2),
        single_store_share: pct!(4.0),
        requires_obfuscation: false,
        rate_limited_downloads: false,
        incremental_index: false,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_in_market_order() {
        for (i, p) in PROFILES.iter().enumerate() {
            assert_eq!(p.id.index(), i, "{:?} out of order", p.id);
        }
    }

    #[test]
    fn paper_totals_match_table1() {
        let total: u64 = PROFILES.iter().map(|p| p.paper_catalog_size).sum();
        assert_eq!(total, 6_267_247, "Table 1 total apps");
    }

    #[test]
    fn download_distributions_are_near_stochastic() {
        for p in PROFILES.iter() {
            let sum: f64 = p.download_dist.iter().sum();
            if p.reports_installs {
                assert!((0.97..=1.01).contains(&sum), "{:?} sums to {sum}", p.id);
            } else {
                assert_eq!(sum, 0.0, "{:?} must not report installs", p.id);
            }
        }
    }

    #[test]
    fn rates_are_probabilities() {
        for p in PROFILES.iter() {
            for (name, v) in [
                ("fake", p.fake_rate),
                ("sig_clone", p.sig_clone_rate),
                ("code_clone", p.code_clone_rate),
                ("av1", p.av1_rate),
                ("av10", p.av10_rate),
                ("av20", p.av20_rate),
                ("leak", p.leak_rate),
                ("unrated", p.unrated_share),
                ("old", p.old_release_share),
                ("fresh", p.fresh_release_share),
                ("low_api", p.low_api_share),
                ("tpl", p.tpl_presence),
                ("ad", p.ad_presence),
                ("junk", p.junk_category_share),
                ("uptodate", p.up_to_date_share),
                ("single", p.single_store_share),
            ] {
                assert!((0.0..=1.0).contains(&v), "{:?} {name} = {v}", p.id);
            }
            assert!(
                p.av20_rate <= p.av10_rate && p.av10_rate <= p.av1_rate,
                "{:?}",
                p.id
            );
        }
    }

    #[test]
    fn av_ordering_and_special_cases() {
        assert!(profile(MarketId::GooglePlay).av10_rate < 0.03);
        assert!(profile(MarketId::PcOnline).av10_rate > 0.2);
        assert!(profile(MarketId::Market360).requires_obfuscation);
        assert!(profile(MarketId::GooglePlay).rate_limited_downloads);
        assert!(profile(MarketId::BaiduMarket).incremental_index);
        assert!(!profile(MarketId::XiaomiMarket).reports_installs);
        assert!(!profile(MarketId::AppChina).reports_installs);
        assert_eq!(profile(MarketId::PcOnline).default_rating, 3.0);
        // Google Play is the cleanest leak-wise; every Chinese market
        // plants at least twice its rate.
        let gp_leak = profile(MarketId::GooglePlay).leak_rate;
        for m in MarketId::ALL {
            if m != MarketId::GooglePlay {
                assert!(profile(m).leak_rate >= 2.0 * gp_leak, "{m:?}");
            }
        }
        assert_eq!(profile(MarketId::HiApk).malware_removal_rate, None);
        assert_eq!(profile(MarketId::OppoMarket).malware_removal_rate, None);
        assert!(!profile(MarketId::HiApk).copyright_check);
        assert!(!profile(MarketId::PcOnline).copyright_check);
    }

    #[test]
    fn scale_preserves_proportions() {
        let s = Scale::SMALL;
        let gp = s.catalog(MarketId::GooglePlay);
        let pp = s.catalog(MarketId::Pp25);
        // 25PP is roughly half of Google Play in the paper.
        let ratio = pp as f64 / gp as f64;
        assert!((0.4..0.6).contains(&ratio), "ratio {ratio}");
        assert!(s.total_listings() > 1_000);
        assert!(Scale::MEDIUM.total_listings() > 10 * s.total_listings() / 2);
    }

    #[test]
    fn tiny_markets_keep_a_floor() {
        let s = Scale { divisor: 1_000_000 };
        for m in MarketId::ALL {
            assert!(s.catalog(m) >= 8);
        }
    }
}
