//! Name pools: app labels, package names, developer names.
//!
//! Figure 8(b) shows ~22% of apps sharing a display name with at least one
//! other app. That comes from two very different sources that the fake-app
//! heuristic must be able to tell apart: *generic* names that are common
//! and legitimate ("Flashlight", "Calculator"), and *mimicked* names where
//! a fake copies a popular app's label. The pools here feed both.

use marketscope_core::rng::DetRng;

/// Generic app names that legitimately recur across unrelated apps
/// (the paper's examples: Flashlight, Calculator, Wallpaper).
pub const GENERIC_NAMES: [&str; 24] = [
    "Flashlight",
    "Calculator",
    "Wallpaper",
    "Compass",
    "Notes",
    "Weather",
    "Alarm Clock",
    "File Manager",
    "Music Player",
    "Video Player",
    "Camera",
    "Gallery",
    "Cleaner",
    "Battery Saver",
    "QR Scanner",
    "Browser",
    "Keyboard",
    "Recorder",
    "Timer",
    "Translator",
    "Radio",
    "Stopwatch",
    "Launcher",
    "Ringtones",
];

const ADJECTIVES: [&str; 28] = [
    "Super", "Happy", "Smart", "Quick", "Magic", "Golden", "Lucky", "Tiny", "Mega", "Ultra",
    "Cloud", "Star", "Dragon", "Panda", "Phoenix", "Jade", "Silver", "Rapid", "Bright", "Cosmic",
    "Pixel", "Turbo", "Neon", "Crystal", "Bamboo", "Lotus", "Ocean", "Thunder",
];

const NOUNS: [&str; 30] = [
    "Runner", "Farm", "Chef", "Market", "Diary", "Quest", "Saga", "Wallet", "Reader", "Studio",
    "Garden", "Racer", "Puzzle", "Chess", "Poker", "Taxi", "Shop", "Chat", "News", "Maps",
    "Fitness", "Doctor", "Bank", "Karaoke", "Comics", "Academy", "Kitchen", "Castle", "Journey",
    "Arena",
];

const DOMAIN_WORDS: [&str; 26] = [
    "tech",
    "soft",
    "games",
    "mobi",
    "apps",
    "studio",
    "lab",
    "works",
    "media",
    "net",
    "digital",
    "wang",
    "zhang",
    "li",
    "liu",
    "chen",
    "yang",
    "huang",
    "zhao",
    "wu",
    "interactive",
    "fun",
    "cloud",
    "data",
    "smart",
    "play",
];

/// Render a counter as a short base-36 tag ("2F", "Z9", ...).
fn base36(mut n: u64) -> String {
    const DIGITS: &[u8] = b"0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ";
    let mut out = Vec::new();
    loop {
        out.push(DIGITS[(n % 36) as usize]);
        n /= 36;
        if n == 0 {
            break;
        }
    }
    out.reverse();
    String::from_utf8(out).unwrap_or_else(|_| unreachable!("DIGITS are ascii"))
}

/// Chinese-flavoured label fragments for ecosystem colour (the crawler and
/// JSON layer must survive non-ASCII metadata).
const CN_LABELS: [&str; 8] = [
    "快乐", "音乐", "视频", "阅读", "购物", "游戏", "天气", "相机",
];

/// Generates unique package names and plausible labels.
#[derive(Debug)]
pub struct NameForge {
    rng: DetRng,
    counter: u64,
}

impl NameForge {
    /// A forge drawing from `rng`.
    pub fn new(rng: DetRng) -> Self {
        NameForge { rng, counter: 0 }
    }

    /// A fresh, globally unique package name like `com.luckysoft.runner7`.
    pub fn package(&mut self) -> String {
        self.counter += 1;
        let d1 = self.rng.pick(&DOMAIN_WORDS);
        let d2 = self.rng.pick(&DOMAIN_WORDS);
        let n = self.rng.pick(&NOUNS).to_ascii_lowercase();
        let tld = if self.rng.chance(0.55) {
            "com"
        } else if self.rng.chance(0.5) {
            "cn"
        } else {
            "org"
        };
        format!("{tld}.{d1}{d2}.{n}{}", self.counter)
    }

    /// A fresh package name shaped like a repackager's rename of
    /// `original` (keeps the final segment, swaps the vendor domain).
    pub fn repackage_of(&mut self, original: &str) -> String {
        self.counter += 1;
        let last = original.rsplit('.').next().unwrap_or("app");
        let d = self.rng.pick(&DOMAIN_WORDS);
        format!("com.{d}{}.{last}", self.counter)
    }

    /// A display label. With probability `generic_p`, one of the generic
    /// recurring names (these legitimately collide across apps, feeding
    /// Figure 8(b)'s shared-name share); otherwise a *unique* fresh name —
    /// accidental full-name collisions between unrelated branded apps are
    /// rare in practice, and planted fakes supply the mimicry.
    pub fn label(&mut self, generic_p: f64) -> String {
        if self.rng.chance(generic_p) {
            return (*self.rng.pick(&GENERIC_NAMES)).to_owned();
        }
        self.counter += 1;
        let a = self.rng.pick(&ADJECTIVES);
        let n = self.rng.pick(&NOUNS);
        let tag = base36(self.counter);
        if self.rng.chance(0.12) {
            format!("{a} {n} {} {tag}", self.rng.pick(&CN_LABELS))
        } else {
            format!("{a} {n} {tag}")
        }
    }

    /// A developer display name.
    pub fn developer_name(&mut self) -> String {
        self.counter += 1;
        let d = self.rng.pick(&DOMAIN_WORDS);
        let n = self.rng.pick(&NOUNS);
        format!("{}{} {}", d[..1].to_ascii_uppercase(), &d[1..], n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marketscope_core::PackageName;

    #[test]
    fn packages_are_unique_and_valid() {
        let mut f = NameForge::new(DetRng::new(5));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let p = f.package();
            assert!(PackageName::is_valid(&p), "{p}");
            assert!(seen.insert(p), "duplicate package");
        }
    }

    #[test]
    fn repackage_keeps_last_segment() {
        let mut f = NameForge::new(DetRng::new(5));
        let p = f.repackage_of("com.kugou.android");
        assert!(PackageName::is_valid(&p), "{p}");
        assert!(p.ends_with(".android"), "{p}");
        assert!(!p.starts_with("com.kugou."), "{p}");
    }

    #[test]
    fn labels_mix_generic_and_fresh() {
        let mut f = NameForge::new(DetRng::new(9));
        let labels: Vec<String> = (0..500).map(|_| f.label(0.2)).collect();
        let generic = labels
            .iter()
            .filter(|l| GENERIC_NAMES.contains(&l.as_str()))
            .count();
        assert!(generic > 50 && generic < 200, "generic count {generic}");
    }

    #[test]
    fn forge_is_deterministic() {
        let mut a = NameForge::new(DetRng::new(1));
        let mut b = NameForge::new(DetRng::new(1));
        for _ in 0..50 {
            assert_eq!(a.package(), b.package());
            assert_eq!(a.label(0.3), b.label(0.3));
        }
    }
}
