//! Static reachability analysis: call graph + worklist pass + dead-code
//! accounting, instrumented with `marketscope-telemetry`.
//!
//! The format-level core (flattening, worklist) lives in
//! [`marketscope_apk::reach`]; this module is the analysis-facing engine:
//! it resolves entry points from the manifest's declared components, runs
//! the pass, and reports the reachable method/API sets plus the dead-code
//! statistics (unreached methods and classes, fully dead packages) that
//! Figure 11's caveat table consumes. Every pass feeds three instruments:
//!
//! * `marketscope_analysis_reach_methods_visited_total`
//! * `marketscope_analysis_reach_edges_traversed_total`
//! * `marketscope_analysis_reach_latency_nanos`

use marketscope_apk::apicalls::ApiCallId;
use marketscope_apk::parse::ParsedApk;
use marketscope_apk::reach::{CallGraph, ReachStats};
use marketscope_telemetry::{Counter, Histogram, Registry};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One app's reachability facts.
#[derive(Debug, Clone, PartialEq)]
pub struct ReachabilityReport {
    /// Raw pass counters (methods total/reached, edges traversed).
    pub stats: ReachStats,
    /// Whether the manifest declared any components; when `false` the
    /// pass degraded to "everything reachable" (v1 semantics).
    pub anchored: bool,
    /// Distinct API calls made from reachable methods.
    pub reachable_apis: BTreeSet<ApiCallId>,
    /// Distinct API calls made anywhere in the DEX (flat baseline).
    pub flat_apis: BTreeSet<ApiCallId>,
    /// Classes none of whose methods were reached.
    pub dead_classes: Vec<String>,
    /// Java packages (dotted) none of whose methods were reached.
    pub dead_packages: Vec<String>,
}

impl ReachabilityReport {
    /// Share of methods *not* reached, in `[0, 1]`; 0 for an empty app.
    pub fn dead_code_share(&self) -> f64 {
        if self.stats.methods_total == 0 {
            0.0
        } else {
            1.0 - self.stats.methods_reached as f64 / self.stats.methods_total as f64
        }
    }

    /// API calls visible to the flat footprint but not the reachable one
    /// — the over-privilege inflation the paper's caveat describes.
    pub fn dead_only_apis(&self) -> impl Iterator<Item = ApiCallId> + '_ {
        self.flat_apis
            .iter()
            .filter(|a| !self.reachable_apis.contains(a))
            .copied()
    }
}

/// The reachability engine. Cheap to clone; instruments are shared.
#[derive(Clone)]
pub struct ReachabilityAnalyzer {
    methods_visited: Arc<Counter>,
    edges_traversed: Arc<Counter>,
    latency: Arc<Histogram>,
}

impl Default for ReachabilityAnalyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl ReachabilityAnalyzer {
    /// Analyzer with a private registry (tests, one-off runs).
    pub fn new() -> Self {
        Self::with_registry(&Registry::new())
    }

    /// Analyzer publishing into a shared registry (pipeline use).
    pub fn with_registry(registry: &Registry) -> Self {
        ReachabilityAnalyzer {
            methods_visited: registry
                .counter("marketscope_analysis_reach_methods_visited_total", &[]),
            edges_traversed: registry
                .counter("marketscope_analysis_reach_edges_traversed_total", &[]),
            latency: registry.histogram("marketscope_analysis_reach_latency_nanos", &[]),
        }
    }

    /// Build the call graph, run the worklist pass from the manifest's
    /// declared components, and account dead code.
    pub fn analyze(&self, apk: &ParsedApk) -> ReachabilityReport {
        let _span = self.latency.start_span();
        let graph = CallGraph::new(&apk.dex);
        let anchored = !apk.manifest.components.is_empty();
        let reach = if anchored {
            graph.reach_from_classes(apk.manifest.components.iter().map(|c| c.class.as_str()))
        } else {
            graph.reach_all()
        };
        self.methods_visited.add(reach.stats.methods_reached);
        self.edges_traversed.add(reach.stats.edges_traversed);

        let mut reachable_apis = BTreeSet::new();
        let mut flat_apis = BTreeSet::new();
        let mut dead_classes = Vec::new();
        let mut dead_packages = BTreeSet::new();
        let mut live_packages = BTreeSet::new();
        for (ci, class) in apk.dex.classes.iter().enumerate() {
            let mut any_reached = false;
            for (mi, m) in class.methods.iter().enumerate() {
                let reached = reach.is_reached(ci, mi);
                any_reached |= reached;
                for a in &m.api_calls {
                    flat_apis.insert(*a);
                    if reached {
                        reachable_apis.insert(*a);
                    }
                }
            }
            let pkg = class
                .java_package()
                .unwrap_or_else(|| "<default>".to_owned());
            // A method-less class is vacuously dead but not interesting.
            if !class.methods.is_empty() {
                if any_reached {
                    live_packages.insert(pkg);
                } else {
                    dead_classes.push(class.name.clone());
                    dead_packages.insert(pkg);
                }
            }
        }
        let dead_packages = dead_packages
            .into_iter()
            .filter(|p| !live_packages.contains(p))
            .collect();
        ReachabilityReport {
            stats: reach.stats,
            anchored,
            reachable_apis,
            flat_apis,
            dead_classes,
            dead_packages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marketscope_apk::builder::ApkBuilder;
    use marketscope_apk::dex::{ClassDef, DexFile, MethodDef, MethodRef};
    use marketscope_apk::manifest::{Component, ComponentKind, Manifest};
    use marketscope_core::{DeveloperKey, PackageName, VersionCode};

    fn parsed(dex: DexFile, components: Vec<Component>) -> ParsedApk {
        let manifest = Manifest {
            package: PackageName::new("com.t.x").unwrap(),
            version_code: VersionCode(1),
            version_name: "1".into(),
            min_sdk: 9,
            target_sdk: 23,
            app_label: "T".into(),
            permissions: vec![],
            category: "Tools".into(),
            components,
        };
        let bytes = ApkBuilder::new(manifest, dex)
            .build(DeveloperKey::from_label("d"))
            .unwrap();
        ParsedApk::parse(&bytes).unwrap()
    }

    fn method(calls: &[u32], invokes: &[(u16, u16)]) -> MethodDef {
        MethodDef {
            api_calls: calls.iter().map(|c| ApiCallId(*c)).collect(),
            code_hash: 3,
            invokes: invokes
                .iter()
                .map(|&(class, method)| MethodRef { class, method })
                .collect(),
        }
    }

    fn three_class_dex() -> DexFile {
        DexFile {
            classes: vec![
                ClassDef {
                    name: "Lcom/t/x/Main;".into(),
                    methods: vec![method(&[1], &[(1, 0)])],
                },
                ClassDef {
                    name: "Lcom/t/x/Helper;".into(),
                    methods: vec![method(&[2], &[])],
                },
                ClassDef {
                    name: "Lcom/deadlib/sdk/A;".into(),
                    methods: vec![method(&[9], &[])],
                },
            ],
        }
    }

    fn entry() -> Component {
        Component {
            kind: ComponentKind::Activity,
            class: "Lcom/t/x/Main;".into(),
        }
    }

    #[test]
    fn reports_dead_code_and_api_partition() {
        let apk = parsed(three_class_dex(), vec![entry()]);
        let report = ReachabilityAnalyzer::new().analyze(&apk);
        assert!(report.anchored);
        assert_eq!(report.stats.methods_total, 3);
        assert_eq!(report.stats.methods_reached, 2);
        assert!((report.dead_code_share() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(report.dead_classes, vec!["Lcom/deadlib/sdk/A;"]);
        assert_eq!(report.dead_packages, vec!["com.deadlib.sdk"]);
        let dead_only: Vec<u32> = report.dead_only_apis().map(|a| a.0).collect();
        assert_eq!(dead_only, vec![9]);
    }

    #[test]
    fn unanchored_app_has_no_dead_code() {
        let apk = parsed(three_class_dex(), vec![]);
        let report = ReachabilityAnalyzer::new().analyze(&apk);
        assert!(!report.anchored);
        assert_eq!(report.dead_code_share(), 0.0);
        assert!(report.dead_classes.is_empty());
        assert_eq!(report.flat_apis, report.reachable_apis);
    }

    #[test]
    fn package_alive_if_any_class_reached() {
        // Same package holds a reached and an unreached class: the
        // package is not dead, the class is.
        let dex = DexFile {
            classes: vec![
                ClassDef {
                    name: "Lcom/t/x/Main;".into(),
                    methods: vec![method(&[], &[])],
                },
                ClassDef {
                    name: "Lcom/t/x/Orphan;".into(),
                    methods: vec![method(&[], &[])],
                },
            ],
        };
        let apk = parsed(dex, vec![entry()]);
        let report = ReachabilityAnalyzer::new().analyze(&apk);
        assert_eq!(report.dead_classes, vec!["Lcom/t/x/Orphan;"]);
        assert!(report.dead_packages.is_empty());
    }

    #[test]
    fn instruments_accumulate_in_shared_registry() {
        let registry = Registry::new();
        let analyzer = ReachabilityAnalyzer::with_registry(&registry);
        let apk = parsed(three_class_dex(), vec![entry()]);
        analyzer.analyze(&apk);
        analyzer.analyze(&apk);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("marketscope_analysis_reach_methods_visited_total", &[]),
            Some(4)
        );
        assert_eq!(
            snap.counter_value("marketscope_analysis_reach_edges_traversed_total", &[]),
            Some(2)
        );
        let lat = snap
            .histogram("marketscope_analysis_reach_latency_nanos", &[])
            .unwrap();
        assert_eq!(lat.count(), 2);
    }
}
