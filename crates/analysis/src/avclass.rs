//! AVClass-style family labeling (Sebastián et al., RAID'16).
//!
//! Engines disagree on naming: `Trojan.AndroidOS.Kuguo.a`, `Adware/Kuguo`
//! and `PUA:KUGUO` are one family. AVClass normalizes labels into tokens,
//! strips generic/vendor noise, and takes a plurality vote across engines.

use std::collections::HashMap;

/// Tokens that carry no family information.
const GENERIC_TOKENS: [&str; 16] = [
    "trojan",
    "adware",
    "android",
    "androidos",
    "os",
    "gen",
    "generic",
    "pua",
    "heur",
    "malware",
    "riskware",
    "agent",
    "win32",
    "a",
    "b",
    "variant",
];

/// Normalize one engine label into candidate family tokens.
pub fn normalize_label(label: &str) -> Vec<String> {
    label
        .split(|c: char| !c.is_ascii_alphanumeric())
        .map(|t| t.to_ascii_lowercase())
        .filter(|t| t.len() >= 3)
        .filter(|t| !GENERIC_TOKENS.contains(&t.as_str()))
        .filter(|t| !t.starts_with("variant"))
        .filter(|t| !t.chars().all(|c| c.is_ascii_digit()))
        .collect()
}

/// Plurality vote over all engines' labels; `None` when no token
/// survives normalization.
pub fn plurality_family(labels: &[String]) -> Option<String> {
    let mut votes: HashMap<String, usize> = HashMap::new();
    for label in labels {
        // One vote per engine per token (dedup within a label).
        let mut tokens = normalize_label(label);
        tokens.sort();
        tokens.dedup();
        for t in tokens {
            *votes.entry(t).or_insert(0) += 1;
        }
    }
    votes
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
        .map(|(fam, _)| fam)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_strips_noise() {
        assert_eq!(normalize_label("Trojan.AndroidOS.Kuguo.a"), vec!["kuguo"]);
        assert_eq!(normalize_label("Adware/Dowgin"), vec!["dowgin"]);
        assert_eq!(normalize_label("PUA:KUGUO"), vec!["kuguo"]);
        assert_eq!(normalize_label("Android.Airpush.Gen"), vec!["airpush"]);
        assert!(normalize_label("Heur.Generic.17").is_empty());
    }

    #[test]
    fn plurality_voting() {
        let labels = vec![
            "Trojan.AndroidOS.Kuguo.a".to_owned(),
            "Adware/Kuguo".to_owned(),
            "Android.Dowgin.Gen".to_owned(),
            "PUA:KUGUO".to_owned(),
        ];
        assert_eq!(plurality_family(&labels).as_deref(), Some("kuguo"));
    }

    #[test]
    fn vote_ties_break_deterministically() {
        let labels = vec!["Adware/Aaa".to_owned(), "Adware/Bbb".to_owned()];
        // One vote each; the tiebreak must be stable across runs.
        let first = plurality_family(&labels);
        for _ in 0..10 {
            assert_eq!(plurality_family(&labels), first);
        }
        assert_eq!(first.as_deref(), Some("aaa"));
    }

    #[test]
    fn empty_and_generic_only_labels_yield_none() {
        assert_eq!(plurality_family(&[]), None);
        assert_eq!(plurality_family(&["Heur.Generic.3".to_owned()]), None);
    }

    #[test]
    fn all_engine_label_styles_normalize_to_family() {
        for i in 0..10 {
            let label = crate::av::vendor_label(i, "ramnit");
            let tokens = normalize_label(&label);
            assert!(
                tokens.contains(&"ramnit".to_owned()),
                "{label} → {tokens:?}"
            );
        }
    }
}
