//! # marketscope-analysis
//!
//! The misbehaviour analyses of Section 6 and the post-analysis of
//! Section 7, each operating purely on crawled artifacts:
//!
//! * [`fake`] — fake-app detection by app-name clustering plus the
//!   paper's small-cluster heuristic;
//! * [`reach`] — static reachability: call graph + worklist pass from
//!   the manifest-declared components, with dead-code accounting and
//!   telemetry instrumentation;
//! * [`overpriv`] — PScout-style over-privilege analysis (declared
//!   permissions vs. permissions exercised by API calls, under both the
//!   flat and the reachable footprint);
//! * [`taint`] — privacy-leak analysis: digest-time taint flows joined
//!   against library-detection ownership, attributing each leak to host
//!   code or a bundled third-party library;
//! * [`av`] — a simulated 60-engine VirusTotal ensemble producing
//!   AV-ranks and per-engine labels;
//! * [`avclass`] — AVClass-style family-label normalization and
//!   plurality voting;
//! * [`removal`] — first-vs-second-crawl malware removal measurement
//!   (Table 6), including the Google-Play-removed (GPRM) overlap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod av;
pub mod avclass;
pub mod fake;
pub mod overpriv;
pub mod reach;
pub mod removal;
pub mod taint;

pub use av::{AvReport, AvSimulator, ENGINE_COUNT};
pub use avclass::normalize_label;
pub use fake::{FakeDetector, FakeReport};
pub use overpriv::{FootprintMode, OverprivilegeAnalyzer, OverprivilegeResult};
pub use reach::{ReachabilityAnalyzer, ReachabilityReport};
pub use removal::{removal_rates, RemovalInput, RemovalReport};
pub use taint::{LeakAnalyzer, LeakAttribution, LeakFlow, LeakResult};
