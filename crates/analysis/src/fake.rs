//! Fake-app detection (Section 6.1).
//!
//! Fakes mimic a popular app's *display name* under a different package.
//! The paper clusters apps by exact name and applies a heuristic learned
//! from manual inspection: a fake cluster is **small (size < 5) with an
//! uncommon name**, containing **one popular app (> 1 M installs)** — the
//! official one — and **unpopular members (≤ 1,000 installs)** signed by
//! other developers, which are the fakes. Clusters around generic names
//! ("Flashlight", "Calculator") and same-developer multi-platform
//! releases are legitimate and excluded.

use marketscope_core::{DeveloperKey, MarketId};
use std::collections::HashMap;

/// One app record for fake detection (already deduplicated by package).
#[derive(Debug, Clone)]
pub struct FakeInput {
    /// Package name.
    pub package: String,
    /// Display name.
    pub label: String,
    /// Signing developer.
    pub developer: DeveloperKey,
    /// Best install counter seen in any market.
    pub max_downloads: u64,
    /// Markets listing the app.
    pub markets: Vec<MarketId>,
}

/// Detection thresholds (paper values).
#[derive(Debug, Clone, Copy)]
pub struct FakeConfig {
    /// Clusters at or above this size are "common names", not fakes.
    pub max_cluster: usize,
    /// The official app must exceed this install count.
    pub popular_floor: u64,
    /// Fakes must sit at or below this install count.
    pub unpopular_ceiling: u64,
}

impl Default for FakeConfig {
    fn default() -> Self {
        FakeConfig {
            max_cluster: 5,
            popular_floor: 1_000_000,
            unpopular_ceiling: 1_000,
        }
    }
}

/// Detection output.
#[derive(Debug, Clone)]
pub struct FakeReport {
    /// Indices (into the input) of apps judged fake.
    pub fakes: Vec<usize>,
    /// For each fake, the index of the official app it mimics.
    pub mimics: Vec<(usize, usize)>,
}

impl FakeReport {
    /// Share of apps listed in `market` judged fake.
    pub fn market_rate(&self, apps: &[FakeInput], market: MarketId) -> f64 {
        let fake_set: std::collections::HashSet<usize> = self.fakes.iter().copied().collect();
        let mut total = 0usize;
        let mut hit = 0usize;
        for (i, app) in apps.iter().enumerate() {
            if app.markets.contains(&market) {
                total += 1;
                if fake_set.contains(&i) {
                    hit += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            hit as f64 / total as f64
        }
    }

    /// Absolute number of fakes listed in `market`.
    pub fn market_count(&self, apps: &[FakeInput], market: MarketId) -> usize {
        self.fakes
            .iter()
            .filter(|i| apps[**i].markets.contains(&market))
            .count()
    }
}

/// The clustering + heuristic detector.
#[derive(Debug, Clone, Default)]
pub struct FakeDetector {
    config: FakeConfig,
}

impl FakeDetector {
    /// Detector with paper thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Detector with explicit thresholds.
    pub fn with_config(config: FakeConfig) -> Self {
        FakeDetector { config }
    }

    /// Run detection.
    pub fn detect(&self, apps: &[FakeInput]) -> FakeReport {
        // Cluster by exact display name.
        let mut clusters: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, app) in apps.iter().enumerate() {
            clusters.entry(app.label.as_str()).or_default().push(i);
        }
        let mut fakes = Vec::new();
        let mut mimics = Vec::new();
        for members in clusters.values() {
            if members.len() < 2 || members.len() >= self.config.max_cluster {
                continue; // singleton, or a common-name cluster
            }
            // Exactly one popular member — the official app.
            let populars: Vec<usize> = members
                .iter()
                .copied()
                .filter(|i| apps[*i].max_downloads > self.config.popular_floor)
                .collect();
            if populars.len() != 1 {
                continue;
            }
            let official = populars[0];
            for &i in members {
                if i == official {
                    continue;
                }
                let app = &apps[i];
                // Same developer → a legitimate multi-platform release.
                if app.developer == apps[official].developer {
                    continue;
                }
                if app.max_downloads <= self.config.unpopular_ceiling {
                    fakes.push(i);
                    mimics.push((i, official));
                }
            }
        }
        fakes.sort_unstable();
        mimics.sort_unstable();
        FakeReport { fakes, mimics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(pkg: &str, label: &str, dev: &str, dl: u64, markets: &[MarketId]) -> FakeInput {
        FakeInput {
            package: pkg.into(),
            label: label.into(),
            developer: DeveloperKey::from_label(dev),
            max_downloads: dl,
            markets: markets.to_vec(),
        }
    }

    #[test]
    fn classic_fake_cluster_is_detected() {
        let apps = vec![
            input(
                "com.kugou.android",
                "KuGou Music",
                "kugou",
                50_000_000,
                &[MarketId::TencentMyapp],
            ),
            input(
                "com.evil.x1",
                "KuGou Music",
                "attacker1",
                300,
                &[MarketId::PcOnline],
            ),
            input(
                "com.evil.x2",
                "KuGou Music",
                "attacker2",
                12,
                &[MarketId::Sougou],
            ),
        ];
        let report = FakeDetector::new().detect(&apps);
        assert_eq!(report.fakes, vec![1, 2]);
        assert_eq!(report.mimics, vec![(1, 0), (2, 0)]);
        assert_eq!(report.market_rate(&apps, MarketId::PcOnline), 1.0);
        assert_eq!(report.market_count(&apps, MarketId::TencentMyapp), 0);
    }

    #[test]
    fn common_name_clusters_are_legitimate() {
        // Five+ "Flashlight" apps: a generic name, not mimicry.
        let apps: Vec<FakeInput> = (0..6)
            .map(|i| {
                let dl = if i == 0 { 5_000_000 } else { 100 };
                input(
                    &format!("com.dev{i}.torch"),
                    "Flashlight",
                    &format!("d{i}"),
                    dl,
                    &[MarketId::GooglePlay],
                )
            })
            .collect();
        let report = FakeDetector::new().detect(&apps);
        assert!(report.fakes.is_empty(), "generic cluster misflagged");
    }

    #[test]
    fn same_developer_variants_are_legitimate() {
        // The paper's Sogou Maps example: same developer, two packages.
        let apps = vec![
            input(
                "com.sogou.map.android.maps",
                "Sogou Map",
                "sogou",
                80_000_000,
                &[MarketId::Sougou],
            ),
            input(
                "com.sogou.map.android.maps.pad",
                "Sogou Map",
                "sogou",
                500,
                &[MarketId::Sougou],
            ),
        ];
        let report = FakeDetector::new().detect(&apps);
        assert!(report.fakes.is_empty());
    }

    #[test]
    fn cluster_without_a_popular_official_is_ignored() {
        let apps = vec![
            input("com.a.x", "Obscure Thing", "d1", 40, &[MarketId::Liqu]),
            input("com.b.y", "Obscure Thing", "d2", 70, &[MarketId::Liqu]),
        ];
        assert!(FakeDetector::new().detect(&apps).fakes.is_empty());
    }

    #[test]
    fn two_popular_apps_sharing_a_name_are_ambiguous_not_fake() {
        let apps = vec![
            input(
                "com.a.x",
                "Battle Game",
                "d1",
                9_000_000,
                &[MarketId::GooglePlay],
            ),
            input(
                "com.b.y",
                "Battle Game",
                "d2",
                7_000_000,
                &[MarketId::TencentMyapp],
            ),
            input("com.c.z", "Battle Game", "d3", 10, &[MarketId::PcOnline]),
        ];
        assert!(FakeDetector::new().detect(&apps).fakes.is_empty());
    }

    #[test]
    fn mid_popularity_mimics_are_not_flagged() {
        // A 100K-install same-name app is suspicious but above the
        // paper's ≤1,000 bar — not flagged by this heuristic.
        let apps = vec![
            input(
                "com.real.app",
                "Mega Hit",
                "real",
                20_000_000,
                &[MarketId::GooglePlay],
            ),
            input(
                "com.gray.app",
                "Mega Hit",
                "other",
                100_000,
                &[MarketId::GooglePlay],
            ),
        ];
        assert!(FakeDetector::new().detect(&apps).fakes.is_empty());
    }
}
