//! Privacy-leak analysis: taint flows joined against library ownership
//! (the paper's Section 6 misbehaviour catalog, extended with the
//! FlowDroid-style pass the comparison literature applies to Chinese
//! markets).
//!
//! The format-level pass ([`marketscope_apk::taint`]) runs at digest
//! time — the digest is the last point where invocation edges exist —
//! and records each source→sink flow with the Java package of the sink
//! site. This module is the analysis-facing engine: it attributes every
//! flow to **host** code or a detected **third-party library** by
//! joining the sink package against the library-detection ownership
//! index ([`PackageOwnership`]), the distinction the ecosystem papers
//! care about (an SDK exfiltrating the IMEI is a supply-chain problem;
//! host code doing it is developer intent). Every pass feeds four
//! instruments:
//!
//! * `marketscope_analysis_taint_flows_total`
//! * `marketscope_analysis_taint_library_flows_total`
//! * `marketscope_analysis_taint_leaky_apps_total`
//! * `marketscope_analysis_taint_latency_nanos`

use marketscope_apk::digest::ApkDigest;
use marketscope_apk::permmap::{SinkClass, SourceClass};
use marketscope_libdetect::PackageOwnership;
use marketscope_telemetry::{Counter, Histogram, Registry};
use std::sync::Arc;

/// Who owns the code performing the sink call of a leak flow.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LeakAttribution {
    /// The app's own (or at least un-clustered) code.
    Host,
    /// A detected third-party library, by root package.
    Library(String),
}

impl LeakAttribution {
    /// Whether the flow sinks inside a detected library.
    pub fn is_library(&self) -> bool {
        matches!(self, LeakAttribution::Library(_))
    }
}

/// One attributed leak flow.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LeakFlow {
    /// What private data leaks.
    pub source: SourceClass,
    /// How it leaves the app.
    pub sink: SinkClass,
    /// Host code or a detected library root.
    pub attribution: LeakAttribution,
}

/// One app's attributed leak flows (input order preserved from the
/// digest, which is already deduplicated and sorted).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LeakResult {
    /// Attributed flows.
    pub flows: Vec<LeakFlow>,
}

impl LeakResult {
    /// Whether the app leaks at all.
    pub fn leaks(&self) -> bool {
        !self.flows.is_empty()
    }

    /// Number of flows sinking in host code.
    pub fn host_flows(&self) -> usize {
        self.flows
            .iter()
            .filter(|f| !f.attribution.is_library())
            .count()
    }

    /// Number of flows sinking in detected libraries.
    pub fn library_flows(&self) -> usize {
        self.flows
            .iter()
            .filter(|f| f.attribution.is_library())
            .count()
    }

    /// Whether any flow sinks in a detected library.
    pub fn leaks_via_library(&self) -> bool {
        self.flows.iter().any(|f| f.attribution.is_library())
    }
}

/// The leak engine. Cheap to clone; instruments are shared.
#[derive(Clone)]
pub struct LeakAnalyzer {
    flows_total: Arc<Counter>,
    library_flows: Arc<Counter>,
    leaky_apps: Arc<Counter>,
    latency: Arc<Histogram>,
}

impl Default for LeakAnalyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl LeakAnalyzer {
    /// Analyzer with a private registry (tests, one-off runs).
    pub fn new() -> Self {
        Self::with_registry(&Registry::new())
    }

    /// Analyzer publishing into a shared registry (pipeline use).
    pub fn with_registry(registry: &Registry) -> Self {
        LeakAnalyzer {
            flows_total: registry.counter("marketscope_analysis_taint_flows_total", &[]),
            library_flows: registry.counter("marketscope_analysis_taint_library_flows_total", &[]),
            leaky_apps: registry.counter("marketscope_analysis_taint_leaky_apps_total", &[]),
            latency: registry.histogram("marketscope_analysis_taint_latency_nanos", &[]),
        }
    }

    /// Attribute one digest's taint flows against the ownership join.
    pub fn analyze(&self, digest: &ApkDigest, ownership: &PackageOwnership) -> LeakResult {
        let _span = self.latency.start_span();
        let flows: Vec<LeakFlow> = digest
            .flows
            .iter()
            .map(|f| {
                let attribution = f
                    .sink_package
                    .as_deref()
                    .and_then(|p| ownership.owner_of(p))
                    .map_or(LeakAttribution::Host, |root| {
                        LeakAttribution::Library(root.to_owned())
                    });
                LeakFlow {
                    source: f.source,
                    sink: f.sink,
                    attribution,
                }
            })
            .collect();
        self.flows_total.add(flows.len() as u64);
        self.library_flows
            .add(flows.iter().filter(|f| f.attribution.is_library()).count() as u64);
        if !flows.is_empty() {
            self.leaky_apps.add(1);
        }
        LeakResult { flows }
    }

    /// Analyze a batch of digests across `workers` threads.
    ///
    /// [`analyze`](Self::analyze) is a pure function of the digest and
    /// the ownership join, so the batch is embarrassingly parallel;
    /// results come back in input order and are bit-identical to calling
    /// `analyze` per digest, regardless of `workers`.
    pub fn analyze_batch(
        &self,
        digests: &[&ApkDigest],
        ownership: &PackageOwnership,
        workers: usize,
    ) -> Vec<LeakResult> {
        marketscope_core::parallel::par_map(workers, digests, |d| self.analyze(d, ownership))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marketscope_apk::builder::ApkBuilder;
    use marketscope_apk::dex::{ClassDef, DexFile, MethodDef, MethodRef};
    use marketscope_apk::manifest::{Component, ComponentKind, Manifest};
    use marketscope_apk::permmap::PermissionMap;
    use marketscope_core::{DeveloperKey, PackageName, VersionCode};

    fn digest(dex: DexFile) -> ApkDigest {
        let manifest = Manifest {
            package: PackageName::new("com.t.x").unwrap(),
            version_code: VersionCode(1),
            version_name: "1".into(),
            min_sdk: 9,
            target_sdk: 23,
            app_label: "T".into(),
            permissions: vec![],
            category: "Tools".into(),
            components: vec![Component {
                kind: ComponentKind::Activity,
                class: "Lcom/t/x/Main;".into(),
            }],
        };
        let bytes = ApkBuilder::new(manifest, dex)
            .build(DeveloperKey::from_label("d"))
            .unwrap();
        ApkDigest::from_bytes(&bytes).unwrap()
    }

    fn method(calls: &[marketscope_apk::ApiCallId], invokes: &[(u16, u16)]) -> MethodDef {
        MethodDef {
            api_calls: calls.to_vec(),
            code_hash: 3,
            invokes: invokes
                .iter()
                .map(|&(class, method)| MethodRef { class, method })
                .collect(),
        }
    }

    /// Main reads the device id, relays into an ad-SDK subpackage that
    /// sends it out, and also logs it from its own code.
    fn leaky_digest(m: &PermissionMap) -> ApkDigest {
        let src = m.source_apis(SourceClass::DeviceId)[0];
        let net = m.sink_apis(SinkClass::NetworkSend)[0];
        let log = m.sink_apis(SinkClass::LogExfil)[0];
        digest(DexFile {
            classes: vec![
                ClassDef {
                    name: "Lcom/t/x/Main;".into(),
                    methods: vec![method(&[src], &[(1, 0), (2, 0)])],
                },
                ClassDef {
                    name: "Lcom/ads/sdk/v2/Send;".into(),
                    methods: vec![method(&[net], &[])],
                },
                ClassDef {
                    name: "Lcom/t/x/Log;".into(),
                    methods: vec![method(&[log], &[])],
                },
            ],
        })
    }

    #[test]
    fn attributes_flows_to_library_and_host() {
        let m = PermissionMap::standard();
        let d = leaky_digest(&m);
        let ownership = PackageOwnership::new(["com.ads.sdk".to_owned()]);
        let r = LeakAnalyzer::new().analyze(&d, &ownership);
        assert_eq!(
            r.flows,
            vec![
                LeakFlow {
                    source: SourceClass::DeviceId,
                    sink: SinkClass::NetworkSend,
                    attribution: LeakAttribution::Library("com.ads.sdk".into()),
                },
                LeakFlow {
                    source: SourceClass::DeviceId,
                    sink: SinkClass::LogExfil,
                    attribution: LeakAttribution::Host,
                },
            ]
        );
        assert!(r.leaks());
        assert!(r.leaks_via_library());
        assert_eq!(r.host_flows(), 1);
        assert_eq!(r.library_flows(), 1);
    }

    #[test]
    fn without_detected_libraries_everything_is_host() {
        let m = PermissionMap::standard();
        let d = leaky_digest(&m);
        let r = LeakAnalyzer::new().analyze(&d, &PackageOwnership::default());
        assert_eq!(r.flows.len(), 2);
        assert_eq!(r.host_flows(), 2);
        assert!(!r.leaks_via_library());
    }

    #[test]
    fn clean_app_has_no_flows() {
        let d = digest(DexFile {
            classes: vec![ClassDef {
                name: "Lcom/t/x/Main;".into(),
                methods: vec![method(&[marketscope_apk::ApiCallId(40_000)], &[])],
            }],
        });
        let r = LeakAnalyzer::new().analyze(&d, &PackageOwnership::default());
        assert!(!r.leaks());
        assert_eq!(r, LeakResult::default());
    }

    #[test]
    fn batch_is_order_preserving_and_worker_invariant() {
        let m = PermissionMap::standard();
        let leaky = leaky_digest(&m);
        let clean = digest(DexFile {
            classes: vec![ClassDef {
                name: "Lcom/t/x/Main;".into(),
                methods: vec![method(&[], &[])],
            }],
        });
        let digests: Vec<&ApkDigest> = vec![&leaky, &clean, &leaky, &clean, &leaky];
        let ownership = PackageOwnership::new(["com.ads.sdk".to_owned()]);
        let analyzer = LeakAnalyzer::new();
        let sequential: Vec<LeakResult> = digests
            .iter()
            .map(|d| analyzer.analyze(d, &ownership))
            .collect();
        for workers in [1, 2, 8] {
            let batch = analyzer.analyze_batch(&digests, &ownership, workers);
            assert_eq!(batch, sequential, "workers = {workers}");
        }
    }

    #[test]
    fn instruments_accumulate_in_shared_registry() {
        let registry = Registry::new();
        let analyzer = LeakAnalyzer::with_registry(&registry);
        let m = PermissionMap::standard();
        let d = leaky_digest(&m);
        let ownership = PackageOwnership::new(["com.ads.sdk".to_owned()]);
        analyzer.analyze(&d, &ownership);
        analyzer.analyze(&d, &ownership);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("marketscope_analysis_taint_flows_total", &[]),
            Some(4)
        );
        assert_eq!(
            snap.counter_value("marketscope_analysis_taint_library_flows_total", &[]),
            Some(2)
        );
        assert_eq!(
            snap.counter_value("marketscope_analysis_taint_leaky_apps_total", &[]),
            Some(2)
        );
        let lat = snap
            .histogram("marketscope_analysis_taint_latency_nanos", &[])
            .unwrap();
        assert_eq!(lat.count(), 2);
    }
}
