//! Malware removal measurement (Section 7, Table 6).
//!
//! Eight months after the first crawl, the paper re-crawled every store
//! and asked: of the samples we had flagged as malware (AV-rank ≥ 10),
//! how many are gone? And of the malicious apps *Google Play* removed,
//! how many still survive in each Chinese store?

use marketscope_core::MarketId;
use std::collections::HashSet;

/// Input: one market's flagged malware and the second crawl's catalog.
#[derive(Debug, Clone)]
pub struct RemovalInput {
    /// The market.
    pub market: MarketId,
    /// Packages flagged as malware in the first crawl.
    pub flagged: Vec<String>,
    /// Packages still listed in the second crawl.
    pub second_crawl: HashSet<String>,
}

/// Output row (Table 6).
#[derive(Debug, Clone, PartialEq)]
pub struct RemovalReport {
    /// The market.
    pub market: MarketId,
    /// Number flagged in the first crawl.
    pub flagged: usize,
    /// Number of those gone by the second crawl.
    pub removed: usize,
    /// Removal rate (0 when nothing was flagged).
    pub rate: f64,
    /// Flagged packages also flagged-and-removed from Google Play (GPRM
    /// overlap).
    pub gprm_overlap: usize,
    /// Of the GPRM overlap, how many this market also removed.
    pub gprm_removed: usize,
}

/// Compute per-market removal rates plus the GPRM overlap columns.
pub fn removal_rates(inputs: &[RemovalInput]) -> Vec<RemovalReport> {
    // Google Play's removed-malware set first.
    let gp = inputs.iter().find(|i| i.market == MarketId::GooglePlay);
    let gprm: HashSet<&str> = match gp {
        Some(gp) => gp
            .flagged
            .iter()
            .filter(|p| !gp.second_crawl.contains(*p))
            .map(String::as_str)
            .collect(),
        None => HashSet::new(),
    };
    inputs
        .iter()
        .map(|input| {
            let removed = input
                .flagged
                .iter()
                .filter(|p| !input.second_crawl.contains(*p))
                .count();
            let overlap: Vec<&String> = input
                .flagged
                .iter()
                .filter(|p| gprm.contains(p.as_str()))
                .collect();
            let gprm_removed = overlap
                .iter()
                .filter(|p| !input.second_crawl.contains(**p))
                .count();
            RemovalReport {
                market: input.market,
                flagged: input.flagged.len(),
                removed,
                rate: if input.flagged.is_empty() {
                    0.0
                } else {
                    removed as f64 / input.flagged.len() as f64
                },
                gprm_overlap: if input.market == MarketId::GooglePlay {
                    0
                } else {
                    overlap.len()
                },
                gprm_removed: if input.market == MarketId::GooglePlay {
                    0
                } else {
                    gprm_removed
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(market: MarketId, flagged: &[&str], second: &[&str]) -> RemovalInput {
        RemovalInput {
            market,
            flagged: flagged.iter().map(|s| (*s).to_owned()).collect(),
            second_crawl: second.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    #[test]
    fn basic_removal_rate() {
        let reports = removal_rates(&[input(
            MarketId::Wandoujia,
            &["a.a", "b.b", "c.c", "d.d"],
            &["a.a", "d.d"],
        )]);
        assert_eq!(reports[0].flagged, 4);
        assert_eq!(reports[0].removed, 2);
        assert!((reports[0].rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gprm_overlap_counts() {
        let gp = input(
            MarketId::GooglePlay,
            &["m.one", "m.two", "m.three"],
            &["m.three"],
        );
        // GP removed m.one and m.two. Tencent hosts both; it removed only
        // m.one.
        let tencent = input(
            MarketId::TencentMyapp,
            &["m.one", "m.two", "x.y"],
            &["m.two", "x.y"],
        );
        let reports = removal_rates(&[gp, tencent]);
        let t = &reports[1];
        assert_eq!(t.gprm_overlap, 2);
        assert_eq!(t.gprm_removed, 1);
        assert_eq!(t.removed, 1);
        // GP's own row does not count overlap with itself.
        assert_eq!(reports[0].gprm_overlap, 0);
    }

    #[test]
    fn empty_flag_set_is_zero_rate() {
        let reports = removal_rates(&[input(MarketId::Liqu, &[], &["x.y"])]);
        assert_eq!(reports[0].rate, 0.0);
        assert_eq!(reports[0].flagged, 0);
    }

    #[test]
    fn missing_google_play_means_no_overlap() {
        let reports = removal_rates(&[input(MarketId::Sougou, &["a.b"], &[])]);
        assert_eq!(reports[0].gprm_overlap, 0);
        assert_eq!(reports[0].removed, 1);
    }
}
