//! Over-privilege analysis (Section 6.3).
//!
//! An app is *over-privileged* when its manifest requests permissions its
//! code never exercises. The paper builds on PScout's API→permission map
//! and static reachability; here the map is
//! [`marketscope_apk::permmap::PermissionMap`] and the reachable API set
//! is the digest's API-call footprint (our DEX model has no dead code or
//! reflection, the two caveats the paper notes for the real analysis).

use marketscope_apk::digest::ApkDigest;
use marketscope_apk::permmap::{Permission, PermissionMap, PERMISSIONS};
use std::collections::BTreeSet;

/// Per-app over-privilege facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverprivilegeResult {
    /// Permissions declared in the manifest (recognized ones).
    pub declared: BTreeSet<Permission>,
    /// Permissions actually exercised by API calls.
    pub used: BTreeSet<Permission>,
    /// Declared but never exercised.
    pub unused: BTreeSet<Permission>,
}

impl OverprivilegeResult {
    /// Whether the app requests at least one unused permission.
    pub fn is_overprivileged(&self) -> bool {
        !self.unused.is_empty()
    }

    /// Number of unused permissions (Figure 11's x-axis).
    pub fn unused_count(&self) -> usize {
        self.unused.len()
    }

    /// Unused permissions Google labels dangerous.
    pub fn unused_dangerous(&self) -> impl Iterator<Item = &Permission> {
        self.unused.iter().filter(|p| p.is_dangerous())
    }
}

/// The analyzer: permission map + static API footprint.
#[derive(Debug, Clone, Default)]
pub struct OverprivilegeAnalyzer {
    map: PermissionMap,
}

impl OverprivilegeAnalyzer {
    /// Analyzer over the standard platform map.
    pub fn new() -> Self {
        OverprivilegeAnalyzer {
            map: PermissionMap::standard(),
        }
    }

    /// Analyze one app digest.
    pub fn analyze(&self, digest: &ApkDigest) -> OverprivilegeResult {
        let used = self.map.used_permissions(digest.api_calls());
        let declared: BTreeSet<Permission> = digest
            .permissions
            .iter()
            .filter_map(|name| {
                PERMISSIONS
                    .iter()
                    .find(|p| *p == name)
                    .map(|p| Permission(p))
            })
            .collect();
        let unused: BTreeSet<Permission> = declared.difference(&used).copied().collect();
        OverprivilegeResult {
            declared,
            used,
            unused,
        }
    }
}

/// Aggregate a population of results into the Figure 11 histogram:
/// counts of apps with 0, 1, ..., 9, and >9 unused permissions.
pub fn unused_histogram(results: &[OverprivilegeResult]) -> [u64; 11] {
    let mut out = [0u64; 11];
    for r in results {
        let bucket = r.unused_count().min(10);
        out[bucket] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use marketscope_apk::apicalls::ApiCallId;
    use marketscope_apk::builder::ApkBuilder;
    use marketscope_apk::dex::{ClassDef, DexFile, MethodDef};
    use marketscope_apk::manifest::Manifest;
    use marketscope_core::{DeveloperKey, PackageName, VersionCode};

    fn digest_with(declared: Vec<String>, calls: Vec<u32>) -> ApkDigest {
        let manifest = Manifest {
            package: PackageName::new("com.t.x").unwrap(),
            version_code: VersionCode(1),
            version_name: "1".into(),
            min_sdk: 9,
            target_sdk: 23,
            app_label: "T".into(),
            permissions: declared,
            category: "Tools".into(),
        };
        let dex = DexFile {
            classes: vec![ClassDef {
                name: "Lcom/t/x/Main;".into(),
                methods: vec![MethodDef {
                    api_calls: calls.into_iter().map(ApiCallId).collect(),
                    code_hash: 1,
                }],
            }],
        };
        let bytes = ApkBuilder::new(manifest, dex)
            .build(DeveloperKey::from_label("d"))
            .unwrap();
        ApkDigest::from_bytes(&bytes).unwrap()
    }

    /// Find an API id requiring a given permission.
    fn api_for(perm: &str) -> u32 {
        let map = PermissionMap::standard();
        let limit = marketscope_apk::apicalls::API_CALL_RANGE;
        map.apis_for(
            Permission(PERMISSIONS.iter().find(|p| **p == perm).unwrap()),
            limit,
        )[0]
        .0
    }

    #[test]
    fn exact_declaration_is_not_overprivileged() {
        let camera_api = api_for("android.permission.CAMERA");
        let d = digest_with(vec!["android.permission.CAMERA".into()], vec![camera_api]);
        let r = OverprivilegeAnalyzer::new().analyze(&d);
        assert!(!r.is_overprivileged());
        assert_eq!(r.unused_count(), 0);
        assert!(r.used.iter().any(|p| p.0.ends_with("CAMERA")));
    }

    #[test]
    fn unused_declarations_are_flagged() {
        let camera_api = api_for("android.permission.CAMERA");
        let d = digest_with(
            vec![
                "android.permission.CAMERA".into(),
                "android.permission.READ_PHONE_STATE".into(),
                "android.permission.SEND_SMS".into(),
            ],
            vec![camera_api],
        );
        let r = OverprivilegeAnalyzer::new().analyze(&d);
        assert!(r.is_overprivileged());
        assert_eq!(r.unused_count(), 2);
        assert_eq!(r.unused_dangerous().count(), 2);
    }

    #[test]
    fn unknown_permission_strings_are_ignored() {
        let d = digest_with(vec!["com.custom.PERMISSION".into()], vec![]);
        let r = OverprivilegeAnalyzer::new().analyze(&d);
        assert_eq!(r.declared.len(), 0);
        assert!(!r.is_overprivileged());
    }

    #[test]
    fn used_but_undeclared_is_not_overprivilege() {
        // The inverse gap (missing declarations) is a crash bug, not
        // over-privilege; unused must stay empty.
        let camera_api = api_for("android.permission.CAMERA");
        let d = digest_with(vec![], vec![camera_api]);
        let r = OverprivilegeAnalyzer::new().analyze(&d);
        assert!(!r.is_overprivileged());
        assert!(!r.used.is_empty());
    }

    #[test]
    fn histogram_buckets() {
        let camera_api = api_for("android.permission.CAMERA");
        let none = digest_with(vec!["android.permission.CAMERA".into()], vec![camera_api]);
        let two = digest_with(
            vec![
                "android.permission.SEND_SMS".into(),
                "android.permission.READ_SMS".into(),
            ],
            vec![],
        );
        let analyzer = OverprivilegeAnalyzer::new();
        let results = vec![analyzer.analyze(&none), analyzer.analyze(&two)];
        let h = unused_histogram(&results);
        assert_eq!(h[0], 1);
        assert_eq!(h[2], 1);
        assert_eq!(h.iter().sum::<u64>(), 2);
    }

    #[test]
    fn many_unused_lands_in_overflow_bucket() {
        let perms: Vec<String> = PERMISSIONS
            .iter()
            .take(12)
            .map(|p| (*p).to_string())
            .collect();
        let d = digest_with(perms, vec![]);
        let r = OverprivilegeAnalyzer::new().analyze(&d);
        let h = unused_histogram(&[r]);
        assert_eq!(h[10], 1);
    }
}
