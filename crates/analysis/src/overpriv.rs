//! Over-privilege analysis (Section 6.3).
//!
//! An app is *over-privileged* when its manifest requests permissions its
//! code never exercises. The paper builds on PScout's API→permission map
//! plus static reachability; here the map is
//! [`marketscope_apk::permmap::PermissionMap`] and both footprints are
//! computed: the **flat** API set (every call anywhere in the DEX — the
//! historical baseline, inflated by dead bundled libraries) and the
//! **reachable** set (calls in methods the worklist pass reaches from the
//! manifest-declared components). The paper's dead-code caveat is the gap
//! between the two.

use marketscope_apk::digest::ApkDigest;
use marketscope_apk::permmap::{Permission, PermissionMap, PERMISSIONS};
use std::collections::{BTreeSet, HashMap};

/// Which API footprint the over-privilege verdict is computed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FootprintMode {
    /// Every API call anywhere in the DEX (the historical baseline).
    Flat,
    /// Only calls in methods reachable from declared components.
    Reachable,
}

/// Per-app over-privilege facts, under both footprints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverprivilegeResult {
    /// Permissions declared in the manifest (recognized ones).
    pub declared: BTreeSet<Permission>,
    /// Permissions exercised by any API call in the DEX (flat).
    pub used: BTreeSet<Permission>,
    /// Declared but never exercised anywhere in the DEX (flat).
    pub unused: BTreeSet<Permission>,
    /// Permissions exercised by *reachable* API calls.
    pub used_reachable: BTreeSet<Permission>,
    /// Declared but not exercised by any reachable call. Superset of
    /// `unused`: a permission used only from dead code lands here.
    pub unused_reachable: BTreeSet<Permission>,
}

impl OverprivilegeResult {
    /// Whether the app requests at least one unused permission (flat
    /// baseline; see [`Self::is_overprivileged_in`]).
    pub fn is_overprivileged(&self) -> bool {
        !self.unused.is_empty()
    }

    /// Number of unused permissions (Figure 11's x-axis; flat baseline).
    pub fn unused_count(&self) -> usize {
        self.unused.len()
    }

    /// The unused permission set under a given footprint.
    pub fn unused_in(&self, mode: FootprintMode) -> &BTreeSet<Permission> {
        match mode {
            FootprintMode::Flat => &self.unused,
            FootprintMode::Reachable => &self.unused_reachable,
        }
    }

    /// Whether the app is over-privileged under a given footprint.
    pub fn is_overprivileged_in(&self, mode: FootprintMode) -> bool {
        !self.unused_in(mode).is_empty()
    }

    /// Number of unused permissions under a given footprint.
    pub fn unused_count_in(&self, mode: FootprintMode) -> usize {
        self.unused_in(mode).len()
    }

    /// Unused permissions Google labels dangerous (flat baseline).
    pub fn unused_dangerous(&self) -> impl Iterator<Item = &Permission> {
        self.unused.iter().filter(|p| p.is_dangerous())
    }
}

/// The analyzer: permission map + both static API footprints.
#[derive(Debug, Clone)]
pub struct OverprivilegeAnalyzer {
    map: PermissionMap,
    /// Permission-name lookup built once; `analyze` is called per app
    /// across whole markets, so no linear scans on that path.
    by_name: HashMap<&'static str, Permission>,
}

impl Default for OverprivilegeAnalyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl OverprivilegeAnalyzer {
    /// Analyzer over the standard platform map.
    pub fn new() -> Self {
        OverprivilegeAnalyzer {
            map: PermissionMap::standard(),
            by_name: PERMISSIONS.iter().map(|p| (*p, Permission(p))).collect(),
        }
    }

    /// Analyze one app digest.
    pub fn analyze(&self, digest: &ApkDigest) -> OverprivilegeResult {
        let used = self.map.used_permissions(digest.api_calls());
        let used_reachable = self.map.used_permissions(digest.reachable_api_calls());
        let declared: BTreeSet<Permission> = digest
            .permissions
            .iter()
            .filter_map(|name| self.by_name.get(name.as_str()).copied())
            .collect();
        let unused: BTreeSet<Permission> = declared.difference(&used).copied().collect();
        let unused_reachable: BTreeSet<Permission> =
            declared.difference(&used_reachable).copied().collect();
        OverprivilegeResult {
            declared,
            used,
            unused,
            used_reachable,
            unused_reachable,
        }
    }

    /// Analyze a batch of digests across `workers` threads.
    ///
    /// [`analyze`](Self::analyze) is a pure function of the digest, so the
    /// batch is embarrassingly parallel; results come back in input order
    /// and are bit-identical to calling `analyze` per digest, regardless of
    /// `workers`.
    pub fn analyze_batch(
        &self,
        digests: &[&ApkDigest],
        workers: usize,
    ) -> Vec<OverprivilegeResult> {
        marketscope_core::parallel::par_map(workers, digests, |d| self.analyze(d))
    }
}

/// Aggregate a population of results into the Figure 11 histogram:
/// counts of apps with 0, 1, ..., 9, and >9 unused permissions (flat
/// baseline).
pub fn unused_histogram(results: &[OverprivilegeResult]) -> [u64; 11] {
    unused_histogram_in(results, FootprintMode::Flat)
}

/// The Figure 11 histogram under a chosen footprint.
pub fn unused_histogram_in(results: &[OverprivilegeResult], mode: FootprintMode) -> [u64; 11] {
    let mut out = [0u64; 11];
    for r in results {
        let bucket = r.unused_count_in(mode).min(10);
        out[bucket] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use marketscope_apk::apicalls::ApiCallId;
    use marketscope_apk::builder::ApkBuilder;
    use marketscope_apk::dex::{ClassDef, DexFile, MethodDef};
    use marketscope_apk::manifest::{Component, ComponentKind, Manifest};
    use marketscope_core::{DeveloperKey, PackageName, VersionCode};

    fn digest_of(declared: Vec<String>, dex: DexFile, components: Vec<Component>) -> ApkDigest {
        let manifest = Manifest {
            package: PackageName::new("com.t.x").unwrap(),
            version_code: VersionCode(1),
            version_name: "1".into(),
            min_sdk: 9,
            target_sdk: 23,
            app_label: "T".into(),
            permissions: declared,
            category: "Tools".into(),
            components,
        };
        let bytes = ApkBuilder::new(manifest, dex)
            .build(DeveloperKey::from_label("d"))
            .unwrap();
        ApkDigest::from_bytes(&bytes).unwrap()
    }

    fn digest_with(declared: Vec<String>, calls: Vec<u32>) -> ApkDigest {
        let dex = DexFile {
            classes: vec![ClassDef {
                name: "Lcom/t/x/Main;".into(),
                methods: vec![MethodDef {
                    api_calls: calls.into_iter().map(ApiCallId).collect(),
                    code_hash: 1,
                    invokes: vec![],
                }],
            }],
        };
        digest_of(declared, dex, vec![])
    }

    /// Find an API id requiring a given permission.
    fn api_for(perm: &str) -> u32 {
        let map = PermissionMap::standard();
        let limit = marketscope_apk::apicalls::API_CALL_RANGE;
        map.apis_for(
            Permission(PERMISSIONS.iter().find(|p| **p == perm).unwrap()),
            limit,
        )[0]
        .0
    }

    #[test]
    fn exact_declaration_is_not_overprivileged() {
        let camera_api = api_for("android.permission.CAMERA");
        let d = digest_with(vec!["android.permission.CAMERA".into()], vec![camera_api]);
        let r = OverprivilegeAnalyzer::new().analyze(&d);
        assert!(!r.is_overprivileged());
        assert_eq!(r.unused_count(), 0);
        assert!(r.used.iter().any(|p| p.0.ends_with("CAMERA")));
    }

    #[test]
    fn unused_declarations_are_flagged() {
        let camera_api = api_for("android.permission.CAMERA");
        let d = digest_with(
            vec![
                "android.permission.CAMERA".into(),
                "android.permission.READ_PHONE_STATE".into(),
                "android.permission.SEND_SMS".into(),
            ],
            vec![camera_api],
        );
        let r = OverprivilegeAnalyzer::new().analyze(&d);
        assert!(r.is_overprivileged());
        assert_eq!(r.unused_count(), 2);
        assert_eq!(r.unused_dangerous().count(), 2);
    }

    #[test]
    fn unknown_permission_strings_are_ignored() {
        let d = digest_with(vec!["com.custom.PERMISSION".into()], vec![]);
        let r = OverprivilegeAnalyzer::new().analyze(&d);
        assert_eq!(r.declared.len(), 0);
        assert!(!r.is_overprivileged());
    }

    #[test]
    fn used_but_undeclared_is_not_overprivilege() {
        // The inverse gap (missing declarations) is a crash bug, not
        // over-privilege; unused must stay empty.
        let camera_api = api_for("android.permission.CAMERA");
        let d = digest_with(vec![], vec![camera_api]);
        let r = OverprivilegeAnalyzer::new().analyze(&d);
        assert!(!r.is_overprivileged());
        assert!(!r.used.is_empty());
    }

    #[test]
    fn no_components_makes_modes_agree() {
        let camera_api = api_for("android.permission.CAMERA");
        let d = digest_with(
            vec![
                "android.permission.CAMERA".into(),
                "android.permission.SEND_SMS".into(),
            ],
            vec![camera_api],
        );
        let r = OverprivilegeAnalyzer::new().analyze(&d);
        assert_eq!(r.used, r.used_reachable);
        assert_eq!(r.unused, r.unused_reachable);
        assert_eq!(
            r.unused_count_in(FootprintMode::Flat),
            r.unused_count_in(FootprintMode::Reachable)
        );
    }

    /// The load-bearing divergence: a permission-gated API that lives
    /// only in a dead bundled class is "used" to the flat footprint but
    /// not to the reachable one, so only reachability mode flags the app.
    #[test]
    fn dead_code_permission_flagged_only_in_reachable_mode() {
        let camera_api = api_for("android.permission.CAMERA");
        let dex = DexFile {
            classes: vec![
                ClassDef {
                    name: "Lcom/t/x/Main;".into(),
                    methods: vec![MethodDef {
                        api_calls: vec![],
                        code_hash: 1,
                        invokes: vec![],
                    }],
                },
                // Bundled library class nothing ever invokes.
                ClassDef {
                    name: "Lcom/deadlib/sdk/Camera;".into(),
                    methods: vec![MethodDef {
                        api_calls: vec![ApiCallId(camera_api)],
                        code_hash: 2,
                        invokes: vec![],
                    }],
                },
            ],
        };
        let d = digest_of(
            vec!["android.permission.CAMERA".into()],
            dex,
            vec![Component {
                kind: ComponentKind::Activity,
                class: "Lcom/t/x/Main;".into(),
            }],
        );
        let r = OverprivilegeAnalyzer::new().analyze(&d);
        assert!(!r.is_overprivileged_in(FootprintMode::Flat));
        assert!(r.is_overprivileged_in(FootprintMode::Reachable));
        assert_eq!(r.unused_count_in(FootprintMode::Reachable), 1);
        assert!(r
            .unused_in(FootprintMode::Reachable)
            .iter()
            .any(|p| p.0.ends_with("CAMERA")));
    }

    #[test]
    fn histogram_buckets() {
        let camera_api = api_for("android.permission.CAMERA");
        let none = digest_with(vec!["android.permission.CAMERA".into()], vec![camera_api]);
        let two = digest_with(
            vec![
                "android.permission.SEND_SMS".into(),
                "android.permission.READ_SMS".into(),
            ],
            vec![],
        );
        let analyzer = OverprivilegeAnalyzer::new();
        let results = vec![analyzer.analyze(&none), analyzer.analyze(&two)];
        let h = unused_histogram(&results);
        assert_eq!(h[0], 1);
        assert_eq!(h[2], 1);
        assert_eq!(h.iter().sum::<u64>(), 2);
        let hr = unused_histogram_in(&results, FootprintMode::Reachable);
        assert_eq!(hr, h); // no components anywhere → modes agree
    }

    #[test]
    fn many_unused_lands_in_overflow_bucket() {
        let perms: Vec<String> = PERMISSIONS
            .iter()
            .take(12)
            .map(|p| (*p).to_string())
            .collect();
        let d = digest_with(perms, vec![]);
        let r = OverprivilegeAnalyzer::new().analyze(&d);
        let h = unused_histogram(&[r]);
        assert_eq!(h[10], 1);
    }
}
