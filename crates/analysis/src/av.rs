//! The simulated anti-virus ensemble (Section 6.4's VirusTotal stand-in).
//!
//! Sixty engines scan a sample's code-segment hashes against the shared
//! threat-signature database. A sample that carries a known family's
//! payload also carries a *variant marker* encoding how detectable the
//! variant is (obfuscation residue); each engine combines that
//! detectability with its own sensitivity and a deterministic per-engine
//! coin to decide whether it flags the sample. The resulting **AV-rank**
//! (number of flagging engines) has exactly the structure the paper
//! thresholds at ≥1 / ≥10 / ≥20.
//!
//! Flagging engines also emit a vendor-flavoured label string (e.g.
//! `Trojan.AndroidOS.Kuguo.a`) for AVClass-style family voting.

use marketscope_apk::digest::ApkDigest;
use marketscope_core::hash::{fnv1a64, mix64};
use marketscope_ecosystem::threat::{decode_detectability, FamilyId, ThreatDb};
use std::collections::HashSet;

/// Number of simulated engines (VirusTotal aggregates "more than 60").
pub const ENGINE_COUNT: usize = 60;

/// One sample's scan outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct AvReport {
    /// How many engines flagged the sample (the paper's AV-rank).
    pub rank: usize,
    /// Raw labels from the flagging engines.
    pub labels: Vec<String>,
    /// The family matched in the signature database, if any.
    pub matched_family: Option<FamilyId>,
}

impl AvReport {
    /// Convenience: does this sample clear the paper's malware bar?
    pub fn is_malware(&self, threshold: usize) -> bool {
        self.rank >= threshold
    }
}

/// The ensemble scanner.
#[derive(Debug, Clone)]
pub struct AvSimulator {
    db: ThreatDb,
    /// Per-engine sensitivity multipliers in `[0.7, 1.3]`.
    sensitivity: [f64; ENGINE_COUNT],
}

impl AvSimulator {
    /// Standard ensemble over the standard signature database.
    pub fn new() -> AvSimulator {
        Self::with_db(ThreatDb::standard())
    }

    /// Ensemble over an explicit database.
    pub fn with_db(db: ThreatDb) -> AvSimulator {
        let mut sensitivity = [1.0; ENGINE_COUNT];
        for (i, s) in sensitivity.iter_mut().enumerate() {
            let u = (mix64(0xE261_7E5E, i as u64) % 10_000) as f64 / 10_000.0;
            *s = 0.7 + 0.6 * u;
        }
        AvSimulator { db, sensitivity }
    }

    /// Scan one sample.
    pub fn scan(&self, digest: &ApkDigest) -> AvReport {
        let hashes: HashSet<u64> = digest.code_segments().collect();
        let matched = self.db.scan(hashes.iter().copied());
        let Some((family, sig_count)) = matched else {
            // Clean sample: engines almost never false-positive here; a
            // tiny deterministic residue keeps the model honest.
            let mut rank = 0;
            let mut labels = Vec::new();
            for i in 0..ENGINE_COUNT {
                let coin = unit(mix64(md5_key(digest), 0xFA15E ^ i as u64));
                if coin < 0.000_2 {
                    rank += 1;
                    labels.push(format!("Heur.Generic.{i}"));
                }
            }
            return AvReport {
                rank,
                labels,
                matched_family: None,
            };
        };
        // Detectability from the variant marker; fall back to a value
        // implied by how many signatures are present.
        let detectability = decode_detectability(&hashes).unwrap_or(0.05 + 0.03 * sig_count as f64);
        let fam = self.db.family(family);
        let variant_key = mix64(fnv1a64(fam.name.as_bytes()), md5_key(digest));
        let mut rank = 0;
        let mut labels = Vec::new();
        for i in 0..ENGINE_COUNT {
            let p = (detectability * self.sensitivity[i]).min(1.0);
            let coin = unit(mix64(variant_key, 0x0e6e_0000 + i as u64));
            if coin < p {
                rank += 1;
                labels.push(vendor_label(i, fam.name));
            }
        }
        AvReport {
            rank,
            labels,
            matched_family: Some(family),
        }
    }

    /// Scan a batch of digests across `workers` threads.
    ///
    /// [`scan`](Self::scan) is a pure function of the digest, so the batch
    /// is embarrassingly parallel; results come back in input order and are
    /// bit-identical to calling `scan` per digest, regardless of `workers`.
    pub fn scan_batch(&self, digests: &[&ApkDigest], workers: usize) -> Vec<AvReport> {
        marketscope_core::parallel::par_map(workers, digests, |d| self.scan(d))
    }

    /// The signature database in use.
    pub fn db(&self) -> &ThreatDb {
        &self.db
    }
}

impl Default for AvSimulator {
    fn default() -> Self {
        Self::new()
    }
}

fn md5_key(digest: &ApkDigest) -> u64 {
    let mut k = [0u8; 8];
    k.copy_from_slice(&digest.file_md5[..8]);
    u64::from_le_bytes(k)
}

fn unit(h: u64) -> f64 {
    (h % 1_000_000) as f64 / 1_000_000.0
}

/// Vendor-flavoured rendering of a family name, cycling through the label
/// styles real engines use (what AVClass has to normalize away).
pub fn vendor_label(engine: usize, family: &str) -> String {
    let cap = {
        let mut c = family.chars();
        match c.next() {
            Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
            None => String::new(),
        }
    };
    match engine % 5 {
        0 => format!("Trojan.AndroidOS.{cap}.a"),
        1 => format!("Adware/{cap}"),
        2 => format!("Android.{cap}.Gen"),
        3 => format!("PUA:{}", family.to_uppercase()),
        _ => format!("{cap}.variant{}", engine % 7),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marketscope_apk::builder::ApkBuilder;
    use marketscope_apk::dex::{ClassDef, DexFile, MethodDef};
    use marketscope_apk::manifest::Manifest;
    use marketscope_core::{DeveloperKey, PackageName, VersionCode};
    use marketscope_ecosystem::threat::{detectability_marker, DETECTABILITY_STEPS};

    fn sample(family: Option<(&str, f64)>, salt: u64) -> ApkDigest {
        let db = ThreatDb::standard();
        let mut classes = vec![ClassDef {
            name: "Lcom/s/x/Main;".into(),
            methods: vec![MethodDef {
                api_calls: vec![],
                code_hash: 0x1000 + salt,
                invokes: vec![],
            }],
        }];
        if let Some((name, d)) = family {
            let fam = db.family_by_name(name).unwrap();
            let sigs = db.signatures(fam);
            let step = ((d * DETECTABILITY_STEPS as f64) as u8).min(DETECTABILITY_STEPS - 1);
            let mut methods: Vec<MethodDef> = sigs[..6]
                .iter()
                .map(|s| MethodDef {
                    api_calls: vec![],
                    code_hash: *s,
                    invokes: vec![],
                })
                .collect();
            methods.push(MethodDef {
                api_calls: vec![],
                code_hash: detectability_marker(step),
                invokes: vec![],
            });
            classes.push(ClassDef {
                name: "La1b2/c;".into(),
                methods,
            });
        }
        let manifest = Manifest {
            package: PackageName::new("com.s.x").unwrap(),
            version_code: VersionCode(1),
            version_name: "1".into(),
            min_sdk: 9,
            target_sdk: 23,
            app_label: "S".into(),
            permissions: vec![],
            category: "Tools".into(),
            components: vec![],
        };
        let bytes = ApkBuilder::new(manifest, DexFile { classes })
            .build(DeveloperKey::from_label(&format!("d{salt}")))
            .unwrap();
        ApkDigest::from_bytes(&bytes).unwrap()
    }

    #[test]
    fn clean_samples_have_near_zero_rank() {
        let sim = AvSimulator::new();
        for salt in 0..50 {
            let r = sim.scan(&sample(None, salt));
            assert!(r.rank <= 1, "clean rank {} at salt {salt}", r.rank);
            assert_eq!(r.matched_family, None);
        }
    }

    #[test]
    fn malware_detectability_drives_rank() {
        let sim = AvSimulator::new();
        let mut low_ranks = Vec::new();
        let mut high_ranks = Vec::new();
        for salt in 0..20 {
            low_ranks.push(sim.scan(&sample(Some(("kuguo", 0.08)), salt)).rank);
            high_ranks.push(sim.scan(&sample(Some(("kuguo", 0.5)), salt)).rank);
        }
        let low_avg: f64 = low_ranks.iter().sum::<usize>() as f64 / 20.0;
        let high_avg: f64 = high_ranks.iter().sum::<usize>() as f64 / 20.0;
        assert!(low_avg > 1.0 && low_avg < 10.0, "low avg {low_avg}");
        assert!(high_avg > 20.0 && high_avg < 45.0, "high avg {high_avg}");
    }

    #[test]
    fn benchmark_tier_lands_near_table5_ranks() {
        let sim = AvSimulator::new();
        let r = sim.scan(&sample(Some(("eicar", 0.8)), 1));
        assert!(r.rank >= 40, "eicar rank {}", r.rank);
    }

    #[test]
    fn scan_is_deterministic() {
        let sim = AvSimulator::new();
        let d = sample(Some(("airpush", 0.3)), 7);
        assert_eq!(sim.scan(&d), sim.scan(&d));
    }

    #[test]
    fn labels_come_from_flagging_engines_only() {
        let sim = AvSimulator::new();
        let r = sim.scan(&sample(Some(("dowgin", 0.4)), 3));
        assert_eq!(r.labels.len(), r.rank);
        assert!(r.labels.iter().all(|l| l.to_lowercase().contains("dowgin")));
    }

    #[test]
    fn vendor_labels_vary_by_engine() {
        let styles: HashSet<String> = (0..10).map(|i| vendor_label(i, "kuguo")).collect();
        assert!(styles.len() >= 5, "{styles:?}");
    }
}
