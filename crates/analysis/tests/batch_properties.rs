//! Property tests for the `Sync` batch APIs: for arbitrary APK corpora and
//! worker counts, `scan_batch` / `analyze_batch` must equal the per-digest
//! `scan` / `analyze` loop element for element.

use marketscope_analysis::av::AvSimulator;
use marketscope_analysis::overpriv::OverprivilegeAnalyzer;
use marketscope_apk::apicalls::ApiCallId;
use marketscope_apk::builder::ApkBuilder;
use marketscope_apk::dex::{ClassDef, DexFile, MethodDef};
use marketscope_apk::digest::ApkDigest;
use marketscope_apk::manifest::Manifest;
use marketscope_apk::permmap::PERMISSIONS;
use marketscope_core::{DeveloperKey, PackageName, VersionCode};
use proptest::collection::vec;
use proptest::prelude::*;

/// Build a digest from generated parameters: a permission subset, one
/// class of methods with generated API calls and code hashes.
fn build_digest(salt: u64, perm_mask: u32, calls: &[u32], hashes: &[u64]) -> ApkDigest {
    let permissions: Vec<String> = PERMISSIONS
        .iter()
        .enumerate()
        .filter(|(i, _)| *i < 32 && perm_mask & (1 << i) != 0)
        .map(|(_, p)| (*p).to_owned())
        .collect();
    let manifest = Manifest {
        package: PackageName::new(&format!("com.prop.a{}", salt % 97)).unwrap(),
        version_code: VersionCode((salt % 40) as u32 + 1),
        version_name: "1".into(),
        min_sdk: 9,
        target_sdk: 23,
        app_label: format!("App{}", salt % 11),
        permissions,
        category: "Tools".into(),
        components: vec![],
    };
    let methods: Vec<MethodDef> = hashes
        .iter()
        .map(|h| MethodDef {
            api_calls: calls.iter().map(|c| ApiCallId(*c)).collect(),
            code_hash: h ^ salt,
            invokes: vec![],
        })
        .collect();
    let dex = DexFile {
        classes: vec![ClassDef {
            name: format!("Lcom/prop/a{}/Main;", salt % 97),
            methods,
        }],
    };
    let bytes = ApkBuilder::new(manifest, dex)
        .build(DeveloperKey::from_label(&format!("dev{}", salt % 13)))
        .unwrap();
    ApkDigest::from_bytes(&bytes).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scan_batch_equals_per_digest_scan(
        specs in vec((0u64..1_000_000, 0u32..u32::MAX, vec(0u32..2_000, 0..6), vec(1u64..u64::MAX, 1..5)), 1..12),
        workers in 1usize..9,
    ) {
        let digests: Vec<ApkDigest> = specs
            .iter()
            .map(|(salt, mask, calls, hashes)| build_digest(*salt, *mask, calls, hashes))
            .collect();
        let refs: Vec<&ApkDigest> = digests.iter().collect();
        let sim = AvSimulator::new();
        let batch = sim.scan_batch(&refs, workers);
        let sequential: Vec<_> = refs.iter().map(|d| sim.scan(d)).collect();
        prop_assert_eq!(batch, sequential);
    }

    #[test]
    fn analyze_batch_equals_per_digest_analyze(
        specs in vec((0u64..1_000_000, 0u32..u32::MAX, vec(0u32..2_000, 0..6), vec(1u64..u64::MAX, 1..5)), 1..12),
        workers in 1usize..9,
    ) {
        let digests: Vec<ApkDigest> = specs
            .iter()
            .map(|(salt, mask, calls, hashes)| build_digest(*salt, *mask, calls, hashes))
            .collect();
        let refs: Vec<&ApkDigest> = digests.iter().collect();
        let analyzer = OverprivilegeAnalyzer::new();
        let batch = analyzer.analyze_batch(&refs, workers);
        let sequential: Vec<_> = refs.iter().map(|d| analyzer.analyze(d)).collect();
        prop_assert_eq!(batch, sequential);
    }
}
