//! Standalone perf-baseline CLI.
//!
//! ```text
//! loadgen run [--seed N] [--divisor N] [--profile smoke|saturation|c10k|fanout]
//!             [--label LABEL] [--out DIR] [--max-inflight N]
//! loadgen bench-diff OLD.json NEW.json [--max-rps-drop F] [--max-p99-rise F]
//!             [--p99-floor-ns N] [--max-rss-rise F] [--max-alloc-rise F]
//! ```
//!
//! `run` generates a world (default scale honors
//! `MARKETSCOPE_BENCH_DIVISOR`, like the Criterion suites), spawns the
//! market fleet, drives it with the chosen load profile and writes
//! `BENCH_<label>.json`. Unlike `reproduce --bench` it skips the crawl
//! and analysis pipeline, so the BENCH file carries no stage timings —
//! it is the fast path for serving-side measurements.
//!
//! `bench-diff` compares two BENCH files and exits:
//!
//! * `0` — no regression past the thresholds (improvements never flag);
//! * `1` — at least one regression, listed on stderr;
//! * `2` — the files are not comparable (unreadable, unparseable, or a
//!   `schema_version` this binary does not understand).
//!
//! Build with `--features alloc-profile` to install the counting global
//! allocator; `run`'s BENCH files then carry real allocation deltas.

// A CLI binary reports fatal setup/IO errors by panicking with context.
#![allow(clippy::disallowed_methods)]

use marketscope_core::json::Json;
use marketscope_ecosystem::{generate, Scale, WorldConfig};
use marketscope_loadgen::{diff, BenchReport, DiffThresholds, LoadConfig};
use marketscope_market::MarketFleet;
use std::sync::Arc;

#[cfg(feature = "alloc-profile")]
#[global_allocator]
static ALLOC: marketscope_telemetry::perf::CountingAlloc =
    marketscope_telemetry::perf::CountingAlloc;

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("run") => run(args),
        Some("bench-diff") => bench_diff(args),
        Some("--help") | Some("-h") => usage(""),
        Some(other) => usage(&format!("unknown subcommand {other:?}")),
        None => usage("a subcommand is required"),
    }
}

fn run(mut args: impl Iterator<Item = String>) {
    let mut seed = 0x1517_2018u64;
    let mut divisor: u32 = std::env::var("MARKETSCOPE_BENCH_DIVISOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000);
    let mut profile = "smoke".to_owned();
    let mut label = "local".to_owned();
    let mut out_dir = std::path::PathBuf::from(".");
    let mut max_inflight = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--divisor" => {
                divisor = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--divisor needs an integer"));
            }
            "--profile" => {
                profile = args
                    .next()
                    .unwrap_or_else(|| usage("--profile needs smoke|saturation|c10k|fanout"));
            }
            "--label" => {
                label = args.next().unwrap_or_else(|| usage("--label needs a name"));
            }
            "--out" => {
                out_dir = std::path::PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--out needs a directory")),
                );
            }
            "--max-inflight" => {
                max_inflight = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--max-inflight needs an integer")),
                );
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    let mut config = match profile.as_str() {
        "smoke" => LoadConfig::smoke(seed),
        "saturation" => LoadConfig::saturation(seed),
        // The C10k profile parks thousands of keep-alive connections
        // against one market while the smoke steps run; the BENCH file's
        // `held_connections` and `threads_peak` record the result.
        "c10k" => LoadConfig::c10k(seed),
        // The fan-out profile submits each step's whole plan through the
        // mux driver open-loop from one thread; the BENCH file's RPS is
        // multiplexed-client fan-out, not thread-pile concurrency.
        "fanout" => LoadConfig::fanout(seed),
        _ => usage("--profile needs smoke|saturation|c10k|fanout"),
    };
    config.max_inflight = max_inflight;

    eprintln!("loadgen: generating world (seed {seed:#x}, divisor {divisor}) ...");
    let world = Arc::new(generate(WorldConfig {
        seed,
        scale: Scale { divisor },
        ..WorldConfig::default()
    }));
    let fleet = MarketFleet::spawn(Arc::clone(&world)).expect("spawn fleet");
    eprintln!(
        "loadgen: {} profile, {} steps ...",
        profile,
        config.steps.len()
    );
    let load = marketscope_loadgen::run_against(&fleet, &config);
    fleet.stop();

    if config.hold_connections > 0 {
        eprintln!(
            "loadgen: held {} keep-alive connections (threads peak {})",
            load.held_connections, load.resources.threads_peak
        );
    }

    for step in &load.steps {
        eprintln!(
            "loadgen: {:>3} workers -> {:>8.1} rps ({} errors)",
            step.workers, step.achieved_rps, step.errors
        );
    }
    let report = BenchReport {
        label,
        seed,
        scale_divisor: divisor as u64,
        version: env!("CARGO_PKG_VERSION").to_owned(),
        profile: marketscope_telemetry::perf::build_profile().to_owned(),
        load,
        stages: Vec::new(),
    };
    let path = report.write(&out_dir).expect("write bench report");
    eprintln!(
        "bench report written to {} ({:.0} rps achieved, rss peak {:.1} MiB)",
        path.display(),
        report.load.achieved_rps(),
        report.load.resources.rss_peak_bytes as f64 / (1024.0 * 1024.0)
    );
}

fn bench_diff(mut args: impl Iterator<Item = String>) {
    let old_path = args
        .next()
        .unwrap_or_else(|| usage("bench-diff needs OLD.json NEW.json"));
    let new_path = args
        .next()
        .unwrap_or_else(|| usage("bench-diff needs OLD.json NEW.json"));
    let mut thresholds = DiffThresholds::default();
    while let Some(arg) = args.next() {
        let mut f = |name: &str| -> f64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage(&format!("{name} needs a number")))
        };
        match arg.as_str() {
            "--max-rps-drop" => thresholds.max_rps_drop = f("--max-rps-drop"),
            "--max-p99-rise" => thresholds.max_p99_rise = f("--max-p99-rise"),
            "--p99-floor-ns" => thresholds.p99_floor_ns = f("--p99-floor-ns") as u64,
            "--max-rss-rise" => thresholds.max_rss_rise = f("--max-rss-rise"),
            "--max-alloc-rise" => thresholds.max_alloc_rise = f("--max-alloc-rise"),
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    let old = read_bench(&old_path);
    let new = read_bench(&new_path);
    match diff(&old, &new, &thresholds) {
        Ok(regressions) if regressions.is_empty() => {
            eprintln!("bench-diff: no regressions ({old_path} -> {new_path})");
        }
        Ok(regressions) => {
            eprintln!(
                "bench-diff: {} regression(s) ({old_path} -> {new_path}):",
                regressions.len()
            );
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("bench-diff: {e}");
            std::process::exit(2);
        }
    }
}

/// Read and parse a BENCH file; any failure is an exit-2 comparability
/// error, never a regression.
fn read_bench(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench-diff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench-diff: {path} is not valid JSON: {e:?}");
        std::process::exit(2);
    })
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: loadgen run [--seed N] [--divisor N] [--profile smoke|saturation|c10k|fanout] [--label LABEL] [--out DIR] [--max-inflight N]"
    );
    eprintln!(
        "       loadgen bench-diff OLD.json NEW.json [--max-rps-drop F] [--max-p99-rise F] [--p99-floor-ns N] [--max-rss-rise F] [--max-alloc-rise F]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
