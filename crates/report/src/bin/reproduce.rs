//! Regenerate every table and figure of the paper from a full simulated
//! campaign.
//!
//! ```text
//! reproduce [--seed N] [--scale small|medium|large] [--only ARTIFACT] [--out DIR] [--progress]
//!           [--trace-out FILE] [--chaos-seed N] [--chaos-profile light|heavy]
//!           [--ops-bundle DIR] [--bench LABEL] [--bench-profile smoke|fanout]
//! ```
//!
//! `--trace-out FILE` samples every fetch (trace rate 1.0) and writes the
//! merged crawler + fleet + analysis span journal as Chrome trace-event
//! JSON — load it at `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! `--chaos-seed N` runs the campaign under seeded market chaos (resets,
//! stalls, truncated downloads, 5xx bursts, downtime windows — see
//! `marketscope_market::chaos`); the same seed injects the same fault
//! sequence every run. `--chaos-profile` picks the intensity (default
//! `light`); the `ops` artifact gains a "Degraded markets" section.
//!
//! `--ops-bundle DIR` writes the campaign's whole operational record —
//! `metrics.prom` (Prometheus exposition), `series.json` (scraped time
//! series), `slo.json` (burn-rate verdicts), `trace.json` (Chrome trace
//! events), `events.json` (structured log) — for archiving or diffing.
//!
//! `--bench LABEL` follows the campaign with a short load-generation
//! pass against a fresh fleet — the `marketscope_loadgen` smoke profile
//! by default, or the open-loop `fanout` profile with
//! `--bench-profile fanout`
//! over the same world, and writes a schema-versioned `BENCH_LABEL.json`
//! — achieved RPS, per-endpoint latency quantiles, resource peaks, and
//! the campaign's per-stage analysis timings. Compare two of them with
//! `loadgen bench-diff`.

// A CLI binary reports fatal setup/IO errors by panicking with context.
#![allow(clippy::disallowed_methods)]

use marketscope_ecosystem::Scale;
use marketscope_loadgen::{BenchReport, LoadConfig, StageTiming};
use marketscope_market::{ChaosIntensity, ChaosProfile, MarketFleet};
use marketscope_report::experiments as ex;
use marketscope_report::{run_campaign, Campaign, CampaignConfig};
use std::sync::Arc;

fn main() {
    let mut config = CampaignConfig::default();
    let mut only: Option<String> = None;
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut ops_bundle: Option<std::path::PathBuf> = None;
    let mut bench_label: Option<String> = None;
    let mut bench_profile = "smoke".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                config.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--scale" => {
                config.scale = match args.next().as_deref() {
                    Some("small") => Scale::SMALL,
                    Some("medium") => Scale::MEDIUM,
                    Some("large") => Scale::LARGE,
                    _ => usage("--scale needs small|medium|large"),
                };
            }
            "--only" => {
                only = Some(args.next().unwrap_or_else(|| usage("--only needs a name")));
            }
            "--out" => {
                out_dir = Some(std::path::PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--out needs a directory")),
                ));
            }
            "--trace-out" => {
                trace_out = Some(std::path::PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--trace-out needs a file path")),
                ));
                config.trace_sample = 1.0;
            }
            "--chaos-seed" => {
                let seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--chaos-seed needs an integer"));
                config.chaos = Some(ChaosProfile {
                    seed,
                    intensity: config.chaos.map_or(ChaosIntensity::Light, |c| c.intensity),
                });
            }
            "--chaos-profile" => {
                let intensity: ChaosIntensity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--chaos-profile needs light|heavy"));
                let seed = config.chaos.map_or(0, |c| c.seed);
                config.chaos = Some(ChaosProfile { seed, intensity });
            }
            "--ops-bundle" => {
                ops_bundle = Some(std::path::PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--ops-bundle needs a directory")),
                ));
            }
            "--bench" => {
                bench_label = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--bench needs a label")),
                );
            }
            "--bench-profile" => {
                bench_profile = args
                    .next()
                    .unwrap_or_else(|| usage("--bench-profile needs smoke|fanout"));
                if !matches!(bench_profile.as_str(), "smoke" | "fanout") {
                    usage("--bench-profile needs smoke|fanout");
                }
            }
            "--progress" => config.progress = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other:?}")),
        }
    }

    eprintln!(
        "generating world (seed {:#x}) and crawling {} target listings ...",
        config.seed,
        config.scale.total_listings()
    );
    let start = std::time::Instant::now();
    let campaign = run_campaign(config);
    eprintln!(
        "campaign done in {:.1}s: {} listings, {} APK digests, {} unique apps",
        start.elapsed().as_secs_f64(),
        campaign.snapshot.total_listings(),
        campaign.snapshot.total_apks(),
        campaign.analyzed.apps.len()
    );

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    for (name, render) in artifacts(&campaign) {
        if only.as_deref().map_or(true, |o| o == name) {
            println!("{render}");
            println!();
            if let Some(dir) = &out_dir {
                std::fs::write(dir.join(format!("{name}.txt")), &render)
                    .expect("write artifact file");
            }
        }
    }
    if let Some(dir) = &out_dir {
        eprintln!("artifacts written to {}", dir.display());
    }
    if let Some(path) = &trace_out {
        std::fs::write(path, marketscope_telemetry::chrome_trace(&campaign.traces))
            .expect("write trace file");
        eprintln!(
            "trace written to {} ({} spans; load at chrome://tracing or ui.perfetto.dev)",
            path.display(),
            campaign.traces.records.len()
        );
    }
    if let Some(dir) = &ops_bundle {
        let files = marketscope_report::write_ops_bundle(dir, &campaign).expect("write ops bundle");
        let firing = campaign
            .slo
            .iter()
            .filter(|v| v.state == marketscope_telemetry::AlertState::Firing)
            .count();
        eprintln!(
            "ops bundle written to {} ({}; {} alerts fired, {} still firing)",
            dir.display(),
            files.join(", "),
            campaign.slo.iter().map(|v| v.fired).sum::<u64>(),
            firing
        );
    }
    if let Some(label) = bench_label {
        eprintln!("bench: running loadgen {bench_profile} profile against a fresh fleet ...");
        // The campaign stopped its fleet; the perf baseline gets its own
        // over the same world so the load run measures serving, not the
        // crawl's leftovers.
        let fleet = MarketFleet::spawn(Arc::clone(&campaign.world)).expect("spawn fleet");
        let load_config = match bench_profile.as_str() {
            "fanout" => LoadConfig::fanout(config.seed),
            _ => LoadConfig::smoke(config.seed),
        };
        let load = marketscope_loadgen::run_against(&fleet, &load_config);
        fleet.stop();
        let report = BenchReport {
            label,
            seed: config.seed,
            scale_divisor: config.scale.divisor as u64,
            version: env!("CARGO_PKG_VERSION").to_owned(),
            profile: marketscope_telemetry::perf::build_profile().to_owned(),
            load,
            stages: campaign
                .ops
                .analysis
                .iter()
                .map(|s| StageTiming {
                    stage: s.stage.clone(),
                    items: s.items,
                    elapsed_us: s.elapsed_us,
                })
                .collect(),
        };
        let dir = out_dir
            .clone()
            .unwrap_or_else(|| std::path::PathBuf::from("."));
        let path = report.write(&dir).expect("write bench report");
        eprintln!(
            "bench report written to {} ({:.0} rps achieved)",
            path.display(),
            report.load.achieved_rps()
        );
    }
}

/// All artifacts in paper order.
fn artifacts(c: &Campaign) -> Vec<(&'static str, String)> {
    vec![
        ("table1", ex::table1::run(&c.snapshot).render()),
        ("fig1", ex::fig1::run(&c.snapshot).render()),
        ("fig2", ex::fig2::run(&c.snapshot).render()),
        ("fig3", ex::fig3::run(&c.snapshot).render()),
        ("fig4", ex::fig4::run(&c.snapshot).render()),
        ("fig5", ex::fig5::run(&c.analyzed, &c.labels).render()),
        (
            "table2",
            ex::table2::run(&c.analyzed, &c.labels, 10).render(),
        ),
        ("fig6", ex::fig6::run(&c.snapshot).render()),
        ("fig7", ex::fig7::run(&c.analyzed).render()),
        ("fig8", ex::fig8::run(&c.snapshot).render()),
        ("fig9", ex::fig9::run(&c.snapshot).render()),
        ("table3", ex::table3::run(&c.analyzed).render()),
        ("fig10", ex::fig10::run(&c.analyzed).render()),
        ("fig11", ex::fig11::run(&c.analyzed).render()),
        ("leaks", ex::sec6_leaks::run(&c.analyzed).render()),
        ("table4", ex::table4::run(&c.analyzed).render()),
        ("table5", ex::table5::run(&c.analyzed, 10).render()),
        ("fig12", ex::fig12::run(&c.analyzed, 15).render()),
        ("table6", ex::table6::run(&c.analyzed, &c.second).render()),
        ("fig13", ex::fig13::run(&c.analyzed, &c.snapshot).render()),
        ("sec53", ex::sec53_identity::run(&c.snapshot).render()),
        ("sec64", ex::sec64_repackaged::run(&c.analyzed).render()),
        ("ops", c.ops.render()),
    ]
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: reproduce [--seed N] [--scale small|medium|large] [--only ARTIFACT] [--out DIR] [--progress] [--trace-out FILE] [--chaos-seed N] [--chaos-profile light|heavy] [--ops-bundle DIR] [--bench LABEL] [--bench-profile smoke|fanout]"
    );
    eprintln!("artifacts: table1..table6, fig1..fig13, leaks, sec53, sec64, ops");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
