//! The ops bundle: one directory capturing a campaign's whole
//! operational record, for archiving as a CI artifact or diffing
//! between runs.
//!
//! `reproduce --ops-bundle DIR` writes five files:
//!
//! * `metrics.prom` — the merged end-of-campaign registry in Prometheus
//!   text exposition format (what `GET /__metrics` served);
//! * `series.json` — the scraper's windowed time series (counter deltas,
//!   gauge levels, per-tick histogram summaries);
//! * `slo.json` — the final SLO verdicts, burn rates and alert counters;
//! * `trace.json` — the merged span journal as Chrome trace-event JSON;
//! * `events.json` — the structured event log, time-ordered.

use crate::pipeline::Campaign;
use marketscope_market::opsjson;
use std::io;
use std::path::Path;

/// Write the full ops bundle for `campaign` into `dir` (created if
/// missing). Returns the five file names written, in write order.
pub fn write_ops_bundle(dir: &Path, campaign: &Campaign) -> io::Result<Vec<&'static str>> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("metrics.prom"), campaign.telemetry.render())?;
    std::fs::write(
        dir.join("series.json"),
        opsjson::series_json(&campaign.series).to_string_compact(),
    )?;
    std::fs::write(
        dir.join("slo.json"),
        opsjson::slo_json(&campaign.slo).to_string_compact(),
    )?;
    std::fs::write(
        dir.join("trace.json"),
        marketscope_telemetry::chrome_trace(&campaign.traces),
    )?;
    std::fs::write(
        dir.join("events.json"),
        opsjson::log_json(&campaign.events).to_string_compact(),
    )?;
    Ok(vec![
        "metrics.prom",
        "series.json",
        "slo.json",
        "trace.json",
        "events.json",
    ])
}
