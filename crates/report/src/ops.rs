//! Operational summary of a campaign's crawl, computed from telemetry.
//!
//! The experiment artifacts answer the paper's questions; this module
//! answers the operator's: how many requests did each market serve, how
//! many failed, and how slow were the slow ones. Everything here is
//! derived from the merged fleet + crawler registries, so the numbers are
//! the same ones `GET /__metrics` exposes while a crawl runs.

use marketscope_telemetry::{
    slowest_traces, JournalSnapshot, LogEvent, LogSnapshot, RegistrySnapshot, SloVerdict,
    TraceSummary,
};

/// One market's serving-side and crawling-side totals.
#[derive(Debug, Clone)]
pub struct MarketOps {
    /// Market slug (or `androzoo` for the backfill repository).
    pub market: String,
    /// HTTP requests served.
    pub requests: u64,
    /// Non-200 responses (404 lookup misses, 429 throttles, ...).
    pub errors: u64,
    /// `errors / requests` (0 when no requests).
    pub error_rate: f64,
    /// Median handler latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile handler latency, microseconds.
    pub p99_us: u64,
    /// Listings the crawler fetched from this market.
    pub listings: u64,
    /// APKs the crawler harvested from this market.
    pub apks: u64,
}

/// One market's degradation picture: what the chaos layer injected into
/// its server and how the crawler weathered it.
#[derive(Debug, Clone)]
pub struct DegradedMarket {
    /// Market slug.
    pub market: String,
    /// Faults the server-side injector fired (resets, stalls, truncated
    /// bodies, 5xx, downtime resets).
    pub faults_injected: u64,
    /// Terminal crawler-side fetch failures, summed over error kinds.
    pub fetch_errors: u64,
    /// Nonzero `(kind, count)` breakdown of `fetch_errors`, kind-sorted.
    pub error_kinds: Vec<(String, u64)>,
    /// Times the market was quarantined mid-harvest.
    pub quarantines: u64,
    /// APK fetches deferred past a quarantine to the revisit pass.
    pub deferred: u64,
    /// Deferred fetches the market answered on revisit.
    pub recovered: u64,
}

/// Aggregate client-side resilience totals (the retry policy and circuit
/// breaker share one unlabeled instrument set).
#[derive(Debug, Clone, Copy)]
pub struct ResilienceOps {
    /// Status-level retries the policy performed.
    pub retries: u64,
    /// Total nanoseconds slept across those retries.
    pub backoff_nanos: u64,
    /// Requests fast-failed by an open circuit.
    pub fast_fails: u64,
    /// Breaker transitions to open.
    pub breaker_opens: u64,
    /// Breaker transitions back to closed.
    pub breaker_closes: u64,
}

/// Process-level resource picture: the `telemetry::perf` sampler's peak
/// gauges plus the build-info marker, read back from the snapshot.
#[derive(Debug, Clone)]
pub struct PerfOps {
    /// Peak resident set observed by the sampler, bytes (0 when the
    /// platform exposes no `/proc/self/status`).
    pub rss_peak_bytes: u64,
    /// Peak OS thread count observed by the sampler.
    pub threads_peak: u64,
    /// `marketscope_build_info` version label, when registered.
    pub build_version: Option<String>,
    /// `marketscope_build_info` profile label (`debug`/`release`).
    pub build_profile: Option<String>,
}

/// One analysis stage's recorded work, read back from the engine's
/// telemetry instruments.
#[derive(Debug, Clone)]
pub struct StageOps {
    /// Stage name, as declared in [`crate::engine::STAGE_GRAPH`].
    pub stage: String,
    /// Items the stage processed (listings for dedup, apps or candidate
    /// pairs downstream).
    pub items: u64,
    /// Recorded stage latency in microseconds (log2-bucket approximation;
    /// with one run per stage this is the run's wall clock).
    pub elapsed_us: u64,
}

/// Fleet-wide operational totals plus a per-market breakdown.
#[derive(Debug, Clone)]
pub struct OpsSummary {
    /// Per-market rows, sorted by market slug.
    pub markets: Vec<MarketOps>,
    /// Total HTTP requests served across the fleet.
    pub total_requests: u64,
    /// Total non-200 responses across the fleet.
    pub total_errors: u64,
    /// Markets that saw injected faults, terminal fetch errors or a
    /// quarantine, sorted by market slug; empty for a clean campaign.
    pub degraded: Vec<DegradedMarket>,
    /// Client-side resilience totals; `None` when neither the retry
    /// policy nor the breaker ever fired.
    pub resilience: Option<ResilienceOps>,
    /// Analysis-engine stage rows, in stage-graph order; empty when the
    /// snapshot holds no engine telemetry.
    pub analysis: Vec<StageOps>,
    /// Resource peaks and build identity; `None` when no perf sampler
    /// or build-info gauge ever touched the snapshot.
    pub perf: Option<PerfOps>,
    /// Slowest sampled traces (top-k by root-span duration), filled by
    /// [`OpsSummary::with_traces`]; empty when tracing was off.
    pub slowest: Vec<TraceSummary>,
    /// SLO verdicts from the fleet's live evaluator, filled by
    /// [`OpsSummary::with_slo`]; empty when the campaign ran without the
    /// ops plane.
    pub slo: Vec<SloVerdict>,
    /// Newest structured log events (already time-ordered), filled by
    /// [`OpsSummary::with_events`].
    pub events: Vec<LogEvent>,
}

impl OpsSummary {
    /// Compute the summary from a (merged) registry snapshot.
    pub fn from_snapshot(snap: &RegistrySnapshot) -> OpsSummary {
        let statuses = snap.label_values("status");
        let mut markets = Vec::new();
        let mut total_requests = 0;
        let mut total_errors = 0;
        for market in snap.label_values("market") {
            let labels = [("market", market.as_str())];
            let requests = snap
                .counter_value("marketscope_net_requests_total", &labels)
                .unwrap_or(0);
            let errors: u64 = statuses
                .iter()
                .filter(|s| *s != "200")
                .map(|s| {
                    snap.counter_value(
                        "marketscope_net_responses_total",
                        &[("market", market.as_str()), ("status", s.as_str())],
                    )
                    .unwrap_or(0)
                })
                .sum();
            let (p50_us, p99_us) = snap
                .histogram("marketscope_net_handler_nanos", &labels)
                .map(|h| (h.p50() / 1_000, h.p99() / 1_000))
                .unwrap_or((0, 0));
            let listings = snap
                .counter_value("marketscope_crawler_listings_fetched_total", &labels)
                .unwrap_or(0);
            let apks = snap
                .counter_value("marketscope_crawler_apks_harvested_total", &labels)
                .unwrap_or(0);
            if requests == 0 && listings == 0 && apks == 0 {
                continue;
            }
            total_requests += requests;
            total_errors += errors;
            markets.push(MarketOps {
                market,
                requests,
                errors,
                error_rate: if requests == 0 {
                    0.0
                } else {
                    errors as f64 / requests as f64
                },
                p50_us,
                p99_us,
                listings,
                apks,
            });
        }
        let fault_kinds = snap.label_values("fault");
        let error_kinds = snap.label_values("kind");
        let mut degraded = Vec::new();
        for market in snap.label_values("market") {
            let faults_injected: u64 = fault_kinds
                .iter()
                .map(|f| {
                    snap.counter_value(
                        "marketscope_net_faults_injected_total",
                        &[("fault", f.as_str()), ("market", market.as_str())],
                    )
                    .unwrap_or(0)
                })
                .sum();
            let kinds: Vec<(String, u64)> = error_kinds
                .iter()
                .filter_map(|k| {
                    let n = snap
                        .counter_value(
                            "marketscope_crawler_fetch_errors_total",
                            &[("kind", k.as_str()), ("market", market.as_str())],
                        )
                        .unwrap_or(0);
                    (n > 0).then(|| (k.clone(), n))
                })
                .collect();
            let fetch_errors: u64 = kinds.iter().map(|(_, n)| n).sum();
            let labels = [("market", market.as_str())];
            let quarantines = snap
                .counter_value("marketscope_crawler_quarantines_total", &labels)
                .unwrap_or(0);
            let deferred = snap
                .counter_value("marketscope_crawler_deferred_fetches_total", &labels)
                .unwrap_or(0);
            let recovered = snap
                .counter_value("marketscope_crawler_revisit_recovered_total", &labels)
                .unwrap_or(0);
            if faults_injected == 0 && fetch_errors == 0 && quarantines == 0 {
                continue;
            }
            degraded.push(DegradedMarket {
                market,
                faults_injected,
                fetch_errors,
                error_kinds: kinds,
                quarantines,
                deferred,
                recovered,
            });
        }
        let resilience = {
            let c = |name| snap.counter_value(name, &[]).unwrap_or(0);
            let t = |to| {
                snap.counter_value(
                    "marketscope_net_client_breaker_transitions_total",
                    &[("to", to)],
                )
                .unwrap_or(0)
            };
            let ops = ResilienceOps {
                retries: c("marketscope_net_client_resilient_retries_total"),
                backoff_nanos: c("marketscope_net_client_backoff_nanos_total"),
                fast_fails: c("marketscope_net_client_fast_fails_total"),
                breaker_opens: t("open"),
                breaker_closes: t("closed"),
            };
            (ops.retries + ops.fast_fails + ops.breaker_opens > 0).then_some(ops)
        };
        let analysis = crate::engine::STAGE_GRAPH
            .iter()
            .filter_map(|spec| {
                let labels = [("stage", spec.name)];
                let hist = snap.histogram(crate::engine::STAGE_LATENCY_METRIC, &labels)?;
                if hist.count() == 0 {
                    return None;
                }
                // mean × count collapses to the recorded duration when the
                // stage ran once (modulo log2 bucketing).
                let elapsed_us = (hist.mean() * hist.count() as f64 / 1_000.0) as u64;
                Some(StageOps {
                    stage: spec.name.to_string(),
                    items: snap
                        .counter_value(crate::engine::STAGE_ITEMS_METRIC, &labels)
                        .unwrap_or(0),
                    elapsed_us,
                })
            })
            .collect();
        let perf = {
            let rss_peak = snap
                .gauge_value("marketscope_process_rss_peak_bytes", &[])
                .unwrap_or(0)
                .max(0) as u64;
            let threads_peak = snap
                .gauge_value("marketscope_process_threads_peak", &[])
                .unwrap_or(0)
                .max(0) as u64;
            let build = snap
                .gauges
                .keys()
                .find(|id| id.name == "marketscope_build_info");
            (rss_peak > 0 || threads_peak > 0 || build.is_some()).then(|| PerfOps {
                rss_peak_bytes: rss_peak,
                threads_peak,
                build_version: build.and_then(|id| id.label("version").map(str::to_owned)),
                build_profile: build.and_then(|id| id.label("profile").map(str::to_owned)),
            })
        };
        OpsSummary {
            markets,
            total_requests,
            total_errors,
            degraded,
            resilience,
            analysis,
            perf,
            slowest: Vec::new(),
            slo: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Attach the top-`k` slowest traces from a trace journal snapshot.
    pub fn with_traces(mut self, traces: &JournalSnapshot, k: usize) -> OpsSummary {
        self.slowest = slowest_traces(traces, k);
        self
    }

    /// Attach the fleet's final SLO verdicts.
    pub fn with_slo(mut self, verdicts: &[SloVerdict]) -> OpsSummary {
        self.slo = verdicts.to_vec();
        self
    }

    /// Attach the newest `k` structured log events.
    pub fn with_events(mut self, events: &LogSnapshot, k: usize) -> OpsSummary {
        self.events = events.tail(k).to_vec();
        self
    }

    /// Render the summary as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::from("Crawl operations summary (from telemetry)\n");
        out.push_str(&format!(
            "{:<14} {:>9} {:>8} {:>7} {:>8} {:>8} {:>9} {:>7}\n",
            "market", "requests", "errors", "err%", "p50(us)", "p99(us)", "listings", "apks"
        ));
        for m in &self.markets {
            out.push_str(&format!(
                "{:<14} {:>9} {:>8} {:>6.2}% {:>8} {:>8} {:>9} {:>7}\n",
                m.market,
                m.requests,
                m.errors,
                100.0 * m.error_rate,
                m.p50_us,
                m.p99_us,
                m.listings,
                m.apks
            ));
        }
        out.push_str(&format!(
            "total: {} requests, {} errors ({:.2}%)\n",
            self.total_requests,
            self.total_errors,
            if self.total_requests == 0 {
                0.0
            } else {
                100.0 * self.total_errors as f64 / self.total_requests as f64
            }
        ));
        if !self.degraded.is_empty() {
            out.push_str("\nDegraded markets\n");
            out.push_str(&format!(
                "{:<14} {:>7} {:>7} {:>6} {:>9} {:>10}  {}\n",
                "market", "faults", "errors", "quar", "deferred", "recovered", "error kinds"
            ));
            for d in &self.degraded {
                let kinds: Vec<String> = d
                    .error_kinds
                    .iter()
                    .map(|(k, n)| format!("{k}={n}"))
                    .collect();
                out.push_str(&format!(
                    "{:<14} {:>7} {:>7} {:>6} {:>9} {:>10}  {}\n",
                    d.market,
                    d.faults_injected,
                    d.fetch_errors,
                    d.quarantines,
                    d.deferred,
                    d.recovered,
                    kinds.join(" ")
                ));
            }
        }
        if let Some(r) = &self.resilience {
            out.push_str(&format!(
                "resilience: {} retries ({:.1}ms backoff), {} fast fails, breaker opened {} / closed {}\n",
                r.retries,
                r.backoff_nanos as f64 / 1e6,
                r.fast_fails,
                r.breaker_opens,
                r.breaker_closes
            ));
        }
        if !self.analysis.is_empty() {
            out.push_str("\nAnalysis engine stages\n");
            out.push_str(&format!(
                "{:<14} {:>9} {:>12}\n",
                "stage", "items", "elapsed(us)"
            ));
            for s in &self.analysis {
                out.push_str(&format!(
                    "{:<14} {:>9} {:>12}\n",
                    s.stage, s.items, s.elapsed_us
                ));
            }
        }
        if let Some(p) = &self.perf {
            out.push_str(&format!(
                "perf: rss peak {:.1} MiB, {} threads peak",
                p.rss_peak_bytes as f64 / (1024.0 * 1024.0),
                p.threads_peak
            ));
            if let (Some(v), Some(pr)) = (&p.build_version, &p.build_profile) {
                out.push_str(&format!(" (build {v}, {pr})"));
            }
            out.push('\n');
        }
        if !self.slowest.is_empty() {
            out.push_str("\nSlowest traces\n");
            out.push_str(&format!(
                "{:<18} {:<26} {:>9} {:>6}  {}\n",
                "trace", "root", "dur(us)", "spans", "hotspots"
            ));
            for t in &self.slowest {
                let hotspots: Vec<String> = t
                    .breakdown
                    .iter()
                    .take(3)
                    .map(|(name, self_nanos)| format!("{name} {}us", self_nanos / 1_000))
                    .collect();
                out.push_str(&format!(
                    "{:016x}   {:<26} {:>9} {:>6}  {}\n",
                    t.trace_id,
                    t.root_name,
                    t.duration_nanos / 1_000,
                    t.span_count,
                    hotspots.join("; ")
                ));
            }
        }
        if !self.slo.is_empty() {
            out.push_str("\nSLO / Alerts\n");
            out.push_str(&format!(
                "{:<20} {:<9} {:>10} {:>10} {:>10} {:>6} {:>9}\n",
                "rule", "state", "fast", "slow", "threshold", "fired", "resolved"
            ));
            for v in &self.slo {
                out.push_str(&format!(
                    "{:<20} {:<9} {:>10.4} {:>10.4} {:>10.4} {:>6} {:>9}\n",
                    v.rule,
                    v.state.as_str(),
                    v.fast_burn,
                    v.slow_burn,
                    v.threshold,
                    v.fired,
                    v.resolved
                ));
            }
        }
        if !self.events.is_empty() {
            out.push_str("\nRecent events\n");
            for e in &self.events {
                let fields: Vec<String> =
                    e.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
                let trace = match (e.trace_id, e.span_id) {
                    (Some(t), Some(s)) => format!("  [{t:016x}:{s:016x}]"),
                    _ => String::new(),
                };
                out.push_str(&format!(
                    "{:<5} {:<20} {} {}{}\n",
                    e.level.as_str(),
                    e.target,
                    e.message,
                    fields.join(" "),
                    trace
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marketscope_telemetry::Registry;
    use std::time::Duration;

    #[test]
    fn summary_combines_server_and_crawler_views() {
        let fleet = Registry::new();
        let labels = [("market", "gp")];
        fleet
            .counter("marketscope_net_requests_total", &labels)
            .add(10);
        fleet
            .counter(
                "marketscope_net_responses_total",
                &[("market", "gp"), ("status", "200")],
            )
            .add(8);
        fleet
            .counter(
                "marketscope_net_responses_total",
                &[("market", "gp"), ("status", "429")],
            )
            .add(2);
        let hist = fleet.histogram("marketscope_net_handler_nanos", &labels);
        for _ in 0..10 {
            hist.record_duration(Duration::from_micros(300));
        }

        let crawler = Registry::new();
        crawler
            .counter("marketscope_crawler_listings_fetched_total", &labels)
            .add(7);
        crawler
            .counter("marketscope_crawler_apks_harvested_total", &labels)
            .add(5);

        let merged = fleet.snapshot().merge(&crawler.snapshot());
        let ops = OpsSummary::from_snapshot(&merged);
        assert_eq!(ops.markets.len(), 1);
        let gp = &ops.markets[0];
        assert_eq!(gp.requests, 10);
        assert_eq!(gp.errors, 2);
        assert!((gp.error_rate - 0.2).abs() < 1e-9);
        assert_eq!(gp.listings, 7);
        assert_eq!(gp.apks, 5);
        assert!(gp.p99_us >= gp.p50_us && gp.p50_us > 0);
        let rendered = ops.render();
        assert!(rendered.contains("gp"));
        assert!(rendered.contains("total: 10 requests, 2 errors"));
    }

    #[test]
    fn analysis_stages_render_in_graph_order() {
        let registry = Registry::new();
        // Record out of graph order; the summary must re-sort.
        for stage in ["av", "dedup", "code_clones"] {
            let labels = [("stage", stage)];
            registry
                .histogram(crate::engine::STAGE_LATENCY_METRIC, &labels)
                .record_duration(Duration::from_micros(1_500));
            registry
                .counter(crate::engine::STAGE_ITEMS_METRIC, &labels)
                .add(42);
        }
        let ops = OpsSummary::from_snapshot(&registry.snapshot());
        let stages: Vec<&str> = ops.analysis.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(stages, ["dedup", "code_clones", "av"]);
        for s in &ops.analysis {
            assert_eq!(s.items, 42);
            assert!(s.elapsed_us > 0, "stage {} lost its latency", s.stage);
        }
        let rendered = ops.render();
        assert!(rendered.contains("Analysis engine stages"));
        assert!(rendered.contains("dedup"));
    }

    #[test]
    fn slowest_traces_render_after_with_traces() {
        use marketscope_telemetry::trace::{Tracer, TracerConfig};
        use std::sync::Arc;
        let tracer = Arc::new(Tracer::new(TracerConfig::always(64)));
        let root = tracer.root_span("crawler", "apk gp/com.example");
        let child = tracer.span("crawler", "digest");
        child.finish();
        root.finish();
        let ops = OpsSummary::from_snapshot(&Registry::new().snapshot())
            .with_traces(&tracer.snapshot(), 5);
        assert_eq!(ops.slowest.len(), 1);
        assert_eq!(ops.slowest[0].span_count, 2);
        let rendered = ops.render();
        assert!(rendered.contains("Slowest traces"));
        assert!(rendered.contains("apk gp/com.example"));
        assert!(rendered.contains("crawler:digest"));
    }

    #[test]
    fn degraded_markets_and_resilience_render() {
        let registry = Registry::new();
        registry
            .counter(
                "marketscope_net_faults_injected_total",
                &[("fault", "reset"), ("market", "tencent_myapp")],
            )
            .add(9);
        registry
            .counter(
                "marketscope_crawler_fetch_errors_total",
                &[("kind", "io"), ("market", "tencent_myapp")],
            )
            .add(4);
        registry
            .counter(
                "marketscope_crawler_quarantines_total",
                &[("market", "tencent_myapp")],
            )
            .inc();
        registry
            .counter(
                "marketscope_crawler_deferred_fetches_total",
                &[("market", "tencent_myapp")],
            )
            .add(12);
        registry
            .counter(
                "marketscope_crawler_revisit_recovered_total",
                &[("market", "tencent_myapp")],
            )
            .add(10);
        registry
            .counter("marketscope_net_client_resilient_retries_total", &[])
            .add(6);
        registry
            .counter("marketscope_net_client_backoff_nanos_total", &[])
            .add(3_000_000);
        registry
            .counter(
                "marketscope_net_client_breaker_transitions_total",
                &[("to", "open")],
            )
            .inc();

        let ops = OpsSummary::from_snapshot(&registry.snapshot());
        assert_eq!(ops.degraded.len(), 1);
        let d = &ops.degraded[0];
        assert_eq!(d.faults_injected, 9);
        assert_eq!(d.fetch_errors, 4);
        assert_eq!(d.error_kinds, vec![("io".to_string(), 4)]);
        assert_eq!((d.quarantines, d.deferred, d.recovered), (1, 12, 10));
        let r = ops.resilience.expect("resilience totals present");
        assert_eq!((r.retries, r.breaker_opens), (6, 1));
        let rendered = ops.render();
        assert!(rendered.contains("Degraded markets"), "{rendered}");
        assert!(rendered.contains("io=4"), "{rendered}");
        assert!(rendered.contains("6 retries"), "{rendered}");
    }

    #[test]
    fn clean_campaigns_render_no_degradation_section() {
        let registry = Registry::new();
        registry
            .counter("marketscope_net_requests_total", &[("market", "gp")])
            .add(3);
        let ops = OpsSummary::from_snapshot(&registry.snapshot());
        assert!(ops.degraded.is_empty());
        assert!(ops.resilience.is_none());
        assert!(!ops.render().contains("Degraded markets"));
        assert!(!ops.render().contains("resilience:"));
    }

    #[test]
    fn perf_section_reads_sampler_and_build_gauges() {
        let registry = Registry::new();
        registry
            .gauge("marketscope_process_rss_peak_bytes", &[])
            .set(128 * 1024 * 1024);
        registry
            .gauge("marketscope_process_threads_peak", &[])
            .set(22);
        marketscope_telemetry::perf::register_build_info(&registry, "0.1.0", "debug");
        let ops = OpsSummary::from_snapshot(&registry.snapshot());
        let p = ops.perf.clone().expect("perf section present");
        assert_eq!(p.rss_peak_bytes, 128 * 1024 * 1024);
        assert_eq!(p.threads_peak, 22);
        assert_eq!(p.build_version.as_deref(), Some("0.1.0"));
        assert_eq!(p.build_profile.as_deref(), Some("debug"));
        let rendered = ops.render();
        assert!(rendered.contains("rss peak 128.0 MiB"), "{rendered}");
        assert!(rendered.contains("build 0.1.0, debug"), "{rendered}");
        // An untouched snapshot has no perf section at all.
        assert!(OpsSummary::from_snapshot(&Registry::new().snapshot())
            .perf
            .is_none());
    }

    #[test]
    fn slo_and_events_sections_render() {
        use marketscope_telemetry::{AlertState, EventLog, LogLevel};
        let log = EventLog::new(8);
        log.record(
            LogLevel::Warn,
            "telemetry.slo",
            "slo alert fired",
            &[("rule", "error_rate_5xx")],
        );
        let verdicts = vec![SloVerdict {
            rule: "error_rate_5xx".into(),
            state: AlertState::Resolved,
            fast_burn: 0.0,
            slow_burn: 0.01,
            threshold: 0.02,
            fired: 1,
            resolved: 1,
        }];
        let ops = OpsSummary::from_snapshot(&Registry::new().snapshot())
            .with_slo(&verdicts)
            .with_events(&log.snapshot(), 10);
        let rendered = ops.render();
        assert!(rendered.contains("SLO / Alerts"), "{rendered}");
        assert!(rendered.contains("error_rate_5xx"), "{rendered}");
        assert!(rendered.contains("resolved"), "{rendered}");
        assert!(rendered.contains("Recent events"), "{rendered}");
        assert!(rendered.contains("slo alert fired"), "{rendered}");
        // Without the ops plane neither section renders.
        let clean = OpsSummary::from_snapshot(&Registry::new().snapshot()).render();
        assert!(!clean.contains("SLO / Alerts"));
        assert!(!clean.contains("Recent events"));
    }

    #[test]
    fn idle_markets_are_omitted() {
        let registry = Registry::new();
        registry.counter("marketscope_net_requests_total", &[("market", "quiet")]);
        let ops = OpsSummary::from_snapshot(&registry.snapshot());
        assert!(ops.markets.is_empty());
        assert_eq!(ops.total_requests, 0);
    }
}
