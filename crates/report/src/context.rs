//! Shared analysis context: cross-market deduplication and the one-time
//! expensive passes every experiment reads from.
//!
//! The passes themselves are scheduled by the staged
//! [`AnalysisEngine`](crate::engine::AnalysisEngine);
//! [`Analyzed::compute`] is a thin wrapper over it.

use marketscope_analysis::av::AvReport;
use marketscope_analysis::fake::{FakeInput, FakeReport};
use marketscope_analysis::overpriv::OverprivilegeResult;
use marketscope_analysis::taint::LeakResult;
use marketscope_apk::digest::ApkDigest;
use marketscope_clonedetect::{ClonePair, SigCloneReport};
use marketscope_core::{DeveloperKey, MarketId};
use marketscope_crawler::Snapshot;
use marketscope_ecosystem::{LibCategory, World};
use marketscope_libdetect::LibraryReport;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

pub use crate::engine::{AnalysisEngine, EngineConfig, StageSpec, STAGE_GRAPH};

/// The stand-in for the paper's *manual* library labelling (AppBrain /
/// PrivacyGrade / Common-Library classifications): a map from library
/// root package to functional label, plus the ad-library subset.
#[derive(Debug, Clone, Default)]
pub struct LabelSource {
    /// Library package → human label ("Advertisement", "Development", ...).
    pub labels: HashMap<String, &'static str>,
    /// The ad-library package set (Figure 5b's input).
    pub ad_packages: HashSet<String>,
}

impl LabelSource {
    /// Derive labels from the generated world's catalog — the analogue of
    /// the paper's researchers looking up each top library's vendor.
    pub fn from_world(world: &World) -> LabelSource {
        let mut labels = HashMap::new();
        let mut ad_packages = HashSet::new();
        for spec in world.libraries.specs() {
            let label = match spec.category {
                LibCategory::Ad => "Advertisement",
                LibCategory::Analytics => "Analytics",
                LibCategory::SocialNetworking => "Social Networking",
                LibCategory::Development => "Development",
                LibCategory::Payment => "Payment",
                LibCategory::GameEngine => "Game Engine",
            };
            labels.insert(spec.package.clone(), label);
            if spec.category == LibCategory::Ad {
                ad_packages.insert(spec.package.clone());
            }
        }
        LabelSource {
            labels,
            ad_packages,
        }
    }

    /// Label for a detected library package (default "Unknown").
    pub fn label(&self, package: &str) -> &'static str {
        self.labels.get(package).copied().unwrap_or("Unknown")
    }
}

/// One unique app across markets: the paper's identity is
/// `(package, developer signature)`.
#[derive(Debug, Clone)]
pub struct UniqueApp {
    /// Package name.
    pub package: String,
    /// Display label.
    pub label: String,
    /// Signing key.
    pub developer: DeveloperKey,
    /// A representative digest (highest version seen), shared with the
    /// snapshot's listing — selecting a higher version swaps the `Arc`
    /// pointer instead of deep-copying the digest.
    pub digest: Arc<ApkDigest>,
    /// Markets listing the app, with the normalized install counter.
    pub markets: Vec<(MarketId, u64)>,
    /// Highest version code seen anywhere.
    pub max_version: u32,
}

/// All one-time analysis artifacts, aligned index-wise with `apps`.
pub struct Analyzed {
    /// Unique apps (with harvested APKs).
    pub apps: Vec<UniqueApp>,
    /// Per-market index into `apps`: positions of the apps listed in each
    /// market, ascending, each app at most once. Built during dedup so the
    /// market-scoped queries below never rescan the whole corpus.
    pub market_index: HashMap<MarketId, Vec<usize>>,
    /// Library detection output.
    pub lib_report: LibraryReport,
    /// Detected library root packages.
    pub lib_packages: HashSet<String>,
    /// Privacy-leak results (taint flows attributed host vs library),
    /// index-aligned with `apps`.
    pub leaks: Vec<LeakResult>,
    /// Clone-detection inputs (library code excluded).
    pub clone_inputs: Vec<marketscope_clonedetect::UniqueApp>,
    /// Signature-clone report.
    pub sig_report: SigCloneReport,
    /// Confirmed code-clone pairs.
    pub code_pairs: Vec<ClonePair>,
    /// Fake-detection inputs.
    pub fake_inputs: Vec<FakeInput>,
    /// Fake-detection report.
    pub fake_report: FakeReport,
    /// AV ensemble scans.
    pub av_reports: Vec<AvReport>,
    /// Over-privilege results.
    pub overpriv: Vec<OverprivilegeResult>,
}

/// The paper's malware bar: AV-rank ≥ 10.
pub const MALWARE_AV_RANK: usize = 10;

impl Analyzed {
    /// Run every shared pass over a snapshot, using the staged engine with
    /// the machine's available parallelism. Output is bit-identical to the
    /// sequential schedule (`EngineConfig::sequential()`) by construction.
    pub fn compute(snapshot: &Snapshot) -> Analyzed {
        AnalysisEngine::new(EngineConfig::default()).run(snapshot)
    }

    /// Indices of apps listed in a market (ascending, precomputed).
    pub fn apps_in(&self, market: MarketId) -> impl Iterator<Item = usize> + '_ {
        self.market_index
            .get(&market)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .copied()
    }

    /// Malware share of a market at the given AV-rank threshold.
    pub fn malware_share(&self, market: MarketId, threshold: usize) -> f64 {
        let mut total = 0usize;
        let mut hit = 0usize;
        for i in self.apps_in(market) {
            total += 1;
            if self.av_reports[i].rank >= threshold {
                hit += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            hit as f64 / total as f64
        }
    }

    /// Malware packages (AV-rank ≥ 10) listed in a market.
    pub fn malware_packages(&self, market: MarketId) -> Vec<String> {
        self.apps_in(market)
            .filter(|i| self.av_reports[*i].rank >= MALWARE_AV_RANK)
            .map(|i| self.apps[i].package.clone())
            .collect()
    }
}
