//! Shared analysis context: cross-market deduplication and the one-time
//! expensive passes every experiment reads from.

use marketscope_analysis::av::{AvReport, AvSimulator};
use marketscope_analysis::fake::{FakeDetector, FakeInput, FakeReport};
use marketscope_analysis::overpriv::{OverprivilegeAnalyzer, OverprivilegeResult};
use marketscope_apk::digest::ApkDigest;
use marketscope_clonedetect::{CloneDetector, ClonePair, SigCloneReport};
use marketscope_core::{DeveloperKey, MarketId};
use marketscope_crawler::Snapshot;
use marketscope_ecosystem::{LibCategory, World};
use marketscope_libdetect::{LibraryDetector, LibraryReport};
use std::collections::{HashMap, HashSet};

/// The stand-in for the paper's *manual* library labelling (AppBrain /
/// PrivacyGrade / Common-Library classifications): a map from library
/// root package to functional label, plus the ad-library subset.
#[derive(Debug, Clone, Default)]
pub struct LabelSource {
    /// Library package → human label ("Advertisement", "Development", ...).
    pub labels: HashMap<String, &'static str>,
    /// The ad-library package set (Figure 5b's input).
    pub ad_packages: HashSet<String>,
}

impl LabelSource {
    /// Derive labels from the generated world's catalog — the analogue of
    /// the paper's researchers looking up each top library's vendor.
    pub fn from_world(world: &World) -> LabelSource {
        let mut labels = HashMap::new();
        let mut ad_packages = HashSet::new();
        for spec in world.libraries.specs() {
            let label = match spec.category {
                LibCategory::Ad => "Advertisement",
                LibCategory::Analytics => "Analytics",
                LibCategory::SocialNetworking => "Social Networking",
                LibCategory::Development => "Development",
                LibCategory::Payment => "Payment",
                LibCategory::GameEngine => "Game Engine",
            };
            labels.insert(spec.package.clone(), label);
            if spec.category == LibCategory::Ad {
                ad_packages.insert(spec.package.clone());
            }
        }
        LabelSource {
            labels,
            ad_packages,
        }
    }

    /// Label for a detected library package (default "Unknown").
    pub fn label(&self, package: &str) -> &'static str {
        self.labels.get(package).copied().unwrap_or("Unknown")
    }
}

/// One unique app across markets: the paper's identity is
/// `(package, developer signature)`.
#[derive(Debug, Clone)]
pub struct UniqueApp {
    /// Package name.
    pub package: String,
    /// Display label.
    pub label: String,
    /// Signing key.
    pub developer: DeveloperKey,
    /// A representative digest (highest version seen).
    pub digest: ApkDigest,
    /// Markets listing the app, with the normalized install counter.
    pub markets: Vec<(MarketId, u64)>,
    /// Highest version code seen anywhere.
    pub max_version: u32,
}

/// All one-time analysis artifacts, aligned index-wise with `apps`.
pub struct Analyzed {
    /// Unique apps (with harvested APKs).
    pub apps: Vec<UniqueApp>,
    /// Library detection output.
    pub lib_report: LibraryReport,
    /// Detected library root packages.
    pub lib_packages: HashSet<String>,
    /// Clone-detection inputs (library code excluded).
    pub clone_inputs: Vec<marketscope_clonedetect::UniqueApp>,
    /// Signature-clone report.
    pub sig_report: SigCloneReport,
    /// Confirmed code-clone pairs.
    pub code_pairs: Vec<ClonePair>,
    /// Fake-detection inputs.
    pub fake_inputs: Vec<FakeInput>,
    /// Fake-detection report.
    pub fake_report: FakeReport,
    /// AV ensemble scans.
    pub av_reports: Vec<AvReport>,
    /// Over-privilege results.
    pub overpriv: Vec<OverprivilegeResult>,
}

/// The paper's malware bar: AV-rank ≥ 10.
pub const MALWARE_AV_RANK: usize = 10;

impl Analyzed {
    /// Run every shared pass over a snapshot.
    pub fn compute(snapshot: &Snapshot) -> Analyzed {
        // Deduplicate by (package, developer), keeping the
        // highest-version digest as representative.
        let mut index: HashMap<(String, DeveloperKey), usize> = HashMap::new();
        let mut apps: Vec<UniqueApp> = Vec::new();
        for (market, listing) in snapshot.iter() {
            let Some(digest) = &listing.digest else {
                continue;
            };
            let key = (listing.package.clone(), digest.developer);
            let downloads = listing.downloads.unwrap_or(0);
            match index.get(&key) {
                Some(&i) => {
                    let app = &mut apps[i];
                    app.markets.push((market, downloads));
                    if digest.version_code.0 > app.max_version {
                        app.max_version = digest.version_code.0;
                        app.digest = digest.clone();
                    }
                }
                None => {
                    index.insert(key, apps.len());
                    apps.push(UniqueApp {
                        package: listing.package.clone(),
                        label: listing.label.clone(),
                        developer: digest.developer,
                        digest: digest.clone(),
                        markets: vec![(market, downloads)],
                        max_version: digest.version_code.0,
                    });
                }
            }
        }

        // Library detection over the unique corpus.
        let digest_refs: Vec<&ApkDigest> = apps.iter().map(|a| &a.digest).collect();
        let lib_report = LibraryDetector::new().detect(&digest_refs);
        let lib_packages: HashSet<String> = lib_report
            .libraries
            .iter()
            .map(|l| l.package.clone())
            .collect();

        // Clone detection (library code excluded per WuKong/LibRadar).
        // Download counters feeding the origin heuristic are binned to
        // Google Play's range lower bounds: GP reports ranges, so raw
        // counters from Chinese stores would otherwise always win the
        // "more downloads = original" comparison.
        let clone_inputs: Vec<marketscope_clonedetect::UniqueApp> = apps
            .iter()
            .map(|a| {
                let binned: Vec<(MarketId, u64)> = a
                    .markets
                    .iter()
                    .map(|(m, d)| {
                        (
                            *m,
                            marketscope_core::InstallRange::from_count(*d).lower_bound(),
                        )
                    })
                    .collect();
                marketscope_clonedetect::UniqueApp::from_digest(&a.digest, &lib_packages, binned)
            })
            .collect();
        let detector = CloneDetector::new();
        let sig_report = detector.sig_clones(&clone_inputs);
        let code_pairs = detector.code_clones(&clone_inputs);

        // Fake detection.
        let fake_inputs: Vec<FakeInput> = apps
            .iter()
            .map(|a| FakeInput {
                package: a.package.clone(),
                label: a.label.clone(),
                developer: a.developer,
                max_downloads: a.markets.iter().map(|(_, d)| *d).max().unwrap_or(0),
                markets: a.markets.iter().map(|(m, _)| *m).collect(),
            })
            .collect();
        let fake_report = FakeDetector::new().detect(&fake_inputs);

        // AV ensemble and over-privilege, one scan per unique app.
        let av = AvSimulator::new();
        let av_reports: Vec<AvReport> = apps.iter().map(|a| av.scan(&a.digest)).collect();
        let op = OverprivilegeAnalyzer::new();
        let overpriv: Vec<OverprivilegeResult> =
            apps.iter().map(|a| op.analyze(&a.digest)).collect();

        Analyzed {
            apps,
            lib_report,
            lib_packages,
            clone_inputs,
            sig_report,
            code_pairs,
            fake_inputs,
            fake_report,
            av_reports,
            overpriv,
        }
    }

    /// Indices of apps listed in a market.
    pub fn apps_in(&self, market: MarketId) -> impl Iterator<Item = usize> + '_ {
        self.apps
            .iter()
            .enumerate()
            .filter(move |(_, a)| a.markets.iter().any(|(m, _)| *m == market))
            .map(|(i, _)| i)
    }

    /// Malware share of a market at the given AV-rank threshold.
    pub fn malware_share(&self, market: MarketId, threshold: usize) -> f64 {
        let mut total = 0usize;
        let mut hit = 0usize;
        for i in self.apps_in(market) {
            total += 1;
            if self.av_reports[i].rank >= threshold {
                hit += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            hit as f64 / total as f64
        }
    }

    /// Malware packages (AV-rank ≥ 10) listed in a market.
    pub fn malware_packages(&self, market: MarketId) -> Vec<String> {
        self.apps_in(market)
            .filter(|i| self.av_reports[*i].rank >= MALWARE_AV_RANK)
            .map(|i| self.apps[i].package.clone())
            .collect()
    }
}
