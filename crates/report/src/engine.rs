//! The staged analysis engine.
//!
//! [`Analyzed::compute`] used to be a one-shot monolith that ran every
//! shared pass back to back. This module breaks that pipeline into named
//! *stages* with declared inputs and outputs ([`STAGE_GRAPH`]), schedules
//! stages whose dependencies are met concurrently on scoped threads, and
//! fans the per-app stages out over index-ordered chunks
//! ([`marketscope_core::parallel`]) so the output is **bit-identical to
//! the sequential run for any worker count**.
//!
//! Stage graph (edges are data dependencies):
//!
//! ```text
//! dedup ──┬── libdetect ──┬── taint
//!         │               └── clone_inputs ── sig_clones
//!         │                           └────── code_clones
//!         ├── fake
//!         ├── av
//!         └── overpriv
//! ```
//!
//! With more than one worker the engine runs the three `dedup`-only
//! branches (`fake`, `av`, `overpriv`) on scoped threads while the main
//! thread walks the library/clone chain; every per-app stage additionally
//! splits its own batch across the worker pool. Determinism is by
//! construction, not by locking:
//!
//! * `dedup` is sequential — snapshot iteration order *defines* app
//!   indices, and every later artifact is index-aligned;
//! * `libdetect`'s parallel tally merge is commutative (count addition and
//!   developer-set union), and its outputs are canonically sorted;
//! * `code_clones` sorts its candidate pairs before verifying them in
//!   parallel;
//! * `av` and `overpriv` are pure per-digest functions mapped in input
//!   order.
//!
//! When built [`AnalysisEngine::with_registry`], every stage records its
//! wall-clock latency into the `marketscope_analysis_stage_nanos{stage=..}`
//! histogram and its item count into
//! `marketscope_analysis_stage_items_total{stage=..}`, which
//! [`crate::OpsSummary`] renders as the analysis section.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use marketscope_analysis::av::AvSimulator;
use marketscope_analysis::fake::{FakeDetector, FakeInput};
use marketscope_analysis::overpriv::OverprivilegeAnalyzer;
use marketscope_analysis::taint::LeakAnalyzer;
use marketscope_apk::digest::ApkDigest;
use marketscope_clonedetect::CloneDetector;
use marketscope_core::parallel;
use marketscope_core::{DeveloperKey, MarketId};
use marketscope_crawler::Snapshot;
use marketscope_libdetect::LibraryDetector;
use marketscope_telemetry::trace::{SpanContext, TraceSpan, Tracer};
use marketscope_telemetry::Registry;

use crate::context::{Analyzed, UniqueApp};

/// Histogram instrument recording per-stage wall-clock latency.
pub const STAGE_LATENCY_METRIC: &str = "marketscope_analysis_stage_nanos";
/// Counter instrument recording per-stage item counts.
pub const STAGE_ITEMS_METRIC: &str = "marketscope_analysis_stage_items_total";

/// A named stage with its declared inputs and outputs. The engine's
/// schedule is derived from this declaration: a stage may start once every
/// input is produced, and stages with disjoint inputs run concurrently.
#[derive(Debug, Clone, Copy)]
pub struct StageSpec {
    /// Stage name (also the `stage` label on its telemetry instruments).
    pub name: &'static str,
    /// Artifacts the stage consumes.
    pub inputs: &'static [&'static str],
    /// Artifacts the stage produces.
    pub outputs: &'static [&'static str],
}

/// The declared stage graph, in the engine's canonical (sequential) order.
pub const STAGE_GRAPH: &[StageSpec] = &[
    StageSpec {
        name: "dedup",
        inputs: &["snapshot"],
        outputs: &["apps", "market_index"],
    },
    StageSpec {
        name: "libdetect",
        inputs: &["apps"],
        outputs: &["lib_report", "lib_packages"],
    },
    StageSpec {
        name: "taint",
        inputs: &["apps", "lib_packages"],
        outputs: &["leaks"],
    },
    StageSpec {
        name: "clone_inputs",
        inputs: &["apps", "lib_packages"],
        outputs: &["clone_inputs"],
    },
    StageSpec {
        name: "sig_clones",
        inputs: &["clone_inputs"],
        outputs: &["sig_report"],
    },
    StageSpec {
        name: "code_clones",
        inputs: &["clone_inputs"],
        outputs: &["code_pairs"],
    },
    StageSpec {
        name: "fake",
        inputs: &["apps"],
        outputs: &["fake_inputs", "fake_report"],
    },
    StageSpec {
        name: "av",
        inputs: &["apps"],
        outputs: &["av_reports"],
    },
    StageSpec {
        name: "overpriv",
        inputs: &["apps"],
        outputs: &["overpriv"],
    },
];

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads for per-app stages *and* concurrent stage scheduling.
    /// `1` reproduces the legacy fully-sequential pipeline.
    pub workers: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: parallel::default_workers(),
        }
    }
}

impl EngineConfig {
    /// The legacy single-threaded schedule.
    pub fn sequential() -> Self {
        EngineConfig { workers: 1 }
    }
}

/// The staged analysis engine. See the module docs for the stage graph and
/// the determinism contract.
#[derive(Debug, Clone, Default)]
pub struct AnalysisEngine {
    config: EngineConfig,
    registry: Option<Arc<Registry>>,
    tracer: Option<Arc<Tracer>>,
}

impl AnalysisEngine {
    /// Engine with the given config and no telemetry.
    pub fn new(config: EngineConfig) -> Self {
        AnalysisEngine {
            config,
            registry: None,
            tracer: None,
        }
    }

    /// Engine recording per-stage latency and item counts into `registry`.
    pub fn with_registry(config: EngineConfig, registry: Arc<Registry>) -> Self {
        AnalysisEngine {
            config,
            registry: Some(registry),
            tracer: None,
        }
    }

    /// Engine recording stage metrics into `registry` *and* per-stage
    /// spans into `tracer` (an `analysis` root span with one child per
    /// stage, so campaign timelines show the analysis critical path next
    /// to the crawl spans).
    pub fn with_telemetry(
        config: EngineConfig,
        registry: Arc<Registry>,
        tracer: Arc<Tracer>,
    ) -> Self {
        AnalysisEngine {
            config,
            registry: Some(registry),
            tracer: Some(tracer),
        }
    }

    /// The configured worker count (always ≥ 1).
    pub fn workers(&self) -> usize {
        self.config.workers.max(1)
    }

    /// Time `f` as stage `name`, recording latency and `items` processed.
    /// When traced, the stage runs under its own span parented on the
    /// engine's `analysis` root via the explicit `parent` context —
    /// stages run on scoped threads, so thread-local parenting would not
    /// reach across.
    fn stage<T>(
        &self,
        parent: Option<SpanContext>,
        name: &'static str,
        items: usize,
        f: impl FnOnce() -> T,
    ) -> T {
        let span = match &self.tracer {
            Some(t) => t.child_of(parent, "analysis", name),
            None => TraceSpan::noop(),
        };
        let start = Instant::now();
        let out = f();
        if let Some(registry) = &self.registry {
            let labels = [("stage", name)];
            registry
                .histogram(STAGE_LATENCY_METRIC, &labels)
                .record_duration(start.elapsed());
            registry
                .counter(STAGE_ITEMS_METRIC, &labels)
                .add(items as u64);
        }
        span.event(&format!("items:{items}"));
        span.finish();
        out
    }

    /// Run every stage over a snapshot.
    pub fn run(&self, snapshot: &Snapshot) -> Analyzed {
        let workers = self.workers();
        let root = match &self.tracer {
            Some(t) => t.root_span("analysis", "analysis"),
            None => TraceSpan::noop(),
        };
        let root_ctx = root.context();

        // dedup is always sequential: snapshot iteration order defines the
        // app index space everything downstream is aligned to.
        let (apps, market_index) = self.stage(root_ctx, "dedup", snapshot.total_listings(), || {
            dedup(snapshot)
        });
        let digest_refs: Vec<&ApkDigest> = apps.iter().map(|a| a.digest.as_ref()).collect();

        let run_fake = || {
            self.stage(root_ctx, "fake", apps.len(), || {
                let fake_inputs: Vec<FakeInput> = apps
                    .iter()
                    .map(|a| FakeInput {
                        package: a.package.clone(),
                        label: a.label.clone(),
                        developer: a.developer,
                        max_downloads: a.markets.iter().map(|(_, d)| *d).max().unwrap_or(0),
                        markets: a.markets.iter().map(|(m, _)| *m).collect(),
                    })
                    .collect();
                let fake_report = FakeDetector::new().detect(&fake_inputs);
                (fake_inputs, fake_report)
            })
        };
        let run_av = || {
            self.stage(root_ctx, "av", apps.len(), || {
                AvSimulator::new().scan_batch(&digest_refs, workers)
            })
        };
        let run_overpriv = || {
            self.stage(root_ctx, "overpriv", apps.len(), || {
                OverprivilegeAnalyzer::new().analyze_batch(&digest_refs, workers)
            })
        };
        // The library → clone chain; its stages depend on each other, so it
        // runs in order on whichever thread calls it.
        let run_clone_chain = || {
            let lib_report = self.stage(root_ctx, "libdetect", apps.len(), || {
                LibraryDetector::new().detect_batch(&digest_refs, workers)
            });
            let lib_packages: HashSet<String> = lib_report
                .libraries
                .iter()
                .map(|l| l.package.clone())
                .collect();
            // Privacy-leak attribution joins each digest's taint flows
            // against the ownership index of the packages detected just
            // above — it must run behind libdetect, but nothing after
            // reads it.
            let leaks = self.stage(root_ctx, "taint", apps.len(), || {
                let ownership = lib_report.ownership();
                let analyzer = match &self.registry {
                    Some(r) => LeakAnalyzer::with_registry(r),
                    None => LeakAnalyzer::new(),
                };
                analyzer.analyze_batch(&digest_refs, &ownership, workers)
            });
            // Download counters feeding the clone-origin heuristic are
            // binned to Google Play's range lower bounds: GP reports
            // ranges, so raw counters from Chinese stores would otherwise
            // always win the "more downloads = original" comparison.
            let clone_inputs: Vec<marketscope_clonedetect::UniqueApp> =
                self.stage(root_ctx, "clone_inputs", apps.len(), || {
                    parallel::par_map(workers, &apps, |a| {
                        let binned: Vec<(MarketId, u64)> = a
                            .markets
                            .iter()
                            .map(|(m, d)| {
                                (
                                    *m,
                                    marketscope_core::InstallRange::from_count(*d).lower_bound(),
                                )
                            })
                            .collect();
                        marketscope_clonedetect::UniqueApp::from_digest(
                            &a.digest,
                            &lib_packages,
                            binned,
                        )
                    })
                });
            let detector = CloneDetector::new();
            let sig_report = self.stage(root_ctx, "sig_clones", clone_inputs.len(), || {
                detector.sig_clones(&clone_inputs)
            });
            let code_pairs = self.stage(root_ctx, "code_clones", clone_inputs.len(), || {
                detector.code_clones_batch(&clone_inputs, workers)
            });
            (
                lib_report,
                lib_packages,
                leaks,
                clone_inputs,
                sig_report,
                code_pairs,
            )
        };

        let (
            (lib_report, lib_packages, leaks, clone_inputs, sig_report, code_pairs),
            (fake_inputs, fake_report),
            av_reports,
            overpriv,
        ) = if workers <= 1 {
            // Legacy schedule: every stage in canonical order, one thread.
            let chain = run_clone_chain();
            let fake = run_fake();
            let av = run_av();
            let op = run_overpriv();
            (chain, fake, av, op)
        } else {
            // The three dedup-only branches run on scoped threads while the
            // main thread walks the library/clone chain (the critical
            // path). Each per-app batch additionally uses the worker pool;
            // the transient oversubscription is deliberate — the branches
            // are short compared to the chain.
            std::thread::scope(|s| {
                let fake_h = s.spawn(run_fake);
                let av_h = s.spawn(run_av);
                let op_h = s.spawn(run_overpriv);
                let chain = run_clone_chain();
                (
                    chain,
                    fake_h
                        .join()
                        .unwrap_or_else(|e| std::panic::resume_unwind(e)),
                    av_h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)),
                    op_h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)),
                )
            })
        };
        root.finish();

        Analyzed {
            apps,
            market_index,
            lib_report,
            lib_packages,
            leaks,
            clone_inputs,
            sig_report,
            code_pairs,
            fake_inputs,
            fake_report,
            av_reports,
            overpriv,
        }
    }
}

/// Type alias for the per-market app index built by `dedup`.
type MarketIndex = HashMap<MarketId, Vec<usize>>;

/// Deduplicate listings by `(package, developer signature)`, keeping the
/// highest-version digest as representative (an `Arc` pointer swap, never a
/// deep copy), and build the per-market index of app positions (ascending,
/// each app at most once per market).
fn dedup(snapshot: &Snapshot) -> (Vec<UniqueApp>, MarketIndex) {
    let mut index: HashMap<(String, DeveloperKey), usize> = HashMap::new();
    let mut apps: Vec<UniqueApp> = Vec::new();
    for (market, listing) in snapshot.iter() {
        let Some(digest) = &listing.digest else {
            continue;
        };
        let key = (listing.package.clone(), digest.developer);
        let downloads = listing.downloads.unwrap_or(0);
        match index.get(&key) {
            Some(&i) => {
                let app = &mut apps[i];
                app.markets.push((market, downloads));
                if digest.version_code.0 > app.max_version {
                    app.max_version = digest.version_code.0;
                    app.digest = Arc::clone(digest);
                }
            }
            None => {
                index.insert(key, apps.len());
                apps.push(UniqueApp {
                    package: listing.package.clone(),
                    label: listing.label.clone(),
                    developer: digest.developer,
                    digest: Arc::clone(digest),
                    markets: vec![(market, downloads)],
                    max_version: digest.version_code.0,
                });
            }
        }
    }
    let mut market_index: MarketIndex = HashMap::new();
    for (i, app) in apps.iter().enumerate() {
        for (market, _) in &app.markets {
            let positions = market_index.entry(*market).or_default();
            // An app relisted in the same market appears once.
            if positions.last() != Some(&i) {
                positions.push(i);
            }
        }
    }
    (apps, market_index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_graph_is_well_formed() {
        // Every input except the snapshot is produced by an earlier stage.
        let mut produced: HashSet<&str> = HashSet::new();
        produced.insert("snapshot");
        for spec in STAGE_GRAPH {
            for input in spec.inputs {
                assert!(
                    produced.contains(input),
                    "stage `{}` consumes `{input}` before any stage produces it",
                    spec.name
                );
            }
            for output in spec.outputs {
                assert!(
                    produced.insert(output),
                    "artifact `{output}` produced twice (stage `{}`)",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn stage_names_are_unique() {
        let names: HashSet<&str> = STAGE_GRAPH.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), STAGE_GRAPH.len());
    }
}
