//! End-to-end campaign runner: generate a world, serve it, crawl it
//! twice, analyze everything.

use crate::context::{Analyzed, LabelSource};
use marketscope_core::MarketId;
use marketscope_crawler::{CrawlConfig, CrawlTargets, Crawler, Snapshot};
use marketscope_ecosystem::{generate, Scale, World, WorldConfig};
use marketscope_market::{CrawlPhase, MarketFleet};
use std::sync::Arc;

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// World seed.
    pub seed: u64,
    /// World scale.
    pub scale: Scale,
    /// Share of the Google Play catalog present in the external seed
    /// list (the paper's PrivacyGrade list covered ~74% of GP).
    pub seed_share: f64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0x1517_2018,
            scale: Scale::SMALL,
            seed_share: 0.75,
        }
    }
}

/// Everything a full campaign produces.
pub struct Campaign {
    /// The generated ground-truth world (kept for validation only).
    pub world: Arc<World>,
    /// First-crawl snapshot (metadata + APK digests).
    pub snapshot: Snapshot,
    /// Second-crawl snapshot (catalog presence only), 8 simulated months
    /// later.
    pub second: Snapshot,
    /// Library labelling source (the manual-labelling stand-in).
    pub labels: LabelSource,
    /// Shared analysis artifacts.
    pub analyzed: Analyzed,
}

/// Run the whole measurement campaign.
pub fn run_campaign(config: CampaignConfig) -> Campaign {
    let world = Arc::new(generate(WorldConfig {
        seed: config.seed,
        scale: config.scale,
    }));
    let fleet = MarketFleet::spawn(Arc::clone(&world)).expect("spawn fleet");
    let targets = CrawlTargets {
        markets: MarketId::ALL.iter().map(|m| fleet.addr(*m)).collect(),
        repository: Some(fleet.repository_addr()),
    };
    // Seed list: a deterministic share of GP packages, as an external
    // list would cover.
    let gp = world.market_listings(MarketId::GooglePlay);
    let seeds: Vec<String> = gp
        .iter()
        .enumerate()
        .filter(|(i, _)| (*i as f64) < gp.len() as f64 * config.seed_share)
        .map(|(_, l)| world.app(world.listing(*l).app).package.as_str().to_owned())
        .collect();

    let crawler = Crawler::new(CrawlConfig {
        seeds,
        ..CrawlConfig::default()
    });
    let snapshot = crawler.crawl(&targets);

    fleet.set_phase(CrawlPhase::Second);
    let second_crawler = Crawler::new(CrawlConfig {
        seeds: snapshot
            .market(MarketId::GooglePlay)
            .listings
            .iter()
            .map(|l| l.package.clone())
            .collect(),
        fetch_apks: false,
        ..CrawlConfig::default()
    });
    let second = second_crawler.crawl(&targets);
    fleet.stop();

    let labels = LabelSource::from_world(&world);
    let analyzed = Analyzed::compute(&snapshot);
    Campaign {
        world,
        snapshot,
        second,
        labels,
        analyzed,
    }
}
